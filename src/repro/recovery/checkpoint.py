"""Checkpoint format and stores.

A checkpoint is the accelerator's durable restart state: the replication
cursor, the catalog generation, and per-table row images with their
applied-LSN watermarks and lineage epochs. It is serialised as
*tagged JSON* — SQL values that JSON cannot represent natively (DATE,
TIMESTAMP, DECIMAL) ride as ``{"$": tag, "v": text}`` objects so the
round trip is exact — and wrapped in the checksummed frame from
:mod:`repro.storage.durable`.

Two stores exist. :class:`FileCheckpointStore` writes each checkpoint as
``checkpoint-<id>.ckpt`` via temp-file + fsync + rename, so a crash mid
write can never publish a torn frame — except through
:meth:`~FileCheckpointStore.write_torn`, which the crash-point harness
uses to simulate non-atomic media and prove that restore's checksum
validation catches the damage. :class:`MemoryCheckpointStore` keeps the
same framed bytes in memory for tests and for systems constructed
without a checkpoint directory.
"""

from __future__ import annotations

import datetime
import decimal
import json
import os
import re
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CorruptCheckpointError
from repro.storage.durable import pack_frame, read_frame, unpack_frame, write_frame_atomic

__all__ = [
    "Checkpoint",
    "CheckpointTable",
    "FileCheckpointStore",
    "MemoryCheckpointStore",
]

PAYLOAD_VERSION = 1

_FILE_PATTERN = re.compile(r"^checkpoint-(\d{8})\.ckpt$")


# ---------------------------------------------------------------------------
# Tagged-JSON value encoding
# ---------------------------------------------------------------------------


def _encode_value(value):
    if isinstance(value, datetime.datetime):
        return {"$": "ts", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$": "d", "v": value.isoformat()}
    if isinstance(value, decimal.Decimal):
        return {"$": "dec", "v": str(value)}
    return value


def _decode_value(value):
    if isinstance(value, dict) and "$" in value:
        tag, text = value["$"], value["v"]
        if tag == "ts":
            return datetime.datetime.fromisoformat(text)
        if tag == "d":
            return datetime.date.fromisoformat(text)
        if tag == "dec":
            return decimal.Decimal(text)
        raise CorruptCheckpointError(f"unknown value tag {tag!r}")
    return value


def _encode_row(row: tuple) -> list:
    return [_encode_value(v) for v in row]


def _decode_row(row: list) -> tuple:
    return tuple(_decode_value(v) for v in row)


# ---------------------------------------------------------------------------
# Checkpoint model
# ---------------------------------------------------------------------------


@dataclass
class CheckpointTable:
    """One table's image inside a checkpoint."""

    rows: list[tuple]
    #: Highest change-record LSN applied to this copy (0 for AOTs).
    applied_lsn: int
    #: Lineage epoch of the image (stale-AOT detection on restart).
    lineage_epoch: int


@dataclass
class Checkpoint:
    """A consistent accelerator restart point."""

    checkpoint_id: int
    created_at: float
    catalog_generation: int
    #: Replication cursor at capture time; replay resumes here. Read
    #: *before* the row images are captured, so it can only lag them —
    #: the over-read on replay is deduplicated by the applied-LSN
    #: watermarks.
    cursor_lsn: int
    #: Per-table replication start LSNs (re-registration on restart).
    table_starts: dict[str, int] = field(default_factory=dict)
    tables: dict[str, CheckpointTable] = field(default_factory=dict)

    def to_payload(self) -> bytes:
        document = {
            "version": PAYLOAD_VERSION,
            "checkpoint_id": self.checkpoint_id,
            "created_at": self.created_at,
            "catalog_generation": self.catalog_generation,
            "cursor_lsn": self.cursor_lsn,
            "table_starts": self.table_starts,
            "tables": {
                name: {
                    "applied_lsn": entry.applied_lsn,
                    "lineage_epoch": entry.lineage_epoch,
                    "rows": [_encode_row(row) for row in entry.rows],
                }
                for name, entry in sorted(self.tables.items())
            },
        }
        return json.dumps(document, separators=(",", ":")).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "Checkpoint":
        try:
            document = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptCheckpointError(
                f"checkpoint payload is not valid JSON: {exc}"
            ) from exc
        version = document.get("version")
        if version != PAYLOAD_VERSION:
            raise CorruptCheckpointError(
                f"unsupported checkpoint payload version {version!r}"
            )
        try:
            return cls(
                checkpoint_id=int(document["checkpoint_id"]),
                created_at=float(document["created_at"]),
                catalog_generation=int(document["catalog_generation"]),
                cursor_lsn=int(document["cursor_lsn"]),
                table_starts={
                    name: int(lsn)
                    for name, lsn in document.get("table_starts", {}).items()
                },
                tables={
                    name: CheckpointTable(
                        rows=[_decode_row(row) for row in entry["rows"]],
                        applied_lsn=int(entry["applied_lsn"]),
                        lineage_epoch=int(entry["lineage_epoch"]),
                    )
                    for name, entry in document.get("tables", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptCheckpointError(
                f"malformed checkpoint payload: {exc}"
            ) from exc


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


class MemoryCheckpointStore:
    """Framed checkpoints in memory (tests; no checkpoint directory).

    The frames are packed/unpacked exactly like the file store's, so
    corruption handling is exercised identically.
    """

    def __init__(self) -> None:
        self._frames: dict[int, bytes] = {}

    def ids(self) -> list[int]:
        return sorted(self._frames)

    def write(self, checkpoint_id: int, payload: bytes) -> int:
        frame = pack_frame(payload)
        self._frames[checkpoint_id] = frame
        return len(frame)

    def write_torn(self, checkpoint_id: int, payload: bytes) -> None:
        """Publish a half-written frame (crash-mid-write simulation)."""
        frame = pack_frame(payload)
        self._frames[checkpoint_id] = frame[: max(1, len(frame) // 2)]

    def read(self, checkpoint_id: int) -> bytes:
        frame = self._frames.get(checkpoint_id)
        if frame is None:
            raise CorruptCheckpointError(
                f"no checkpoint {checkpoint_id} in store"
            )
        return unpack_frame(frame)

    def delete(self, checkpoint_id: int) -> None:
        self._frames.pop(checkpoint_id, None)


class FileCheckpointStore:
    """One frame file per checkpoint under a directory, written atomically."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def path_for(self, checkpoint_id: int) -> str:
        return os.path.join(
            self.directory, f"checkpoint-{checkpoint_id:08d}.ckpt"
        )

    def ids(self) -> list[int]:
        found = []
        for name in os.listdir(self.directory):
            match = _FILE_PATTERN.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def write(self, checkpoint_id: int, payload: bytes) -> int:
        return write_frame_atomic(self.path_for(checkpoint_id), payload)

    def write_torn(self, checkpoint_id: int, payload: bytes) -> None:
        """Publish a half frame under the *final* name.

        Deliberately bypasses the temp-file + rename protocol: this is
        the harness's stand-in for media that tore the write, so restore
        must reject the file via its checksum, not via the filename.
        """
        frame = pack_frame(payload)
        with open(self.path_for(checkpoint_id), "wb") as handle:
            handle.write(frame[: max(1, len(frame) // 2)])

    def read(self, checkpoint_id: int) -> bytes:
        return read_frame(self.path_for(checkpoint_id))

    def delete(self, checkpoint_id: int) -> None:
        try:
            os.unlink(self.path_for(checkpoint_id))
        except OSError:
            pass


def open_store(checkpoint_dir: Optional[str]):
    """File store when a directory is configured, memory store otherwise."""
    if checkpoint_dir:
        return FileCheckpointStore(checkpoint_dir)
    return MemoryCheckpointStore()

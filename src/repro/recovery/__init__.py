"""Crash-consistent recovery: durable checkpoints and restart resync.

The accelerator is a *replica* — DB2 is the source of truth — so crash
safety means being able to lose every byte of accelerator state and come
back correct. This package provides the three pieces:

* :mod:`repro.recovery.checkpoint` — the durable checkpoint format
  (tagged-JSON payload inside a checksummed frame) and the file/memory
  stores that write it atomically;
* :mod:`repro.recovery.manager` — :class:`RecoveryManager`, which takes
  checkpoints (replication cursor, per-table row images + applied-LSN
  watermarks, AOT lineage epochs, catalog generation) and drives restart
  resync: restore the latest valid checkpoint, replay only the changelog
  suffix, full-reload only when the log was truncated, and rebuild stale
  AOTs as BATCH-class work;
* :mod:`repro.recovery.harness` — the crash-point differential harness:
  kill the accelerator at every named crash point and assert the
  recovered system answers byte-identically to an uncrashed run.
"""

from repro.recovery.checkpoint import (
    Checkpoint,
    CheckpointTable,
    FileCheckpointStore,
    MemoryCheckpointStore,
)
from repro.recovery.manager import (
    CheckpointResult,
    RecoveryEvent,
    RecoveryManager,
    RecoveryResult,
)

__all__ = [
    "Checkpoint",
    "CheckpointTable",
    "FileCheckpointStore",
    "MemoryCheckpointStore",
    "CheckpointResult",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoveryResult",
]

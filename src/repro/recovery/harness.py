"""Crash-point differential harness.

The strongest statement a recovery subsystem can make is *you cannot
tell the crash happened*. This module operationalises that: a fixed,
deterministic workload runs once uncrashed to produce a baseline
fingerprint (query results + raw storage images), then once per crash
scenario — each scenario arms one named crash point at one workload
step, kills the accelerator when it fires, restarts through
:class:`~repro.recovery.manager.RecoveryManager`, finishes the workload,
and fingerprints again. Every fingerprint must be byte-identical to the
baseline.

Kill/restart semantics mirror an appliance power cut. ``kill`` loses
everything accelerator-side (column stores, LSN watermarks, lineage
epochs, the replication cursor and registrations) while DB2-side state
survives (row stores, catalog, changelog, checkpoints, the recovery
manager's lineage journal and AOT sources). ``restart`` closes the
health circuit and runs recovery.

Crash handling per step is declared, not guessed: ``on_crash="continue"``
steps are durably committed DB2-side before the crash point can fire
(recovery redelivers their accelerator-side effects), while
``on_crash="retry"`` steps did not complete a durable effect and are
re-run after restart — exactly what an application driver would do with
an unacknowledged request.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import InjectedCrashError
from repro.recovery.manager import RecoveryResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.system import AcceleratedDatabase

__all__ = [
    "CORPUS",
    "AOT_CORPUS",
    "CrashRestartDriver",
    "WorkloadStep",
    "ScenarioOutcome",
    "MatrixReport",
    "build_workload",
    "crash_scenarios",
    "default_system",
    "fingerprint",
    "run_uncrashed",
    "run_crash_scenario",
    "run_crash_matrix",
]


# ---------------------------------------------------------------------------
# Kill / restart
# ---------------------------------------------------------------------------


class CrashRestartDriver:
    """Simulated power cut + restart for the accelerator appliance."""

    def __init__(self, system: "AcceleratedDatabase") -> None:
        self.system = system
        self.kills = 0
        self.recoveries: list[RecoveryResult] = []

    def kill(self) -> None:
        """Lose all volatile accelerator state; leave DB2 untouched."""
        system = self.system
        # The armed crash stops mattering once the appliance is dead.
        system.faults.clear_crash_points()
        system.accelerator.wipe()
        system.replication.reset()
        system.health.force_offline()
        self.kills += 1

    def restart(self) -> RecoveryResult:
        """Power back on: close the circuit and resynchronise."""
        system = self.system
        system.health.reset()
        result = system.recovery.recover()
        self.recoveries.append(result)
        return result


# ---------------------------------------------------------------------------
# The deterministic workload
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadStep:
    """One step of the harness workload.

    ``crash_point`` names the crash point a scenario may arm at this
    step (None = the step is never a crash site). ``on_crash`` declares
    how the driver resumes after restart: ``"continue"`` (the step's
    durable effect landed in DB2; recovery finishes the rest) or
    ``"retry"`` (no durable effect; run the step again).
    """

    name: str
    run: Callable[["AcceleratedDatabase"], None]
    crash_point: Optional[str] = None
    on_crash: str = "continue"


def _main_row(i: int) -> tuple:
    """Deterministic MAIN row i (E14 fuzz schema, NULLs included)."""
    k = None if i % 11 == 0 else i % 7
    v = None if i % 13 == 0 else round((i * 37 % 1000) / 10.0 - 50.0, 2)
    s = None if i % 17 == 0 else ("aa", "bb", "cc", "dd")[i % 4]
    return (i, k, v, s)


def _sql_literal(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _insert_main(system: "AcceleratedDatabase", start: int, count: int) -> None:
    """One autocommit INSERT per row: many commits, many drains."""
    connection = system.connect()
    try:
        for i in range(start, start + count):
            values = ", ".join(_sql_literal(v) for v in _main_row(i))
            connection.execute(f"INSERT INTO MAIN VALUES ({values})")
    finally:
        connection.close()


def _execute(system: "AcceleratedDatabase", sql: str) -> None:
    connection = system.connect()
    try:
        connection.execute(sql)
    finally:
        connection.close()


#: The query whose result *defines* AOT_SUMMARY — registered with the
#: recovery manager before the CTAS runs, the way a pipeline definition
#: outlives any one execution of it.
AOT_SOURCE_SQL = (
    "SELECT K, COUNT(*) AS CNT, SUM(V) AS TOTAL "
    "FROM MAIN WHERE K IS NOT NULL GROUP BY K"
)


def _setup(system: "AcceleratedDatabase") -> None:
    connection = system.connect()
    try:
        connection.execute(
            "CREATE TABLE MAIN (ID INTEGER NOT NULL, K INTEGER, "
            "V DOUBLE, S VARCHAR(4))"
        )
        connection.execute(
            "CREATE TABLE DIM (K INTEGER NOT NULL, NAME VARCHAR(8))"
        )
        for k in range(5):
            connection.execute(f"INSERT INTO DIM VALUES ({k}, 'name{k}')")
    finally:
        connection.close()
    _insert_main(system, 0, 20)


def _ctas_aot(system: "AcceleratedDatabase") -> None:
    system.recovery.register_aot_source("AOT_SUMMARY", AOT_SOURCE_SQL)
    _execute(
        system,
        f"CREATE TABLE AOT_SUMMARY AS ({AOT_SOURCE_SQL}) IN ACCELERATOR",
    )


def _finalise(system: "AcceleratedDatabase") -> None:
    system.replication.drain()
    system.recovery.checkpoint()


def build_workload() -> list[WorkloadStep]:
    """The fixed step sequence every run (crashed or not) executes.

    Step order is load-bearing: all MAIN DML precedes the CTAS so that a
    post-crash AOT rebuild from :data:`AOT_SOURCE_SQL` reproduces exactly
    what the uncrashed CTAS materialised.
    """
    return [
        WorkloadStep("setup", _setup),
        WorkloadStep(
            "accelerate-dim",
            lambda s: s.add_table_to_accelerator("DIM"),
            crash_point="ddl.mid_accelerate",
        ),
        WorkloadStep("checkpoint-1", lambda s: s.recovery.checkpoint()),
        WorkloadStep(
            "accelerate-main",
            lambda s: s.add_table_to_accelerator("MAIN"),
            crash_point="ddl.mid_accelerate",
        ),
        WorkloadStep(
            "insert-wave",
            lambda s: _insert_main(s, 20, 20),
            crash_point="replication.mid_batch",
        ),
        WorkloadStep(
            "checkpoint-2",
            lambda s: s.recovery.checkpoint(),
            crash_point="checkpoint.mid_write",
            on_crash="retry",
        ),
        WorkloadStep(
            "update-main",
            lambda s: _execute(
                s, "UPDATE MAIN SET V = V * 2 WHERE ID % 5 = 0 AND V IS NOT NULL"
            ),
            crash_point="commit.post_commit_pre_ack",
        ),
        WorkloadStep(
            "delete-main",
            lambda s: _execute(s, "DELETE FROM MAIN WHERE ID % 19 = 3"),
            crash_point="replication.mid_batch",
        ),
        WorkloadStep(
            "checkpoint-3",
            lambda s: s.recovery.checkpoint(),
            crash_point="checkpoint.mid_write",
            on_crash="retry",
        ),
        WorkloadStep(
            "ctas-aot",
            _ctas_aot,
            crash_point="aot.mid_build",
        ),
        WorkloadStep(
            "refresh-aot",
            lambda s: _execute(
                s,
                "INSERT INTO AOT_SUMMARY "
                "SELECT K + 100, COUNT(*), SUM(V) "
                "FROM MAIN WHERE K IS NOT NULL GROUP BY K",
            ),
            crash_point="aot.mid_build",
            on_crash="retry",
        ),
        WorkloadStep("finalise", _finalise),
    ]


def crash_scenarios(
    steps: Optional[list[WorkloadStep]] = None,
) -> list[tuple[int, WorkloadStep]]:
    """Every (step index, step) pair that is a crash site."""
    if steps is None:
        steps = build_workload()
    return [
        (index, step)
        for index, step in enumerate(steps)
        if step.crash_point is not None
    ]


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

#: Read-back corpus over the replicated tables (E14 fuzz shapes: joins,
#: grouping, derived tables, NULL-heavy predicates). Every query is
#: deterministic — ordered or single-row.
CORPUS = [
    "SELECT ID, K, V, S FROM main ORDER BY ID",
    "SELECT COUNT(*), COUNT(V), COUNT(DISTINCT K) FROM main",
    "SELECT SUM(V), MIN(V), MAX(V), AVG(V) FROM main WHERE V IS NOT NULL",
    "SELECT K % 2 AS G, COUNT(*) AS C, SUM(V) AS S FROM main "
    "GROUP BY K % 2 ORDER BY 1",
    "SELECT S, AVG(V) FROM main WHERE V IS NOT NULL GROUP BY S ORDER BY 1",
    "SELECT m.ID, d.NAME FROM main m JOIN dim d ON m.k = d.k "
    "ORDER BY m.ID LIMIT 25",
    "SELECT d.NAME, COUNT(m.V), SUM(m.V) FROM main m "
    "LEFT JOIN dim d ON m.k = d.k GROUP BY d.NAME ORDER BY 1",
    "SELECT sub.ID, sub.W FROM (SELECT ID, V, V * 2 AS W FROM main "
    "WHERE V IS NOT NULL) AS sub WHERE sub.W > 10 ORDER BY sub.ID",
    "SELECT ID, CASE WHEN V > 0 THEN 'pos' ELSE 'neg' END FROM main "
    "WHERE ID % 3 = 1 ORDER BY ID",
]

#: Queries over the AOT — these can only answer from the accelerator, so
#: they are the direct probe of AOT recovery.
AOT_CORPUS = [
    "SELECT K, CNT, TOTAL FROM aot_summary ORDER BY K",
    "SELECT COUNT(*), SUM(CNT), SUM(TOTAL) FROM aot_summary",
]


def _canonical_value(value):
    if value is None:
        return "~"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return repr(round(value, 6))
    return repr(value)


def _canonical_rows(rows) -> str:
    return ";".join(
        "|".join(_canonical_value(v) for v in row) for row in rows
    )


def fingerprint(system: "AcceleratedDatabase") -> dict[str, str]:
    """Everything observable about the data, as comparable strings.

    Three layers: the SQL corpus through the normal routed path, the AOT
    corpus (accelerator-resident by construction), and the raw storage
    images — accelerator snapshot vs. DB2 row store — for every
    replicated table, which catches divergence that happens to be
    invisible to the corpus queries.
    """
    from repro.catalog import TableLocation

    out: dict[str, str] = {}
    connection = system.connect()
    try:
        for sql in CORPUS + AOT_CORPUS:
            out[sql] = _canonical_rows(connection.execute(sql).rows)
    finally:
        connection.close()
    for descriptor in system.catalog.tables():
        name = descriptor.name
        if descriptor.location is TableLocation.ACCELERATED:
            accel = sorted(
                _canonical_rows([row])
                for row in system.accelerator.snapshot_rows(name)
            )
            db2 = sorted(
                _canonical_rows([row])
                for _, row in system.db2.storage_for(name).scan()
            )
            out[f"storage:{name}:accelerator"] = ";".join(accel)
            out[f"storage:{name}:db2"] = ";".join(db2)
        elif descriptor.location is TableLocation.ACCELERATOR_ONLY:
            rows = sorted(
                _canonical_rows([row])
                for row in system.accelerator.snapshot_rows(name)
            )
            out[f"storage:{name}:accelerator"] = ";".join(rows)
    return out


# ---------------------------------------------------------------------------
# Scenario execution
# ---------------------------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """Result of one crash scenario vs. the uncrashed baseline."""

    step: str
    crash_point: str
    fired: int
    matched: bool
    #: Fingerprint keys whose value differed from the baseline.
    mismatches: list[str] = field(default_factory=list)
    recovery: Optional[RecoveryResult] = None
    kills: int = 0


@dataclass
class MatrixReport:
    """Outcome of the full crash matrix."""

    baseline_keys: int
    outcomes: list[ScenarioOutcome] = field(default_factory=list)

    @property
    def all_matched(self) -> bool:
        return all(o.matched and o.fired > 0 for o in self.outcomes)

    def summary(self) -> str:
        lines = [
            f"crash matrix: {len(self.outcomes)} scenario(s), "
            f"{self.baseline_keys} fingerprint keys"
        ]
        for o in self.outcomes:
            recovered = o.recovery
            extra = ""
            if recovered is not None:
                extra = (
                    f" replayed={recovered.records_replayed}"
                    f" restored={recovered.tables_restored}"
                    f" full_reloads={recovered.full_reloads}"
                    f" aots_rebuilt={recovered.aots_rebuilt}"
                    f" bytes_saved={recovered.resync_bytes_saved}"
                )
            status = "OK" if o.matched else f"MISMATCH {o.mismatches[:3]}"
            lines.append(
                f"  {o.step} @ {o.crash_point}: fired={o.fired} "
                f"kills={o.kills}{extra} -> {status}"
            )
        return "\n".join(lines)


def default_system(checkpoint_dir: Optional[str] = None):
    """The harness's standard system: small batches force multi-batch
    drains (so mid-batch crashes land mid-stream), fast health cooldown."""
    from repro.federation.system import AcceleratedDatabase

    return AcceleratedDatabase(
        slice_count=2,
        chunk_rows=16,
        replication_batch_size=4,
        cooldown_seconds=0.0,
        tracing_enabled=False,
        checkpoint_dir=checkpoint_dir,
    )


def _run_steps(
    system: "AcceleratedDatabase",
    steps: list[WorkloadStep],
    crash_index: Optional[int] = None,
) -> CrashRestartDriver:
    driver = CrashRestartDriver(system)
    pending_crash = crash_index
    index = 0
    while index < len(steps):
        step = steps[index]
        rule = None
        if pending_crash == index:
            rule = system.faults.arm_crash_point(step.crash_point)
        crashed = False
        try:
            step.run(system)
        except InjectedCrashError:
            crashed = True
        # Crash points that fire inside a commit-time auto-drain are
        # swallowed by the retry machinery (the DB2 commit must not
        # fail); the armed rule's fire count is the reliable signal.
        if rule is not None and rule.fired > 0:
            crashed = True
        if crashed:
            pending_crash = None
            driver.kill()
            driver.restart()
            if step.on_crash == "retry":
                continue  # crash point cleared by kill(): runs clean
        elif rule is not None:
            raise AssertionError(
                f"crash point {step.crash_point} armed at step "
                f"{step.name!r} but never fired"
            )
        index += 1
    return driver


def run_uncrashed(
    checkpoint_dir: Optional[str] = None,
    system_factory: Optional[Callable[[], "AcceleratedDatabase"]] = None,
) -> tuple["AcceleratedDatabase", dict[str, str]]:
    """Baseline: the workload with no faults; returns the fingerprint."""
    system = (
        system_factory() if system_factory else default_system(checkpoint_dir)
    )
    _run_steps(system, build_workload(), crash_index=None)
    return system, fingerprint(system)


def run_crash_scenario(
    crash_index: int,
    baseline: dict[str, str],
    checkpoint_dir: Optional[str] = None,
    system_factory: Optional[Callable[[], "AcceleratedDatabase"]] = None,
) -> ScenarioOutcome:
    """One scenario: crash at step ``crash_index``, compare to baseline."""
    steps = build_workload()
    step = steps[crash_index]
    if step.crash_point is None:
        raise ValueError(f"step {step.name!r} is not a crash site")
    system = (
        system_factory() if system_factory else default_system(checkpoint_dir)
    )
    driver = _run_steps(system, steps, crash_index=crash_index)
    observed = fingerprint(system)
    mismatches = sorted(
        key
        for key in set(baseline) | set(observed)
        if baseline.get(key) != observed.get(key)
    )
    fired = system.faults.injected.get(
        f"crashpoint.{step.crash_point}", 0
    )
    return ScenarioOutcome(
        step=step.name,
        crash_point=step.crash_point,
        fired=fired,
        matched=not mismatches,
        mismatches=mismatches,
        recovery=driver.recoveries[-1] if driver.recoveries else None,
        kills=driver.kills,
    )


def run_crash_matrix(
    checkpoint_dir: Optional[str] = None,
    system_factory: Optional[Callable[[], "AcceleratedDatabase"]] = None,
) -> MatrixReport:
    """Crash at every crash site; assertable via ``report.all_matched``.

    With a ``checkpoint_dir``, every run (baseline and each scenario)
    gets its own subdirectory — a fresh system must never adopt another
    run's checkpoint files through the store bootstrap.
    """

    def subdir(label: str) -> Optional[str]:
        if checkpoint_dir is None:
            return None
        return os.path.join(checkpoint_dir, label)

    __, baseline = run_uncrashed(subdir("baseline"), system_factory)
    report = MatrixReport(baseline_keys=len(baseline))
    for crash_index, step in crash_scenarios():
        report.outcomes.append(
            run_crash_scenario(
                crash_index,
                baseline,
                subdir(f"scenario-{crash_index}-{step.crash_point}"),
                system_factory,
            )
        )
    return report

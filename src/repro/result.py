"""Result of executing a statement anywhere in the federation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Result"]


@dataclass
class Result:
    """Rows + metadata returned by ``Connection.execute``.

    ``engine`` records where the statement actually ran (``"DB2"`` or
    ``"ACCELERATOR"``) — the transparency experiments assert on it.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[tuple] = field(default_factory=list)
    engine: str = "DB2"
    rowcount: int = 0
    message: Optional[str] = None

    def __post_init__(self) -> None:
        if self.rows and not self.rowcount:
            self.rowcount = len(self.rows)

    def scalar(self):
        """First column of the first row (for aggregate lookups)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

"""Statement work budgets: deadlines and cooperative cancellation.

A :class:`WorkBudget` travels with one statement execution. Executors
and lock waits call :meth:`WorkBudget.check` at natural batch
boundaries (chunk spans on the accelerator, row batches on DB2, each
lock-wait wakeup); when the deadline has passed or the application
cancelled the statement, the checkpoint raises and the statement
unwinds through the ordinary error path — statement-level rollback,
lock release, admission-slot release.

The *current* budget is carried in a :mod:`contextvars` context
variable so deeply nested execution code does not need the budget
threaded through every signature. Parallel scan workers do not inherit
the context (they run on a shared pool), so the executor captures the
budget once per statement and bakes it into each partition task.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Callable, Iterator, Optional

from repro.errors import StatementCancelledError, StatementTimeoutError

__all__ = [
    "WorkBudget",
    "active_budget",
    "current_budget",
]


class WorkBudget:
    """Deadline + cancellation flag for one statement execution."""

    __slots__ = (
        "clock",
        "started",
        "timeout_seconds",
        "deadline",
        "cancel_reason",
        "checks",
        "_cancelled",
        "_wakers",
    )

    def __init__(
        self,
        timeout_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        self.clock = clock
        self.started = clock()
        self.timeout_seconds = timeout_seconds
        self.deadline = (
            None if timeout_seconds is None else self.started + timeout_seconds
        )
        self.cancel_reason = ""
        #: Checkpoints observed (telemetry; approximate under threads).
        self.checks = 0
        self._cancelled = False
        # Wake callables for queues this statement is blocked in;
        # cancel() pokes them so queued statements unwind immediately
        # instead of at the next poll slice.
        self._wakers: list = []

    # -- state -------------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def expired(self) -> bool:
        return self.deadline is not None and self.clock() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (None = unbounded)."""
        if self.deadline is None:
            return None
        return self.deadline - self.clock()

    # -- control -----------------------------------------------------------

    def cancel(self, reason: str = "cancelled by application") -> None:
        """Request cooperative cancellation; the next check() raises.

        Any wait queue the statement is currently parked in is poked
        awake, so cancellation takes effect at the next wakeup rather
        than after a poll interval.
        """
        self.cancel_reason = reason
        self._cancelled = True
        # Snapshot: a registered waiter may be unregistering
        # concurrently; list() is atomic under the GIL and a stale
        # extra poke is harmless (wakers must tolerate spurious calls).
        for waker in list(self._wakers):
            waker()

    def register_waker(self, waker: Callable[[], None]) -> None:
        """Ask :meth:`cancel` to call ``waker`` while this is registered.

        Queue waits register the poke that wakes their parked thread
        (e.g. an ``Event.set``); the waker may be called spuriously and
        from any thread.
        """
        self._wakers.append(waker)

    def unregister_waker(self, waker: Callable[[], None]) -> None:
        try:
            self._wakers.remove(waker)
        except ValueError:
            pass

    def check(self) -> None:
        """Raise if the statement must stop; called at batch boundaries."""
        self.checks += 1
        if self._cancelled:
            raise StatementCancelledError(
                f"statement cancelled: {self.cancel_reason}"
            )
        if self.deadline is not None and self.clock() >= self.deadline:
            raise StatementTimeoutError(
                f"statement exceeded its {self.timeout_seconds:g}s budget"
            )


#: The budget of the statement currently executing on this thread (or
#: None outside WLM-governed execution). ContextVar, not thread-local:
#: budgets must not leak between statements interleaved on one thread.
_CURRENT: contextvars.ContextVar[Optional[WorkBudget]] = (
    contextvars.ContextVar("repro_wlm_budget", default=None)
)


def current_budget() -> Optional[WorkBudget]:
    """The active statement's budget, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def active_budget(budget: Optional[WorkBudget]) -> Iterator[Optional[WorkBudget]]:
    """Install ``budget`` as the current budget for the ``with`` body.

    ``None`` is accepted (and is a no-op) so callers on the disabled
    path pay nothing but the context-manager entry.
    """
    if budget is None:
        yield None
        return
    token = _CURRENT.set(budget)
    try:
        yield budget
    finally:
        _CURRENT.reset(token)

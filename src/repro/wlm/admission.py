"""Per-engine admission control: priority queues over concurrency slots.

One :class:`AdmissionGate` guards one engine (the DB2 row engine and
the accelerator get independent gates — saturating the appliance must
not stop OLTP, and vice versa). A statement entering the gate either:

* **bypasses** — the router classified it as cheap (point lookup /
  tiny estimated scan); it runs immediately and consumes no slot, so
  interactive traffic is never stuck behind queued analytics;
* is **admitted** — slots are free for its service class; it consumes
  ``weight`` gate slots (cost-aware: heavier statements take more)
  plus one class slot until its ticket is released;
* is **queued** — it waits on the gate's priority queue. Grants are
  strictly ordered by (class priority, arrival): a freed slot always
  goes to the highest-priority earliest waiter that fits. Waiting is
  *bounded*: the wait is capped by ``max_wait_seconds`` (shed with a
  retryable error when exceeded) and by the statement's own budget
  (timeout/cancel raise immediately at the next wakeup);
* is **shed** — its class queue is at depth, or the load shedder
  rejected it fast (see :mod:`repro.wlm.shedding`).

Slot accounting is leak-proof by construction: tickets are released in
a ``finally`` by the session layer and ``release`` is idempotent, so
timeout, cancellation, and fault paths all return exactly what they
took.
"""

from __future__ import annotations

import itertools
import threading
import time
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    AdmissionQueueFullError,
    StatementShedError,
)
from repro.wlm.budget import WorkBudget
from repro.wlm.classes import ServiceClass

__all__ = ["AdmissionGate", "AdmissionTicket"]

#: Fallback wait slice while queued. Waits are event-driven: a grant
#: sets the waiter's own event, cancellation pokes it through the
#: budget, and deadline waits are exact — so this only bounds the
#: damage of a missed wakeup. It is deliberately coarse: short poll
#: slices made every queued waiter wake, reacquire the gate lock, and
#: re-wait on a timer, and those synchronized reacquisition bursts
#: stalled concurrent bypass admits (benchmark E15 measured ~40ms
#: interactive p95 from 50ms poll slices) while the wakeup churn
#: itself cost ~10% CPU at 5ms slices.
_WAIT_SLICE_SECONDS = 1.0


@dataclass
class AdmissionTicket:
    """Proof of admission; must be released exactly once (idempotent)."""

    engine: str
    class_name: str
    weight: int
    bypassed: bool
    queued_seconds: float = 0.0
    _released: bool = False


@dataclass
class _ClassStats:
    """Live + lifetime per-(gate, class) accounting for MON_WLM."""

    running: int = 0
    queued: int = 0
    admitted: int = 0
    bypassed: int = 0
    shed: int = 0
    queue_timeouts: int = 0
    wait_seconds_total: float = 0.0


class _Waiter:
    """One queued statement; ordered by (priority, arrival sequence).

    Each waiter sleeps on its own event so a grant wakes exactly one
    thread; a shared condition would wake the whole queue on every
    release, and those synchronized lock-reacquisition herds are
    expensive under load (benchmark E15).
    """

    __slots__ = ("priority", "seq", "service_class", "weight", "granted",
                 "abandoned", "event")

    def __init__(self, priority: int, seq: int, service_class: ServiceClass,
                 weight: int) -> None:
        self.priority = priority
        self.seq = seq
        self.service_class = service_class
        self.weight = weight
        self.granted = False
        self.abandoned = False
        self.event = threading.Event()

    @property
    def sort_key(self) -> tuple[int, int]:
        return (self.priority, self.seq)


class AdmissionGate:
    """Slot pool + strict-priority wait queue for one engine."""

    def __init__(
        self,
        engine: str,
        slots: int = 8,
        max_wait_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.engine = engine
        self.slots_total = slots
        self.max_wait_seconds = max_wait_seconds
        self.clock = clock
        self.slots_in_use = 0
        self._condition = threading.Condition()
        self._waiters: list[_Waiter] = []  # kept sorted by sort_key
        self._seq = itertools.count()
        self._class_stats: dict[str, _ClassStats] = {}
        # Lifetime gate counters.
        self.admitted = 0
        self.bypassed = 0
        self.shed = 0
        self.queue_timeouts = 0
        self.releases = 0

    # -- configuration ------------------------------------------------------

    def resize(self, slots: int) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        with self._condition:
            self.slots_total = slots
            self._grant_locked()

    # -- admission ----------------------------------------------------------

    def admit(
        self,
        service_class: ServiceClass,
        weight: int = 1,
        bypass: bool = False,
        budget: Optional[WorkBudget] = None,
        shed_reason: Optional[str] = None,
    ) -> AdmissionTicket:
        """Admit, queue, or shed one statement of ``service_class``.

        ``shed_reason`` is the load shedder's verdict, applied here (under
        the gate lock) so the shed counter and the queue state stay
        consistent. Raises :class:`StatementShedError` /
        :class:`AdmissionQueueFullError` (both retryable) or the budget's
        timeout/cancel errors; returns a ticket otherwise.
        """
        stats = self._stats_for(service_class.name)
        with self._condition:
            if bypass:
                stats.bypassed += 1
                self.bypassed += 1
                return AdmissionTicket(
                    self.engine, service_class.name, 0, bypassed=True
                )
            if shed_reason is not None:
                stats.shed += 1
                self.shed += 1
                raise StatementShedError(
                    f"{self.engine} admission shed {service_class.name} "
                    f"statement: {shed_reason}"
                )
            weight = max(1, min(weight, self.slots_total))
            waiter = _Waiter(
                service_class.priority, next(self._seq), service_class, weight
            )
            insort(self._waiters, waiter, key=lambda w: w.sort_key)
            self._grant_locked()
            if waiter.granted:
                stats.admitted += 1
                self.admitted += 1
                return AdmissionTicket(
                    self.engine, service_class.name, weight, bypassed=False
                )
            # Not immediately admissible: queue (bounded) or shed fast.
            if stats.queued >= service_class.queue_depth:
                self._abandon_locked(waiter)
                stats.shed += 1
                self.shed += 1
                raise AdmissionQueueFullError(
                    f"{self.engine} admission queue for "
                    f"{service_class.name} is full "
                    f"({service_class.queue_depth} waiting)"
                )
            stats.queued += 1
        # Gate lock released: park on the waiter's own event so only
        # the granted (or cancelled) statement ever wakes.
        try:
            queued_seconds = self._wait(waiter, budget)
        finally:
            with self._condition:
                stats.queued -= 1
        with self._condition:
            stats.admitted += 1
            stats.wait_seconds_total += queued_seconds
            self.admitted += 1
        return AdmissionTicket(
            self.engine,
            service_class.name,
            weight,
            bypassed=False,
            queued_seconds=queued_seconds,
        )

    def _wait(self, waiter: _Waiter, budget: Optional[WorkBudget]) -> float:
        """Wait (bounded) until ``waiter`` is granted; returns wait time.

        Event-driven: the wait only ends on this waiter's grant, a
        cancel poke routed through the budget, or the exact earlier of
        the queue bound and the budget deadline. ``waiter.granted`` is
        only trusted under the gate lock.
        """
        started = self.clock()
        deadline = started + self.max_wait_seconds
        if budget is not None:
            budget.register_waker(waiter.event.set)
        try:
            while True:
                now = self.clock()
                wait_for = min(deadline - now, _WAIT_SLICE_SECONDS)
                if budget is not None and budget.deadline is not None:
                    remaining = budget.remaining()
                    if remaining is not None:
                        wait_for = min(wait_for, remaining)
                waiter.event.wait(max(0.0, wait_for))
                with self._condition:
                    if waiter.granted:
                        # A racing cancel is honoured at the statement's
                        # first execution checkpoint; the grant wins here.
                        return self.clock() - started
                    if budget is not None:
                        try:
                            budget.check()
                        except BaseException:
                            self._abandon_locked(waiter)
                            raise
                    if self.clock() >= deadline:
                        self._abandon_locked(waiter)
                        stats = self._stats_for(waiter.service_class.name)
                        stats.queue_timeouts += 1
                        self.queue_timeouts += 1
                        raise StatementShedError(
                            f"{self.engine} admission wait for "
                            f"{waiter.service_class.name} exceeded the "
                            f"{self.max_wait_seconds:g}s bound"
                        )
        finally:
            if budget is not None:
                budget.unregister_waker(waiter.event.set)

    def _abandon_locked(self, waiter: _Waiter) -> None:
        waiter.abandoned = True
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass
        # Abandoning may unblock lower-priority waiters behind us.
        self._grant_locked()

    def _grant_locked(self) -> None:
        """Grant queued waiters in strict (priority, arrival) order.

        A waiter blocked on *gate* slots blocks everyone behind it
        (strict ordering on the shared resource); a waiter blocked only
        by its own class's concurrency cap is skipped — its class is
        saturated and letting other classes run cannot starve it, since
        only its own class's completions can ever unblock it.
        """
        remaining: list[_Waiter] = []
        waiters = self._waiters
        for index, waiter in enumerate(waiters):
            if waiter.granted or waiter.abandoned:
                continue
            if self.slots_total - self.slots_in_use < waiter.weight:
                remaining.extend(
                    w
                    for w in waiters[index:]
                    if not (w.granted or w.abandoned)
                )
                break
            stats = self._stats_for(waiter.service_class.name)
            if stats.running >= waiter.service_class.concurrency_slots:
                remaining.append(waiter)
                continue
            waiter.granted = True
            self.slots_in_use += waiter.weight
            stats.running += 1
            waiter.event.set()
        # Appended in iteration order over a sorted list: still sorted.
        self._waiters = remaining

    # -- release ------------------------------------------------------------

    def release(self, ticket: AdmissionTicket) -> None:
        """Return the ticket's slots; idempotent (never double-frees)."""
        with self._condition:
            if ticket._released:
                return
            ticket._released = True
            self.releases += 1
            if ticket.bypassed:
                return
            self.slots_in_use -= ticket.weight
            stats = self._stats_for(ticket.class_name)
            stats.running -= 1
            self._grant_locked()

    # -- introspection ------------------------------------------------------

    def _stats_for(self, class_name: str) -> _ClassStats:
        # Called both with and without the condition held; a plain
        # setdefault is atomic under the GIL and the Condition's lock is
        # not re-entrant, so no locking here.
        stats = self._class_stats.get(class_name)
        if stats is None:
            stats = self._class_stats.setdefault(class_name, _ClassStats())
        return stats

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def class_stats(self) -> dict[str, _ClassStats]:
        with self._condition:
            return dict(self._class_stats)

    def snapshot(self) -> dict:
        with self._condition:
            return {
                "slots_total": self.slots_total,
                "slots_in_use": self.slots_in_use,
                "queued": len(self._waiters),
                "admitted": self.admitted,
                "bypassed": self.bypassed,
                "shed": self.shed,
                "queue_timeouts": self.queue_timeouts,
                "releases": self.releases,
            }

"""Service classes: the WLM's unit of policy.

Every session (or individual statement, via statement attributes) maps
to one service class; the class carries the knobs the admission
controller enforces:

* ``priority`` — strict admission ordering, lower = more important;
* ``concurrency_slots`` — how many statements of this class may run
  concurrently on one engine gate;
* ``queue_depth`` — how many may wait; beyond this the statement is
  shed with a retryable error instead of piling up;
* ``default_timeout_seconds`` — the statement budget applied when the
  session sets none explicitly (None = unbounded);
* ``sheddable`` — whether the load shedder may reject this class fast
  when the engine is overloaded or the accelerator circuit is open.

The built-in classes mirror the tiers a DB2 WLM setup distinguishes:
``INTERACTIVE`` (dashboards, point lookups), ``SYSDEFAULT`` (everything
unclassified), ``ANALYTICS`` (offloaded OLAP), ``BATCH`` (ELT stages
and background maintenance).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.errors import UnknownObjectError

__all__ = ["ServiceClass", "ServiceClassRegistry", "BUILTIN_CLASSES"]


@dataclass(frozen=True)
class ServiceClass:
    """Immutable policy record; reconfiguration swaps the registry entry."""

    name: str
    #: Strict admission priority — lower values are granted first.
    priority: int
    #: Concurrent statements of this class per engine gate.
    concurrency_slots: int
    #: Waiting statements of this class per engine gate before shedding.
    queue_depth: int
    #: Statement budget when the session sets none (None = unbounded).
    default_timeout_seconds: Optional[float] = None
    #: May the load shedder reject this class fast under pressure?
    sheddable: bool = False

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ValueError("priority must be >= 0")
        if self.concurrency_slots < 1:
            raise ValueError("concurrency_slots must be >= 1")
        if self.queue_depth < 0:
            raise ValueError("queue_depth must be >= 0")
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds <= 0
        ):
            raise ValueError("default_timeout_seconds must be positive")


BUILTIN_CLASSES: tuple[ServiceClass, ...] = (
    ServiceClass(
        name="INTERACTIVE",
        priority=0,
        concurrency_slots=8,
        queue_depth=32,
        default_timeout_seconds=5.0,
    ),
    ServiceClass(
        name="SYSDEFAULT",
        priority=1,
        concurrency_slots=8,
        queue_depth=64,
    ),
    ServiceClass(
        name="ANALYTICS",
        priority=2,
        concurrency_slots=4,
        queue_depth=32,
        default_timeout_seconds=60.0,
        sheddable=True,
    ),
    ServiceClass(
        name="BATCH",
        priority=3,
        concurrency_slots=2,
        queue_depth=64,
        sheddable=True,
    ),
)


class ServiceClassRegistry:
    """Name → :class:`ServiceClass`, seeded with the built-in tiers."""

    def __init__(self) -> None:
        self._classes: dict[str, ServiceClass] = {
            cls.name: cls for cls in BUILTIN_CLASSES
        }
        self._lock = threading.Lock()

    def get(self, name: str) -> ServiceClass:
        cls = self._classes.get(name.upper())
        if cls is None:
            raise UnknownObjectError(f"unknown service class {name.upper()}")
        return cls

    def has(self, name: str) -> bool:
        return name.upper() in self._classes

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._classes)

    def __iter__(self) -> Iterator[ServiceClass]:
        with self._lock:
            classes = list(self._classes.values())
        return iter(sorted(classes, key=lambda c: (c.priority, c.name)))

    def define(self, cls: ServiceClass) -> ServiceClass:
        """Create or replace a class (runtime reconfiguration)."""
        key = cls.name.upper()
        cls = replace(cls, name=key)
        with self._lock:
            self._classes[key] = cls
        return cls

    def update(self, name: str, **changes) -> ServiceClass:
        """Replace selected fields of an existing class."""
        with self._lock:
            current = self._classes.get(name.upper())
            if current is None:
                raise UnknownObjectError(
                    f"unknown service class {name.upper()}"
                )
            updated = replace(current, **changes)
            self._classes[name.upper()] = updated
        return updated

"""Workload management for the federation (``repro.wlm``).

Admission control, priority service classes, statement budgets
(timeouts + cooperative cancellation), and load shedding — the
resource-governance layer every statement passes through before either
engine executes it. See :mod:`repro.wlm.manager` for the façade.
"""

from repro.wlm.admission import AdmissionGate, AdmissionTicket
from repro.wlm.budget import WorkBudget, active_budget, current_budget
from repro.wlm.classes import BUILTIN_CLASSES, ServiceClass, ServiceClassRegistry
from repro.wlm.manager import ENGINES, WorkloadManager
from repro.wlm.shedding import LoadShedder

__all__ = [
    "AdmissionGate",
    "AdmissionTicket",
    "BUILTIN_CLASSES",
    "ENGINES",
    "LoadShedder",
    "ServiceClass",
    "ServiceClassRegistry",
    "WorkBudget",
    "WorkloadManager",
    "active_budget",
    "current_budget",
]

"""The workload manager: one façade over classes, gates, and shedding.

:class:`WorkloadManager` is what the federation talks to. It owns the
service-class registry, one admission gate per engine, the load
shedder, and the statement-outcome counters; the session layer asks it
for a statement budget, then for admission once the router has picked
an engine, and reports terminal WLM outcomes (timeout / cancel) back.

The manager ships **disabled by default**: ``admit`` returns ``None``
and ``budget_for`` only builds a budget for an *explicit* timeout, so
the single-session fast path pays one attribute check (benchmark E15
puts the disabled overhead under 5%). ``SYSPROC.ACCEL_SET_WLM``
enables and reconfigures it at runtime.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import (
    StatementCancelledError,
    StatementShedError,
    StatementTimeoutError,
)
from repro.wlm.admission import AdmissionGate, AdmissionTicket
from repro.wlm.budget import WorkBudget
from repro.wlm.classes import ServiceClassRegistry
from repro.wlm.shedding import LoadShedder

__all__ = ["WorkloadManager", "ENGINES"]

ENGINES = ("DB2", "ACCELERATOR")


class WorkloadManager:
    """Admission, budgets, and shedding for every statement."""

    def __init__(
        self,
        enabled: bool = False,
        health=None,
        db2_slots: int = 8,
        accelerator_slots: int = 4,
        max_queue_seconds: float = 5.0,
        cheap_rows: int = 512,
        heavy_rows: int = 100_000,
        queue_high_water: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.classes = ServiceClassRegistry()
        self.gates: dict[str, AdmissionGate] = {
            "DB2": AdmissionGate(
                "DB2", slots=db2_slots,
                max_wait_seconds=max_queue_seconds, clock=clock,
            ),
            "ACCELERATOR": AdmissionGate(
                "ACCELERATOR", slots=accelerator_slots,
                max_wait_seconds=max_queue_seconds, clock=clock,
            ),
        }
        self.shedder = LoadShedder(
            health=health, queue_high_water=queue_high_water
        )
        #: Estimated input rows below which a statement bypasses the
        #: queue entirely (cost-aware admission; fed by zone maps /
        #: catalog stats through the router's estimate).
        self.cheap_rows = cheap_rows
        #: Estimated input rows above which a statement weighs 2 slots.
        self.heavy_rows = heavy_rows
        #: Estimated optimizer cost (abstract work units from
        #: repro.sql.stats.CostModel) above which a statement weighs 2
        #: slots even when its output row estimate is small — a huge
        #: join that emits ten rows still occupies the engine.
        self.heavy_cost = float(heavy_rows)
        # Statement-outcome counters (lifetime).
        self.statements_timed_out = 0
        self.statements_cancelled = 0
        self.statements_shed = 0

    # -- budgets ------------------------------------------------------------

    def budget_for(
        self,
        class_name: str,
        timeout_override: Optional[float] = None,
    ) -> Optional[WorkBudget]:
        """A budget for one statement, or None when nothing bounds it.

        Explicit timeouts (statement attribute / session register) are
        honoured even while the WLM is disabled; service-class default
        timeouts apply only when it is enabled. With the WLM enabled
        every statement gets a budget — possibly unbounded — so
        :meth:`Connection.cancel` always has something to cancel.
        """
        if timeout_override is not None:
            return WorkBudget(timeout_override, clock=self.clock)
        if not self.enabled:
            return None
        return WorkBudget(
            self.classes.get(class_name).default_timeout_seconds,
            clock=self.clock,
        )

    # -- admission ----------------------------------------------------------

    def weight_for(
        self,
        estimated_rows: Optional[int],
        estimated_cost: Optional[float] = None,
    ) -> int:
        """Cost-aware slot weight: heavy statements reserve two slots.

        Heaviness is the max of the row estimate (legacy) and the
        optimizer's cost estimate, so row-light/work-heavy joins are
        weighted correctly once the cost model has statistics."""
        if estimated_rows is not None and estimated_rows >= self.heavy_rows:
            return 2
        if estimated_cost is not None and estimated_cost >= self.heavy_cost:
            return 2
        return 1

    def is_cheap(self, estimated_rows: Optional[int]) -> bool:
        return estimated_rows is not None and estimated_rows < self.cheap_rows

    def admit(
        self,
        engine: str,
        class_name: str,
        estimated_rows: Optional[int] = None,
        estimated_cost: Optional[float] = None,
        cheap: bool = False,
        budget: Optional[WorkBudget] = None,
    ) -> Optional[AdmissionTicket]:
        """Pass one statement through the engine's gate (None = WLM off).

        ``cheap`` forces the queue bypass when the caller knows better
        than the row estimate (the router's point-lookup classification).
        """
        if not self.enabled:
            return None
        gate = self.gates[engine]
        service_class = self.classes.get(class_name)
        bypass = cheap or self.is_cheap(estimated_rows)
        shed_reason = (
            None if bypass else self.shedder.shed_reason(gate, service_class)
        )
        try:
            return gate.admit(
                service_class,
                weight=self.weight_for(estimated_rows, estimated_cost),
                bypass=bypass,
                budget=budget,
                shed_reason=shed_reason,
            )
        except StatementShedError:
            self.statements_shed += 1
            raise

    def release(self, ticket: Optional[AdmissionTicket]) -> None:
        if ticket is not None:
            self.gates[ticket.engine].release(ticket)

    # -- outcome reporting ---------------------------------------------------

    def record_outcome(self, error: BaseException) -> None:
        """Count terminal WLM outcomes (called from the session layer)."""
        if isinstance(error, StatementTimeoutError):
            self.statements_timed_out += 1
        elif isinstance(error, StatementCancelledError):
            self.statements_cancelled += 1

    # -- reconfiguration (SYSPROC.ACCEL_SET_WLM) ------------------------------

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = enabled

    def resize_gate(self, engine: str, slots: int) -> None:
        gate = self.gates.get(engine.upper())
        if gate is None:
            raise KeyError(f"unknown engine {engine!r}")
        gate.resize(slots)

    # -- observability --------------------------------------------------------

    def snapshot(self) -> dict:
        """Flat mapping for the metrics registry's ``wlm.*`` source."""
        out: dict[str, object] = {
            "enabled": int(self.enabled),
            "statements_timed_out": self.statements_timed_out,
            "statements_cancelled": self.statements_cancelled,
            "statements_shed": self.statements_shed,
        }
        for engine, gate in self.gates.items():
            for key, value in gate.snapshot().items():
                out[f"{engine.lower()}.{key}"] = value
        for key, value in self.shedder.snapshot().items():
            out[key] = value
        return out

    def monitor_rows(self) -> list[tuple]:
        """SYSACCEL.MON_WLM rows: one per (engine gate, service class)."""
        rows: list[tuple] = []
        for engine in ENGINES:
            gate = self.gates[engine]
            stats_by_class = gate.class_stats()
            for cls in self.classes:
                stats = stats_by_class.get(cls.name)
                rows.append(
                    (
                        engine,
                        cls.name,
                        cls.priority,
                        cls.concurrency_slots,
                        cls.queue_depth,
                        gate.slots_total,
                        stats.running if stats else 0,
                        stats.queued if stats else 0,
                        stats.admitted if stats else 0,
                        stats.bypassed if stats else 0,
                        stats.shed if stats else 0,
                        stats.queue_timeouts if stats else 0,
                        round(stats.wait_seconds_total * 1000.0, 3)
                        if stats
                        else 0.0,
                        cls.default_timeout_seconds,
                        "Y" if cls.sheddable else "N",
                    )
                )
        return rows

"""Load shedding: reject sheddable work fast instead of queueing it.

The shedder is consulted *before* a statement is queued. It rejects —
with a retryable :class:`~repro.errors.StatementShedError` — when
letting the statement wait would only deepen an existing overload:

* the target engine's wait queue has crossed its high-water mark
  (a fraction of the gate's configured slot count); queued work beyond
  that point cannot run for several statement-lifetimes anyway;
* the statement targets the accelerator while the PR-1 health
  monitor's circuit is open (OFFLINE): every queued statement would
  either fail or wait out the whole cooldown, so sheddable classes are
  bounced immediately while failback-capable traffic proceeds to the
  router's own handling.

Only classes marked ``sheddable`` (BATCH, ANALYTICS by default) are
ever shed; INTERACTIVE and SYSDEFAULT work is always allowed to queue.
"""

from __future__ import annotations

from typing import Optional

from repro.wlm.admission import AdmissionGate
from repro.wlm.classes import ServiceClass

__all__ = ["LoadShedder"]


class LoadShedder:
    """Fast local overload verdicts for the admission gates."""

    def __init__(
        self,
        health=None,
        queue_high_water: float = 2.0,
    ) -> None:
        #: Optional :class:`repro.federation.health.HealthMonitor`.
        self.health = health
        #: Queue length at which shedding starts, as a multiple of the
        #: gate's slot count (2.0 -> shed when waiters > 2x slots).
        self.queue_high_water = queue_high_water
        # Lifetime verdict counters (surfaced via WLM metrics).
        self.shed_queue_pressure = 0
        self.shed_circuit_open = 0

    def shed_reason(
        self, gate: AdmissionGate, service_class: ServiceClass
    ) -> Optional[str]:
        """Why this statement should be rejected now (None = admit)."""
        if not service_class.sheddable:
            return None
        if (
            gate.engine == "ACCELERATOR"
            and self.health is not None
            and not self.health.available
        ):
            self.shed_circuit_open += 1
            return "accelerator circuit is open"
        high_water = int(gate.slots_total * self.queue_high_water)
        if gate.queue_length >= max(1, high_water):
            self.shed_queue_pressure += 1
            return (
                f"queue high-water mark reached "
                f"({gate.queue_length} waiting >= {max(1, high_water)})"
            )
        return None

    def snapshot(self) -> dict:
        return {
            "shed_queue_pressure": self.shed_queue_pressure,
            "shed_circuit_open": self.shed_circuit_open,
        }

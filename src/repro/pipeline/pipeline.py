"""Staged pipelines runnable in legacy or AOT mode.

A :class:`TransformStage` materialises a SELECT into a stage table:

* **aot mode** — ``CREATE TABLE stage AS (...) IN ACCELERATOR``: the
  intermediate result never leaves the accelerator;
* **legacy mode** — the stage table is a plain DB2 table (the select's
  result is shipped back to DB2), and it is then *added to the
  accelerator* (full copy shipped out again) so the next stage can read
  it there. That round trip per stage is the pre-AOT behaviour the paper
  sets out to eliminate.

A :class:`ProcedureStage` invokes an analytics procedure (``CALL ...``);
its outputs are accelerator-resident in both modes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import ReproError
from repro.federation.system import Connection
from repro.metrics.counters import MovementStats

__all__ = [
    "TransformStage",
    "ProcedureStage",
    "StageMetrics",
    "PipelineResult",
    "Pipeline",
]


@dataclass(frozen=True)
class TransformStage:
    """Materialise ``select_sql`` into ``output_table``."""

    name: str
    output_table: str
    select_sql: str


@dataclass(frozen=True)
class ProcedureStage:
    """Invoke an analytics procedure; ``output_tables`` are dropped on
    re-runs so pipelines are repeatable."""

    name: str
    call_sql: str
    output_tables: tuple[str, ...] = ()


Stage = Union[TransformStage, ProcedureStage]


@dataclass
class StageMetrics:
    name: str
    engine: str
    rowcount: int
    elapsed_seconds: float
    movement: MovementStats


@dataclass
class PipelineResult:
    pipeline: str
    mode: str
    stages: list[StageMetrics] = field(default_factory=list)

    @property
    def total_elapsed(self) -> float:
        return sum(stage.elapsed_seconds for stage in self.stages)

    @property
    def total_movement(self) -> MovementStats:
        total = MovementStats()
        for stage in self.stages:
            total = total + stage.movement
        return total

    def report(self) -> str:
        """Human-readable per-stage table."""
        lines = [
            f"pipeline {self.pipeline} [{self.mode}] — "
            f"{self.total_elapsed * 1000:.1f} ms, "
            f"{self.total_movement.total_bytes:,} bytes moved"
        ]
        for stage in self.stages:
            lines.append(
                f"  {stage.name:<24} {stage.engine:<12} "
                f"rows={stage.rowcount:<8} "
                f"{stage.elapsed_seconds * 1000:8.1f} ms  "
                f"to_accel={stage.movement.bytes_to_accelerator:<10,} "
                f"from_accel={stage.movement.bytes_from_accelerator:,}"
            )
        return "\n".join(lines)


class Pipeline:
    """An ordered list of stages, executable in 'aot' or 'legacy' mode."""

    def __init__(self, name: str, stages: Optional[list[Stage]] = None):
        self.name = name
        self.stages: list[Stage] = list(stages or [])

    def add_transform(
        self, name: str, output_table: str, select_sql: str
    ) -> "Pipeline":
        self.stages.append(TransformStage(name, output_table.upper(), select_sql))
        return self

    def add_procedure(
        self, name: str, call_sql: str, output_tables: tuple[str, ...] = ()
    ) -> "Pipeline":
        self.stages.append(
            ProcedureStage(
                name, call_sql, tuple(t.upper() for t in output_tables)
            )
        )
        return self

    def stage_tables(self) -> list[str]:
        """All tables this pipeline creates (for cleanup)."""
        tables: list[str] = []
        for stage in self.stages:
            if isinstance(stage, TransformStage):
                tables.append(stage.output_table)
            else:
                tables.extend(stage.output_tables)
        return tables

    def cleanup(self, connection: Connection) -> None:
        """Drop all stage outputs (idempotent)."""
        for table in self.stage_tables():
            connection.execute(f"DROP TABLE IF EXISTS {table}")

    def run(self, connection: Connection, mode: str = "aot") -> PipelineResult:
        """Execute all stages; ``mode`` is ``'aot'`` or ``'legacy'``."""
        if mode not in ("aot", "legacy"):
            raise ReproError(f"unknown pipeline mode {mode!r}")
        self.cleanup(connection)
        system = connection.system
        result = PipelineResult(pipeline=self.name, mode=mode)
        for stage in self.stages:
            snapshot = system.interconnect.snapshot()
            started = time.perf_counter()
            if isinstance(stage, TransformStage):
                engine, rowcount = self._run_transform(connection, stage, mode)
            else:
                outcome = connection.execute(stage.call_sql)
                engine, rowcount = outcome.engine, outcome.rowcount
            result.stages.append(
                StageMetrics(
                    name=stage.name,
                    engine=engine,
                    rowcount=rowcount,
                    elapsed_seconds=time.perf_counter() - started,
                    movement=system.interconnect.since(snapshot),
                )
            )
        return result

    def _run_transform(
        self, connection: Connection, stage: TransformStage, mode: str
    ) -> tuple[str, int]:
        system = connection.system
        if mode == "aot":
            outcome = connection.execute(
                f"CREATE TABLE {stage.output_table} AS "
                f"({stage.select_sql}) IN ACCELERATOR"
            )
            return outcome.engine, outcome.rowcount
        # Legacy: materialise in DB2, then re-replicate so the next stage
        # (and the final mining step) can read the table on the
        # accelerator — the per-stage round trip the paper eliminates.
        outcome = connection.execute(
            f"CREATE TABLE {stage.output_table} AS ({stage.select_sql})"
        )
        system.add_table_to_accelerator(stage.output_table)
        return "DB2", outcome.rowcount

"""Multi-stage ELT / mining pipelines (the paper's motivating workload).

Predictive-analytics tools like SPSS push a chain of SQL stages into the
database: prepare → transform → train → score. The paper's point is the
cost difference between materialising each stage in DB2 (legacy) and
keeping every intermediate on the accelerator as an AOT. This package
provides the staged-pipeline API and runs the *same* stage list in either
mode, measuring per-stage data movement and latency.
"""

from repro.pipeline.pipeline import (
    Pipeline,
    PipelineResult,
    ProcedureStage,
    StageMetrics,
    TransformStage,
)

__all__ = [
    "Pipeline",
    "PipelineResult",
    "ProcedureStage",
    "StageMetrics",
    "TransformStage",
]

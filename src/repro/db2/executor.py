"""Row-at-a-time (Volcano-style) query execution.

This is the DB2 side's interpreted executor: it walks the shared logical
plan (:mod:`repro.sql.logical`) with operators as generators over Python
tuples, evaluated one row at a time with compiled scalar expressions.
The design is intentionally classic — sequential scans, hash/nested-loop
joins, hash aggregation — because the performance gap between this model
and the accelerator's vectorised executor is the asymmetry the paper's
offload story rests on.

The executor is engine-agnostic: anything that can provide schemas and row
iterators (a :class:`TableProvider`) can execute queries, which the tests
exploit directly.
"""

from __future__ import annotations

import math
import time
from contextlib import nullcontext
from typing import Callable, Iterator, Optional, Protocol, Sequence, Union

from repro.catalog.schema import TableSchema
from repro.errors import ParseError
from repro.obs.profile import counted_rows, counted_source
from repro.sql import ast, logical
from repro.sql.expressions import (
    Scope,
    compile_scalar,
    expression_label,
)
from repro.sql.correlation import SubqueryExecutor
from repro.sql.planning import (
    canonicalize,
    map_children,
    references_only,
    resolve_order_position,
    sort_rows_with_keys as _sort_with_precomputed,
    split_conjuncts,
)
from repro.sql.stats import CostModel
from repro.wlm.budget import current_budget

__all__ = ["TableProvider", "RowQueryEngine", "canonicalize"]

#: Shared strategy thresholds for the estimate-driven join choice.
_COST_MODEL = CostModel()

#: Rows between cooperative budget checks in the row-at-a-time scan.
#: Small enough that a timed-out statement stops within microseconds,
#: large enough that the per-row cost is one integer test.
_BUDGET_CHECK_ROWS = 1024


class TableProvider(Protocol):
    """What the executor needs from its host engine."""

    def table_schema(self, name: str) -> TableSchema:
        """Schema of a base table (raises UnknownObjectError if missing)."""

    def scan_rows(self, name: str) -> Iterator[tuple]:
        """Iterate the current rows of a base table."""


# ---------------------------------------------------------------------------
# Aggregate accumulators
# ---------------------------------------------------------------------------


class _Accumulator:
    def add(self, value) -> None:
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class _CountStar(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value) -> None:
        self.count += 1

    def result(self):
        return self.count


class _Count(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value) -> None:
        if value is not None:
            self.count += 1

    def result(self):
        return self.count


class _CountDistinct(_Accumulator):
    def __init__(self) -> None:
        self.values: set = set()

    def add(self, value) -> None:
        if value is not None:
            self.values.add(value)

    def result(self):
        return len(self.values)


class _Sum(_Accumulator):
    def __init__(self) -> None:
        self.total = None

    def add(self, value) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self):
        return self.total


class _Avg(_Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value) -> None:
        if value is None:
            return
        self.total += float(value)
        self.count += 1

    def result(self):
        return self.total / self.count if self.count else None


class _Min(_Accumulator):
    def __init__(self) -> None:
        self.value = None

    def add(self, value) -> None:
        if value is None:
            return
        if self.value is None or value < self.value:
            self.value = value

    def result(self):
        return self.value


class _Max(_Accumulator):
    def __init__(self) -> None:
        self.value = None

    def add(self, value) -> None:
        if value is None:
            return
        if self.value is None or value > self.value:
            self.value = value

    def result(self):
        return self.value


class _Moments(_Accumulator):
    """Population variance / stddev via running sums."""

    def __init__(self, stddev: bool) -> None:
        self.stddev = stddev
        self.count = 0
        self.total = 0.0
        self.squares = 0.0

    def add(self, value) -> None:
        if value is None:
            return
        v = float(value)
        self.count += 1
        self.total += v
        self.squares += v * v

    def result(self):
        if not self.count:
            return None
        mean = self.total / self.count
        variance = max(0.0, self.squares / self.count - mean * mean)
        return math.sqrt(variance) if self.stddev else variance


def make_accumulator(call: ast.FunctionCall) -> _Accumulator:
    name = call.name
    if name == "COUNT":
        if call.args and isinstance(call.args[0], ast.Star):
            return _CountStar()
        return _CountDistinct() if call.distinct else _Count()
    if name == "SUM":
        return _Sum()
    if name == "AVG":
        return _Avg()
    if name == "MIN":
        return _Min()
    if name == "MAX":
        return _Max()
    if name == "STDDEV":
        return _Moments(stddev=True)
    if name == "VARIANCE":
        return _Moments(stddev=False)
    raise ParseError(f"unknown aggregate {name}")


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class RowQueryEngine:
    """Interprets logical plans against a :class:`TableProvider`."""

    def __init__(
        self,
        provider: TableProvider,
        params: Sequence[object] = (),
        tracer=None,
        profile=None,
        estimates=None,
    ) -> None:
        self._provider = provider
        self._params = params
        #: Optional cardinality estimates keyed by id(plan node); when
        #: present, INNER joins pick nested-loop vs hash and the hash
        #: build side from them. All strategies are byte-identical.
        self._estimates = estimates if estimates is not None else {}
        #: Optional repro.obs tracer; when enabled, each plan operator
        #: emits an ``op.*`` child span so MON_SPANS shows plan shape.
        self.tracer = tracer
        #: Optional StatementProfile (repro.obs.profile); when set, each
        #: plan operator reports rows/wall-time into it. Streaming
        #: operators are wrapped in counting generators, so the disabled
        #: cost is one ``is None`` check per operator, not per row.
        self._profile = profile
        #: The statement's work budget (None when nothing bounds it),
        #: checked every _BUDGET_CHECK_ROWS rows inside scans.
        self._budget = current_budget()
        self.rows_examined = 0  # exposed for cost/efficiency assertions

    # -- public API ----------------------------------------------------------

    def execute(
        self,
        stmt: Union[ast.SelectStatement, ast.SetOperation, logical.PlanNode],
    ) -> tuple[list[str], list[tuple]]:
        """Run a statement or pre-bound logical plan; returns (columns, rows)."""
        if isinstance(stmt, logical.PlanNode):
            plan = stmt
        else:
            plan = logical.plan_statement(stmt)
        return self._execute_plan(plan)

    def _op_span(self, name: str, **attrs):
        tracer = self.tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return nullcontext()
        return tracer.span(f"op.{name}", **attrs)

    def _stats(self, node: logical.PlanNode):
        """This node's OperatorStats, or None when profiling is off."""
        profile = self._profile
        if profile is None:
            return None
        return profile.stats_for(node)

    # -- plan walker ---------------------------------------------------------

    def _execute_plan(self, node: logical.PlanNode) -> tuple[list[str], list[tuple]]:
        if isinstance(node, logical.Limit):
            with self._op_span("limit"):
                stats = self._stats(node)
                started = time.perf_counter() if stats is not None else 0.0
                columns, rows = self._execute_plan(node.child)
                out = logical.slice_rows(rows, node.offset, node.limit)
                if stats is not None:
                    stats.observe(len(out), time.perf_counter() - started)
                return columns, out
        if isinstance(node, logical.Sort):
            stats = self._stats(node)
            if stats is None:
                return self._execute_sorted(node.child, node.order_by)
            started = time.perf_counter()
            columns, rows = self._execute_sorted(node.child, node.order_by)
            stats.observe(len(rows), time.perf_counter() - started)
            return columns, rows
        if isinstance(node, logical.SetOp):
            return self._execute_set_op(node)
        if isinstance(node, logical.Aggregate):
            return self._execute_aggregate(node, ())
        if isinstance(node, logical.Project):
            return self._execute_project(node, ())
        raise ParseError(f"cannot execute plan node {type(node).__name__}")

    def _execute_sorted(
        self, child: logical.PlanNode, order_by: Sequence[ast.OrderItem]
    ) -> tuple[list[str], list[tuple]]:
        with self._op_span("sort"):
            # Projection and aggregation fuse their ORDER BY (keys may
            # reference the pre-projection input scope); everything else
            # (set operations) sorts over output columns.
            if isinstance(child, logical.Aggregate):
                return self._execute_aggregate(child, order_by)
            if isinstance(child, logical.Project) and child.child is not None:
                return self._execute_project(child, order_by)
            columns, rows = self._execute_plan(child)
            return columns, logical.order_rows_by_output(
                columns, rows, order_by, self._params
            )

    def _execute_set_op(self, node: logical.SetOp) -> tuple[list[str], list[tuple]]:
        stats = self._stats(node)
        started = time.perf_counter() if stats is not None else 0.0
        with self._op_span("setop", op=node.op):
            left_cols, left_rows = self._execute_plan(node.left)
            right_cols, right_rows = self._execute_plan(node.right)
            rows = logical.combine_set_rows(
                node.op, left_cols, left_rows, right_cols, right_rows
            )
        if stats is not None:
            stats.observe(len(rows), time.perf_counter() - started)
        return left_cols, rows

    def _execute_project(
        self, node: logical.Project, order_by: Sequence[ast.OrderItem]
    ) -> tuple[list[str], list[tuple]]:
        stats = self._stats(node)
        if node.child is None:
            columns, out_rows = self._constant_select(node.select_items)
            if stats is not None:
                stats.observe(len(out_rows), 0.0)
            return columns, out_rows
        started = time.perf_counter() if stats is not None else 0.0
        with self._op_span("project"):
            rows, scope = self._build_input(node.child)
            columns, out_rows = self._project(
                node.select_items, order_by, rows, scope
            )
        if node.distinct:
            out_rows = logical.dedup_rows(out_rows)
        if stats is not None:
            stats.observe(len(out_rows), time.perf_counter() - started)
        return columns, out_rows

    def _execute_aggregate(
        self, node: logical.Aggregate, order_by: Sequence[ast.OrderItem]
    ) -> tuple[list[str], list[tuple]]:
        stats = self._stats(node)
        started = time.perf_counter() if stats is not None else 0.0
        with self._op_span("aggregate"):
            rows, scope = self._build_input(node.child)
            columns, out_rows = self._aggregate(node, order_by, rows, scope)
        if node.distinct:
            out_rows = logical.dedup_rows(out_rows)
        if stats is not None:
            stats.observe(len(out_rows), time.perf_counter() - started)
        return columns, out_rows

    # -- select pipeline -------------------------------------------------------

    def _resolver(self, scope: Scope) -> SubqueryExecutor:
        """Scope-aware subquery executor (correlated subqueries bind
        their outer references against ``scope``)."""
        return SubqueryExecutor(
            scope,
            lambda table: self._provider.table_schema(table).column_names,
            lambda query: self.execute(query)[1],
        )

    def _constant_select(
        self, select_items: Sequence[ast.SelectItem]
    ) -> tuple[list[str], list[tuple]]:
        scope = Scope([])
        columns: list[str] = []
        values: list[object] = []
        for position, item in enumerate(select_items):
            if isinstance(item.expression, ast.Star):
                raise ParseError("'*' requires a FROM clause")
            fn = compile_scalar(
                item.expression, scope, self._params, self._resolver(scope)
            )
            values.append(fn(()))
            columns.append(item.alias or expression_label(item.expression, position))
        return columns, [tuple(values)]

    # -- FROM side of the plan ---------------------------------------------------

    def _build_input(
        self, node: logical.PlanNode
    ) -> tuple[Iterator[tuple], Scope]:
        if isinstance(node, logical.Scan):
            return self._build_scan(node)
        if isinstance(node, logical.Filter):
            rows, scope = self._build_input(node.child)
            with self._op_span("filter"):
                predicate = compile_scalar(
                    node.predicate, scope, self._params, self._resolver(scope)
                )
            filtered: Iterator[tuple] = (
                row for row in rows if predicate(row) is True
            )
            stats = self._stats(node)
            if stats is not None:
                filtered = counted_rows(stats, filtered)
            return filtered, scope
        if isinstance(node, logical.SubqueryBind):
            stats = self._stats(node)
            started = time.perf_counter() if stats is not None else 0.0
            with self._op_span("subquery", alias=node.alias):
                columns, rows = self._execute_plan(node.plan)
            if stats is not None:
                stats.observe(len(rows), time.perf_counter() - started)
            scope = Scope([(node.alias, name) for name in columns])
            return iter(rows), scope
        if isinstance(node, logical.Join):
            rows, scope = self._build_join(node)
            stats = self._stats(node)
            if stats is not None:
                rows = counted_rows(stats, rows)
            return rows, scope
        raise ParseError(f"cannot execute plan node {type(node).__name__}")

    def _build_scan(self, node: logical.Scan) -> tuple[Iterator[tuple], Scope]:
        # The row store always materialises full tuples; Scan.columns is
        # advisory for columnar backends and ignored here.
        schema = self._provider.table_schema(node.table)
        scope = Scope([(node.binding, c.name) for c in schema.columns])
        with self._op_span("scan", table=node.table):
            budget = self._budget

            def _scan() -> Iterator[tuple]:
                pending = _BUDGET_CHECK_ROWS
                for row in self._provider.scan_rows(node.table):
                    if budget is not None:
                        pending -= 1
                        if pending <= 0:
                            budget.check()
                            pending = _BUDGET_CHECK_ROWS
                    self.rows_examined += 1
                    yield row

            rows: Iterator[tuple] = _scan()
            stats = self._stats(node)
            if stats is not None:
                # Two-layer wrap: rows_in counts what the scan read,
                # actual_rows what survived the pushed predicate.
                rows = counted_source(stats, rows)
            if node.predicate is not None:
                predicate = compile_scalar(
                    node.predicate, scope, self._params, self._resolver(scope)
                )
                rows = (row for row in rows if predicate(row) is True)
            if stats is not None:
                rows = counted_rows(stats, rows)
        return rows, scope

    def _build_join(self, join: logical.Join) -> tuple[Iterator[tuple], Scope]:
        join_type = join.join_type
        left_node, right_node = join.left, join.right
        swap = join_type == "RIGHT"
        if swap:
            # RIGHT OUTER = LEFT OUTER with swapped inputs + column remap.
            left_node, right_node = right_node, left_node
            join_type = "LEFT"
        with self._op_span("join", join_type=join.join_type):
            left_rows, left_scope = self._build_input(left_node)
            right_rows, right_scope = self._build_input(right_node)
            combined = Scope(left_scope.entries + right_scope.entries)

            if join_type == "CROSS":
                right_list = list(right_rows)

                def _cross() -> Iterator[tuple]:
                    for left in left_rows:
                        for right in right_list:
                            yield left + right

                return _cross(), combined

            condition = join.condition
            if condition is None:
                raise ParseError(f"{join_type} JOIN requires ON")
            if join_type not in ("INNER", "LEFT"):
                raise ParseError(f"unsupported join type {join_type}")
            left_keys, right_keys, residual = self._split_equi(
                condition, left_scope, right_scope, combined
            )
            # Cost-based physical strategy (INNER only; outer joins keep
            # the legacy build-right shape so null extension stays
            # streaming). Every choice yields rows in the same
            # lexicographic left-major order, so results are
            # byte-identical regardless of estimate quality.
            force_nested = False
            build_left = False
            if join_type == "INNER" and self._estimates:
                est_left = self._estimates.get(id(left_node))
                est_right = self._estimates.get(id(right_node))
                if _COST_MODEL.prefer_nested_loop(est_left, est_right):
                    force_nested = True
                elif left_keys and _COST_MODEL.prefer_build_left(est_left, est_right):
                    build_left = True
            if left_keys and not force_nested:
                if build_left:
                    rows = self._hash_join_build_left(
                        left_rows, right_rows, left_keys, right_keys, residual
                    )
                else:
                    rows = self._hash_join(
                        left_rows,
                        right_rows,
                        left_keys,
                        right_keys,
                        residual,
                        combined,
                        right_scope,
                        outer=join_type == "LEFT",
                    )
            else:
                rows = self._nested_loop_join(
                    left_rows,
                    right_rows,
                    condition,
                    combined,
                    right_scope,
                    outer=join_type == "LEFT",
                )
        if not swap:
            return rows, combined
        cut = len(left_scope)  # width of the original right side

        def _remap() -> Iterator[tuple]:
            for row in rows:
                yield row[cut:] + row[:cut]

        entries = combined.entries[cut:] + combined.entries[:cut]
        return _remap(), Scope(entries)

    def _split_equi(
        self,
        condition: ast.Expression,
        left_scope: Scope,
        right_scope: Scope,
        combined: Scope,
    ) -> tuple[list, list, Optional[Callable]]:
        """Extract hashable equi-key pairs; compile the residual predicate."""
        left_keys: list[Callable] = []
        right_keys: list[Callable] = []
        residual_parts: list[ast.Expression] = []
        for conjunct in split_conjuncts(condition):
            if (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
            ):
                sides = (conjunct.left, conjunct.right)
                if references_only(sides[0], left_scope) and references_only(
                    sides[1], right_scope
                ):
                    left_keys.append(compile_scalar(sides[0], left_scope, self._params))
                    right_keys.append(
                        compile_scalar(sides[1], right_scope, self._params)
                    )
                    continue
                if references_only(sides[1], left_scope) and references_only(
                    sides[0], right_scope
                ):
                    left_keys.append(compile_scalar(sides[1], left_scope, self._params))
                    right_keys.append(
                        compile_scalar(sides[0], right_scope, self._params)
                    )
                    continue
            residual_parts.append(conjunct)
        residual: Optional[Callable] = None
        if residual_parts:
            predicate = residual_parts[0]
            for part in residual_parts[1:]:
                predicate = ast.BinaryOp(op="AND", left=predicate, right=part)
            residual = compile_scalar(
                predicate, combined, self._params, self._resolver(combined)
            )
        return left_keys, right_keys, residual

    def _hash_join(
        self,
        left_rows: Iterator[tuple],
        right_rows: Iterator[tuple],
        left_keys: list[Callable],
        right_keys: list[Callable],
        residual: Optional[Callable],
        combined: Scope,
        right_scope: Scope,
        outer: bool,
    ) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        for right in right_rows:
            key = tuple(fn(right) for fn in right_keys)
            if any(part is None for part in key):
                continue  # NULL keys never match
            table.setdefault(key, []).append(right)
        null_extension = (None,) * len(right_scope)
        for left in left_rows:
            key = tuple(fn(left) for fn in left_keys)
            matched = False
            if not any(part is None for part in key):
                for right in table.get(key, ()):
                    candidate = left + right
                    if residual is None or residual(candidate) is True:
                        matched = True
                        yield candidate
            if outer and not matched:
                yield left + null_extension

    def _hash_join_build_left(
        self,
        left_rows: Iterator[tuple],
        right_rows: Iterator[tuple],
        left_keys: list[Callable],
        right_keys: list[Callable],
        residual: Optional[Callable],
    ) -> Iterator[tuple]:
        """INNER hash join building on the (smaller) left input.

        The legacy build-right join emits rows ordered by (left arrival,
        right arrival); probing with the right side produces them in
        (right arrival, left arrival) order instead, so matches are
        buffered and re-sorted to keep the output byte-identical.
        """
        table: dict[tuple, list[tuple[int, tuple]]] = {}
        for index, left in enumerate(left_rows):
            key = tuple(fn(left) for fn in left_keys)
            if any(part is None for part in key):
                continue  # NULL keys never match
            table.setdefault(key, []).append((index, left))
        matches: list[tuple[int, int, tuple]] = []
        for seq, right in enumerate(right_rows):
            key = tuple(fn(right) for fn in right_keys)
            if any(part is None for part in key):
                continue
            for index, left in table.get(key, ()):
                candidate = left + right
                if residual is None or residual(candidate) is True:
                    matches.append((index, seq, candidate))
        matches.sort(key=lambda item: (item[0], item[1]))
        for _, _, candidate in matches:
            yield candidate

    def _nested_loop_join(
        self,
        left_rows: Iterator[tuple],
        right_rows: Iterator[tuple],
        condition: ast.Expression,
        combined: Scope,
        right_scope: Scope,
        outer: bool,
    ) -> Iterator[tuple]:
        predicate = compile_scalar(
            condition, combined, self._params, self._resolver(combined)
        )
        right_list = list(right_rows)
        null_extension = (None,) * len(right_scope)
        for left in left_rows:
            matched = False
            for right in right_list:
                candidate = left + right
                if predicate(candidate) is True:
                    matched = True
                    yield candidate
            if outer and not matched:
                yield left + null_extension

    # -- aggregation ----------------------------------------------------------------

    def _aggregate(
        self,
        node: logical.Aggregate,
        order_by: Sequence[ast.OrderItem],
        rows: Iterator[tuple],
        scope: Scope,
    ) -> tuple[list[str], list[tuple]]:
        group_canon = [canonicalize(g, scope) for g in node.group_by]
        aggregates: list[ast.FunctionCall] = []

        def rewrite(expr: ast.Expression) -> ast.Expression:
            canon = canonicalize(expr, scope) if _resolvable(expr, scope) else None
            if canon is not None:
                for index, group_expr in enumerate(group_canon):
                    if canon == group_expr:
                        return ast.ColumnRef(name=f"__G{index}")
            if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
                expr_canon = _canonicalize_aggregate(expr, scope)
                for index, existing in enumerate(aggregates):
                    if _canonicalize_aggregate(existing, scope) == expr_canon:
                        return ast.ColumnRef(name=f"__A{index}")
                aggregates.append(expr)
                return ast.ColumnRef(name=f"__A{len(aggregates) - 1}")
            return map_children(expr, rewrite)

        select_rewritten: list[tuple[ast.Expression, Optional[str]]] = []
        for item in node.select_items:
            if isinstance(item.expression, ast.Star):
                raise ParseError("'*' cannot be combined with GROUP BY")
            select_rewritten.append((rewrite(item.expression), item.alias))
        having_rewritten = rewrite(node.having) if node.having is not None else None
        alias_map = {
            alias: expr for expr, alias in select_rewritten if alias is not None
        }
        order_rewritten = []
        for order in order_by:
            expr = order.expression
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in alias_map
            ):
                rewritten = alias_map[expr.name]
            elif isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                rewritten = select_rewritten[
                    resolve_order_position(expr.value, len(select_rewritten))
                ][0]
            else:
                rewritten = rewrite(expr)
            order_rewritten.append(
                ast.OrderItem(expression=rewritten, ascending=order.ascending)
            )

        input_resolver = self._resolver(scope)
        group_fns = [
            compile_scalar(g, scope, self._params, input_resolver)
            for g in node.group_by
        ]
        agg_arg_fns: list[Optional[Callable]] = []
        for call in aggregates:
            if call.args and not isinstance(call.args[0], ast.Star):
                agg_arg_fns.append(
                    compile_scalar(
                        call.args[0], scope, self._params, input_resolver
                    )
                )
            else:
                agg_arg_fns.append(None)

        groups: dict[tuple, list[_Accumulator]] = {}
        for row in rows:
            key = tuple(fn(row) for fn in group_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [make_accumulator(c) for c in aggregates]
                groups[key] = accumulators
            for accumulator, arg_fn in zip(accumulators, agg_arg_fns):
                accumulator.add(arg_fn(row) if arg_fn is not None else 1)

        if not groups and not node.group_by:
            # Aggregate over an empty input still yields one row.
            groups[()] = [make_accumulator(c) for c in aggregates]

        post_entries = [(None, f"__G{i}") for i in range(len(node.group_by))]
        post_entries += [(None, f"__A{j}") for j in range(len(aggregates))]
        post_scope = Scope(post_entries)

        post_resolver = self._resolver(post_scope)
        select_fns = [
            compile_scalar(expr, post_scope, self._params, post_resolver)
            for expr, _ in select_rewritten
        ]
        having_fn = (
            compile_scalar(
                having_rewritten, post_scope, self._params, post_resolver
            )
            if having_rewritten is not None
            else None
        )

        columns = [
            alias or expression_label(node.select_items[i].expression, i)
            for i, (_, alias) in enumerate(select_rewritten)
        ]
        out_rows: list[tuple] = []
        order_values: list[tuple] = []
        order_fns = [
            compile_scalar(o.expression, post_scope, self._params)
            for o in order_rewritten
        ]
        for key, accumulators in groups.items():
            post_row = key + tuple(a.result() for a in accumulators)
            if having_fn is not None and having_fn(post_row) is not True:
                continue
            out_rows.append(tuple(fn(post_row) for fn in select_fns))
            if order_fns:
                order_values.append(tuple(fn(post_row) for fn in order_fns))

        if order_fns:
            out_rows = _sort_with_precomputed(
                out_rows, order_values, [o.ascending for o in order_by]
            )
        return columns, out_rows

    # -- projection / ordering ----------------------------------------------------

    def _project(
        self,
        select_items: Sequence[ast.SelectItem],
        order_by: Sequence[ast.OrderItem],
        rows: Iterator[tuple],
        scope: Scope,
    ) -> tuple[list[str], list[tuple]]:
        columns: list[str] = []
        fns: list[Callable] = []
        position = 0
        for item in select_items:
            if isinstance(item.expression, ast.Star):
                for index in scope.star_indexes(item.expression.table):
                    columns.append(scope.entries[index][1])
                    fns.append(_make_picker(index))
                    position += 1
                continue
            fns.append(
                compile_scalar(
                    item.expression, scope, self._params, self._resolver(scope)
                )
            )
            columns.append(
                item.alias or expression_label(item.expression, position)
            )
            position += 1

        if not order_by:
            return columns, [tuple(fn(row) for fn in fns) for row in rows]

        # ORDER BY may reference input columns not in the select list
        # (pre-projection keys), select aliases, or 1-based output
        # positions (post-projection keys).
        alias_map = {
            item.alias: item.expression
            for item in select_items
            if item.alias is not None
        }
        key_plans: list[tuple[str, object]] = []  # ('out', idx)|('in', fn)
        for order in order_by:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                key_plans.append(
                    ("out", resolve_order_position(expr.value, len(columns)))
                )
                continue
            try:
                fn = compile_scalar(
                    expr, scope, self._params, self._resolver(scope)
                )
            except ParseError:
                if not (
                    isinstance(expr, ast.ColumnRef)
                    and expr.table is None
                    and expr.name in alias_map
                ):
                    raise
                fn = compile_scalar(
                    alias_map[expr.name],
                    scope,
                    self._params,
                    self._resolver(scope),
                )
            key_plans.append(("in", fn))

        materialised = list(rows)
        out = [tuple(fn(row) for fn in fns) for row in materialised]
        order_values = [
            tuple(
                out[i][plan[1]] if plan[0] == "out" else plan[1](row)
                for plan in key_plans
            )
            for i, row in enumerate(materialised)
        ]
        out = _sort_with_precomputed(
            out, order_values, [o.ascending for o in order_by]
        )
        return columns, out


def _resolvable(expr: ast.Expression, scope: Scope) -> bool:
    try:
        canonicalize(expr, scope)
        return True
    except ParseError:
        return False


def _canonicalize_aggregate(call: ast.FunctionCall, scope: Scope):
    parts: list[object] = [call.name, call.distinct]
    for arg in call.args:
        if isinstance(arg, ast.Star):
            parts.append("*")
        else:
            parts.append(canonicalize(arg, scope))
    return tuple(parts)


def _make_picker(index: int) -> Callable[[tuple], object]:
    return lambda row: row[index]

"""Row-at-a-time (Volcano-style) query execution.

This is the DB2 side's interpreted executor: operators are generators over
Python tuples, evaluated one row at a time with compiled scalar
expressions. The design is intentionally classic — sequential scans,
hash/nested-loop joins, hash aggregation — because the performance gap
between this model and the accelerator's vectorised executor is the
asymmetry the paper's offload story rests on.

The executor is engine-agnostic: anything that can provide schemas and row
iterators (a :class:`TableProvider`) can execute queries, which the tests
exploit directly.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Optional, Protocol, Sequence, Union

from repro.catalog.schema import TableSchema
from repro.errors import ParseError, SqlError
from repro.sql import ast
from repro.sql.expressions import (
    Scope,
    compile_scalar,
    expression_label,
)
from repro.sql.correlation import SubqueryExecutor
from repro.sql.planning import (
    canonicalize,
    map_children,
    references_only,
    sort_rows_with_keys as _sort_with_precomputed,
    split_conjuncts,
)

__all__ = ["TableProvider", "RowQueryEngine", "canonicalize"]


class TableProvider(Protocol):
    """What the executor needs from its host engine."""

    def table_schema(self, name: str) -> TableSchema:
        """Schema of a base table (raises UnknownObjectError if missing)."""

    def scan_rows(self, name: str) -> Iterator[tuple]:
        """Iterate the current rows of a base table."""


# ---------------------------------------------------------------------------
# Aggregate accumulators
# ---------------------------------------------------------------------------


class _Accumulator:
    def add(self, value) -> None:
        raise NotImplementedError

    def result(self):
        raise NotImplementedError


class _CountStar(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value) -> None:
        self.count += 1

    def result(self):
        return self.count


class _Count(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value) -> None:
        if value is not None:
            self.count += 1

    def result(self):
        return self.count


class _CountDistinct(_Accumulator):
    def __init__(self) -> None:
        self.values: set = set()

    def add(self, value) -> None:
        if value is not None:
            self.values.add(value)

    def result(self):
        return len(self.values)


class _Sum(_Accumulator):
    def __init__(self) -> None:
        self.total = None

    def add(self, value) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self):
        return self.total


class _Avg(_Accumulator):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value) -> None:
        if value is None:
            return
        self.total += float(value)
        self.count += 1

    def result(self):
        return self.total / self.count if self.count else None


class _Min(_Accumulator):
    def __init__(self) -> None:
        self.value = None

    def add(self, value) -> None:
        if value is None:
            return
        if self.value is None or value < self.value:
            self.value = value

    def result(self):
        return self.value


class _Max(_Accumulator):
    def __init__(self) -> None:
        self.value = None

    def add(self, value) -> None:
        if value is None:
            return
        if self.value is None or value > self.value:
            self.value = value

    def result(self):
        return self.value


class _Moments(_Accumulator):
    """Population variance / stddev via running sums."""

    def __init__(self, stddev: bool) -> None:
        self.stddev = stddev
        self.count = 0
        self.total = 0.0
        self.squares = 0.0

    def add(self, value) -> None:
        if value is None:
            return
        v = float(value)
        self.count += 1
        self.total += v
        self.squares += v * v

    def result(self):
        if not self.count:
            return None
        mean = self.total / self.count
        variance = max(0.0, self.squares / self.count - mean * mean)
        return math.sqrt(variance) if self.stddev else variance


def make_accumulator(call: ast.FunctionCall) -> _Accumulator:
    name = call.name
    if name == "COUNT":
        if call.args and isinstance(call.args[0], ast.Star):
            return _CountStar()
        return _CountDistinct() if call.distinct else _Count()
    if name == "SUM":
        return _Sum()
    if name == "AVG":
        return _Avg()
    if name == "MIN":
        return _Min()
    if name == "MAX":
        return _Max()
    if name == "STDDEV":
        return _Moments(stddev=True)
    if name == "VARIANCE":
        return _Moments(stddev=False)
    raise ParseError(f"unknown aggregate {name}")


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class RowQueryEngine:
    """Executes SELECT statements against a :class:`TableProvider`."""

    def __init__(
        self,
        provider: TableProvider,
        params: Sequence[object] = (),
    ) -> None:
        self._provider = provider
        self._params = params
        self.rows_examined = 0  # exposed for cost/efficiency assertions

    # -- public API ----------------------------------------------------------

    def execute(
        self, stmt: Union[ast.SelectStatement, ast.SetOperation]
    ) -> tuple[list[str], list[tuple]]:
        """Run the statement; returns (column names, rows)."""
        if isinstance(stmt, ast.SetOperation):
            return self._execute_set_operation(stmt)
        return self._execute_select(stmt)

    # -- set operations --------------------------------------------------------

    def _execute_set_operation(
        self, stmt: ast.SetOperation
    ) -> tuple[list[str], list[tuple]]:
        columns, rows = self._combine_set_operation(stmt)
        if stmt.order_by:
            scope = Scope([(None, name) for name in columns])
            order_fns = []
            for order in stmt.order_by:
                expr = order.expression
                if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                    if not 1 <= expr.value <= len(columns):
                        raise ParseError(
                            f"ORDER BY position {expr.value} is out of range"
                        )
                    expr = ast.ColumnRef(name=columns[expr.value - 1])
                order_fns.append(compile_scalar(expr, scope, self._params))
            keys = [tuple(fn(row) for fn in order_fns) for row in rows]
            rows = _sort_with_precomputed(
                rows, keys, [o.ascending for o in stmt.order_by]
            )
        rows = _slice(rows, stmt.offset, stmt.limit)
        return columns, rows

    def _combine_set_operation(
        self, stmt: ast.SetOperation
    ) -> tuple[list[str], list[tuple]]:
        left_cols, left_rows = self.execute(stmt.left)
        right_cols, right_rows = self.execute(stmt.right)
        if len(left_cols) != len(right_cols):
            raise SqlError("set operation operands have different widths")
        if stmt.op == "UNION ALL":
            return left_cols, left_rows + right_rows
        if stmt.op == "UNION":
            seen: set[tuple] = set()
            out: list[tuple] = []
            for row in left_rows + right_rows:
                if row not in seen:
                    seen.add(row)
                    out.append(row)
            return left_cols, out
        if stmt.op == "EXCEPT":
            right_set = set(right_rows)
            seen = set()
            out = []
            for row in left_rows:
                if row not in right_set and row not in seen:
                    seen.add(row)
                    out.append(row)
            return left_cols, out
        if stmt.op == "INTERSECT":
            right_set = set(right_rows)
            seen = set()
            out = []
            for row in left_rows:
                if row in right_set and row not in seen:
                    seen.add(row)
                    out.append(row)
            return left_cols, out
        raise ParseError(f"unknown set operation {stmt.op}")

    # -- select pipeline -------------------------------------------------------

    def _resolver(self, scope: Scope) -> SubqueryExecutor:
        """Scope-aware subquery executor (correlated subqueries bind
        their outer references against ``scope``)."""
        return SubqueryExecutor(
            scope,
            lambda table: self._provider.table_schema(table).column_names,
            lambda query: self._execute_select(query)[1],
        )

    def _execute_select(
        self, stmt: ast.SelectStatement
    ) -> tuple[list[str], list[tuple]]:
        if stmt.from_item is None:
            return self._constant_select(stmt)

        rows, scope = self._build_from(stmt.from_item)

        if stmt.where is not None:
            predicate = compile_scalar(
                stmt.where, scope, self._params, self._resolver(scope)
            )
            rows = (row for row in rows if predicate(row) is True)

        if stmt.group_by or stmt.is_aggregate_query:
            columns, out_rows, ordered = self._aggregate(stmt, rows, scope)
        else:
            if stmt.having is not None:
                raise ParseError("HAVING requires GROUP BY or aggregates")
            columns, out_rows, ordered = self._project(stmt, rows, scope)

        if stmt.distinct:
            out_rows = _dedup(out_rows)
        if stmt.order_by and not ordered:
            out_rows = self._order(stmt, out_rows, columns)
        out_rows = _slice(out_rows, stmt.offset, stmt.limit)
        return columns, out_rows

    def _constant_select(
        self, stmt: ast.SelectStatement
    ) -> tuple[list[str], list[tuple]]:
        scope = Scope([])
        columns: list[str] = []
        values: list[object] = []
        for position, item in enumerate(stmt.select_items):
            if isinstance(item.expression, ast.Star):
                raise ParseError("'*' requires a FROM clause")
            fn = compile_scalar(
                item.expression, scope, self._params, self._resolver(scope)
            )
            values.append(fn(()))
            columns.append(item.alias or expression_label(item.expression, position))
        return columns, [tuple(values)]

    # -- FROM clause -------------------------------------------------------------

    def _build_from(
        self, item: ast.FromItem
    ) -> tuple[Iterator[tuple], Scope]:
        if isinstance(item, ast.TableRef):
            schema = self._provider.table_schema(item.name)
            scope = Scope([(item.binding, c.name) for c in schema.columns])

            def _scan() -> Iterator[tuple]:
                for row in self._provider.scan_rows(item.name):
                    self.rows_examined += 1
                    yield row

            return _scan(), scope
        if isinstance(item, ast.SubquerySource):
            columns, rows = self._execute_select(item.query)
            scope = Scope([(item.alias, name) for name in columns])
            return iter(rows), scope
        if isinstance(item, ast.Join):
            return self._build_join(item)
        raise ParseError(f"unsupported FROM item {type(item).__name__}")

    def _build_join(self, join: ast.Join) -> tuple[Iterator[tuple], Scope]:
        if join.join_type == "RIGHT":
            # RIGHT OUTER = LEFT OUTER with swapped inputs + column remap.
            swapped = ast.Join(
                left=join.right,
                right=join.left,
                join_type="LEFT",
                condition=join.condition,
            )
            rows, scope = self._build_join(swapped)
            left_width = len(self._scope_of(join.left))
            right_width = len(scope) - left_width

            def _remap() -> Iterator[tuple]:
                for row in rows:
                    yield row[right_width:] + row[:right_width]

            entries = scope.entries[right_width:] + scope.entries[:right_width]
            return _remap(), Scope(entries)

        left_rows, left_scope = self._build_from(join.left)
        right_rows, right_scope = self._build_from(join.right)
        combined = Scope(left_scope.entries + right_scope.entries)

        if join.join_type == "CROSS":
            right_list = list(right_rows)

            def _cross() -> Iterator[tuple]:
                for left in left_rows:
                    for right in right_list:
                        yield left + right

            return _cross(), combined

        condition = join.condition
        if condition is None:
            raise ParseError(f"{join.join_type} JOIN requires ON")
        left_keys, right_keys, residual = self._split_equi(
            condition, left_scope, right_scope, combined
        )
        if left_keys:
            rows = self._hash_join(
                left_rows,
                right_rows,
                left_keys,
                right_keys,
                residual,
                combined,
                right_scope,
                outer=join.join_type == "LEFT",
            )
        else:
            rows = self._nested_loop_join(
                left_rows,
                right_rows,
                condition,
                combined,
                right_scope,
                outer=join.join_type == "LEFT",
            )
        if join.join_type not in ("INNER", "LEFT"):
            raise ParseError(f"unsupported join type {join.join_type}")
        return rows, combined

    def _scope_of(self, item: ast.FromItem) -> Scope:
        """Scope shape of a FROM item without executing it (for remaps)."""
        if isinstance(item, ast.TableRef):
            schema = self._provider.table_schema(item.name)
            return Scope([(item.binding, c.name) for c in schema.columns])
        if isinstance(item, ast.SubquerySource):
            # Width needs output column names; execute the header cheaply by
            # compiling labels only.
            names = [
                sub.alias or expression_label(sub.expression, i)
                for i, sub in enumerate(item.query.select_items)
            ]
            return Scope([(item.alias, name) for name in names])
        if isinstance(item, ast.Join):
            left = self._scope_of(item.left)
            right = self._scope_of(item.right)
            return Scope(left.entries + right.entries)
        raise ParseError(f"unsupported FROM item {type(item).__name__}")

    def _split_equi(
        self,
        condition: ast.Expression,
        left_scope: Scope,
        right_scope: Scope,
        combined: Scope,
    ) -> tuple[list, list, Optional[Callable]]:
        """Extract hashable equi-key pairs; compile the residual predicate."""
        left_keys: list[Callable] = []
        right_keys: list[Callable] = []
        residual_parts: list[ast.Expression] = []
        for conjunct in split_conjuncts(condition):
            if (
                isinstance(conjunct, ast.BinaryOp)
                and conjunct.op == "="
            ):
                sides = (conjunct.left, conjunct.right)
                if references_only(sides[0], left_scope) and references_only(
                    sides[1], right_scope
                ):
                    left_keys.append(compile_scalar(sides[0], left_scope, self._params))
                    right_keys.append(
                        compile_scalar(sides[1], right_scope, self._params)
                    )
                    continue
                if references_only(sides[1], left_scope) and references_only(
                    sides[0], right_scope
                ):
                    left_keys.append(compile_scalar(sides[1], left_scope, self._params))
                    right_keys.append(
                        compile_scalar(sides[0], right_scope, self._params)
                    )
                    continue
            residual_parts.append(conjunct)
        residual: Optional[Callable] = None
        if residual_parts:
            predicate = residual_parts[0]
            for part in residual_parts[1:]:
                predicate = ast.BinaryOp(op="AND", left=predicate, right=part)
            residual = compile_scalar(
                predicate, combined, self._params, self._resolver(combined)
            )
        return left_keys, right_keys, residual

    def _hash_join(
        self,
        left_rows: Iterator[tuple],
        right_rows: Iterator[tuple],
        left_keys: list[Callable],
        right_keys: list[Callable],
        residual: Optional[Callable],
        combined: Scope,
        right_scope: Scope,
        outer: bool,
    ) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        for right in right_rows:
            key = tuple(fn(right) for fn in right_keys)
            if any(part is None for part in key):
                continue  # NULL keys never match
            table.setdefault(key, []).append(right)
        null_extension = (None,) * len(right_scope)
        for left in left_rows:
            key = tuple(fn(left) for fn in left_keys)
            matched = False
            if not any(part is None for part in key):
                for right in table.get(key, ()):
                    candidate = left + right
                    if residual is None or residual(candidate) is True:
                        matched = True
                        yield candidate
            if outer and not matched:
                yield left + null_extension

    def _nested_loop_join(
        self,
        left_rows: Iterator[tuple],
        right_rows: Iterator[tuple],
        condition: ast.Expression,
        combined: Scope,
        right_scope: Scope,
        outer: bool,
    ) -> Iterator[tuple]:
        predicate = compile_scalar(
            condition, combined, self._params, self._resolver(combined)
        )
        right_list = list(right_rows)
        null_extension = (None,) * len(right_scope)
        for left in left_rows:
            matched = False
            for right in right_list:
                candidate = left + right
                if predicate(candidate) is True:
                    matched = True
                    yield candidate
            if outer and not matched:
                yield left + null_extension

    # -- aggregation ----------------------------------------------------------------

    def _aggregate(
        self,
        stmt: ast.SelectStatement,
        rows: Iterator[tuple],
        scope: Scope,
    ) -> tuple[list[str], list[tuple], bool]:
        group_canon = [canonicalize(g, scope) for g in stmt.group_by]
        aggregates: list[ast.FunctionCall] = []

        def rewrite(expr: ast.Expression) -> ast.Expression:
            canon = canonicalize(expr, scope) if _resolvable(expr, scope) else None
            if canon is not None:
                for index, group_expr in enumerate(group_canon):
                    if canon == group_expr:
                        return ast.ColumnRef(name=f"__G{index}")
            if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
                expr_canon = _canonicalize_aggregate(expr, scope)
                for index, existing in enumerate(aggregates):
                    if _canonicalize_aggregate(existing, scope) == expr_canon:
                        return ast.ColumnRef(name=f"__A{index}")
                aggregates.append(expr)
                return ast.ColumnRef(name=f"__A{len(aggregates) - 1}")
            return map_children(expr, rewrite)

        select_rewritten: list[tuple[ast.Expression, Optional[str]]] = []
        for item in stmt.select_items:
            if isinstance(item.expression, ast.Star):
                raise ParseError("'*' cannot be combined with GROUP BY")
            select_rewritten.append((rewrite(item.expression), item.alias))
        having_rewritten = rewrite(stmt.having) if stmt.having is not None else None
        alias_map = {
            alias: expr for expr, alias in select_rewritten if alias is not None
        }
        order_rewritten = []
        for order in stmt.order_by:
            expr = order.expression
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in alias_map
            ):
                rewritten = alias_map[expr.name]
            elif isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                rewritten = _positional(select_rewritten, expr.value)
            else:
                rewritten = rewrite(expr)
            order_rewritten.append(
                ast.OrderItem(expression=rewritten, ascending=order.ascending)
            )

        input_resolver = self._resolver(scope)
        group_fns = [
            compile_scalar(g, scope, self._params, input_resolver)
            for g in stmt.group_by
        ]
        agg_arg_fns: list[Optional[Callable]] = []
        for call in aggregates:
            if call.args and not isinstance(call.args[0], ast.Star):
                agg_arg_fns.append(
                    compile_scalar(
                        call.args[0], scope, self._params, input_resolver
                    )
                )
            else:
                agg_arg_fns.append(None)

        groups: dict[tuple, list[_Accumulator]] = {}
        for row in rows:
            key = tuple(fn(row) for fn in group_fns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [make_accumulator(c) for c in aggregates]
                groups[key] = accumulators
            for accumulator, arg_fn in zip(accumulators, agg_arg_fns):
                accumulator.add(arg_fn(row) if arg_fn is not None else 1)

        if not groups and not stmt.group_by:
            # Aggregate over an empty input still yields one row.
            groups[()] = [make_accumulator(c) for c in aggregates]

        post_entries = [(None, f"__G{i}") for i in range(len(stmt.group_by))]
        post_entries += [(None, f"__A{j}") for j in range(len(aggregates))]
        post_scope = Scope(post_entries)

        post_resolver = self._resolver(post_scope)
        select_fns = [
            compile_scalar(expr, post_scope, self._params, post_resolver)
            for expr, _ in select_rewritten
        ]
        having_fn = (
            compile_scalar(
                having_rewritten, post_scope, self._params, post_resolver
            )
            if having_rewritten is not None
            else None
        )

        columns = [
            alias or expression_label(stmt.select_items[i].expression, i)
            for i, (_, alias) in enumerate(select_rewritten)
        ]
        out_rows: list[tuple] = []
        order_values: list[tuple] = []
        order_fns = [
            compile_scalar(o.expression, post_scope, self._params)
            for o in order_rewritten
        ]
        for key, accumulators in groups.items():
            post_row = key + tuple(a.result() for a in accumulators)
            if having_fn is not None and having_fn(post_row) is not True:
                continue
            out_rows.append(tuple(fn(post_row) for fn in select_fns))
            if order_fns:
                order_values.append(tuple(fn(post_row) for fn in order_fns))

        ordered = bool(order_fns)
        if order_fns:
            out_rows = _sort_with_precomputed(
                out_rows, order_values, [o.ascending for o in stmt.order_by]
            )
        return columns, out_rows, ordered

    # -- projection / ordering ----------------------------------------------------

    def _project(
        self,
        stmt: ast.SelectStatement,
        rows: Iterator[tuple],
        scope: Scope,
    ) -> tuple[list[str], list[tuple], bool]:
        columns: list[str] = []
        fns: list[Callable] = []
        position = 0
        for item in stmt.select_items:
            if isinstance(item.expression, ast.Star):
                for index in scope.star_indexes(item.expression.table):
                    columns.append(scope.entries[index][1])
                    fns.append(_make_picker(index))
                    position += 1
                continue
            fns.append(
                compile_scalar(
                    item.expression, scope, self._params, self._resolver(scope)
                )
            )
            columns.append(
                item.alias or expression_label(item.expression, position)
            )
            position += 1

        if not stmt.order_by:
            return columns, [tuple(fn(row) for fn in fns) for row in rows], False

        # ORDER BY may reference input columns not in the select list
        # (pre-projection keys), select aliases, or 1-based output
        # positions (post-projection keys).
        alias_map = {
            item.alias: item.expression
            for item in stmt.select_items
            if item.alias is not None
        }
        key_plans: list[tuple[str, object]] = []  # ('out', idx)|('in', fn)
        for order in stmt.order_by:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                if not 1 <= expr.value <= len(columns):
                    raise ParseError(
                        f"ORDER BY position {expr.value} is out of range"
                    )
                key_plans.append(("out", expr.value - 1))
                continue
            try:
                fn = compile_scalar(
                    expr, scope, self._params, self._resolver(scope)
                )
            except ParseError:
                if not (
                    isinstance(expr, ast.ColumnRef)
                    and expr.table is None
                    and expr.name in alias_map
                ):
                    raise
                fn = compile_scalar(
                    alias_map[expr.name],
                    scope,
                    self._params,
                    self._resolver(scope),
                )
            key_plans.append(("in", fn))

        materialised = list(rows)
        out = [tuple(fn(row) for fn in fns) for row in materialised]
        order_values = [
            tuple(
                out[i][plan[1]] if plan[0] == "out" else plan[1](row)
                for plan in key_plans
            )
            for i, row in enumerate(materialised)
        ]
        out = _sort_with_precomputed(
            out, order_values, [o.ascending for o in stmt.order_by]
        )
        return columns, out, True

    def _order(
        self,
        stmt: ast.SelectStatement,
        rows: list[tuple],
        columns: list[str],
    ) -> list[tuple]:
        if not stmt.order_by:
            return rows
        # At this point ordering keys must be output columns, by name or
        # 1-based position (defensive path; projection normally orders).
        scope = Scope([(None, name) for name in columns])
        order_fns = []
        for order in stmt.order_by:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                if not 1 <= expr.value <= len(columns):
                    raise ParseError(
                        f"ORDER BY position {expr.value} is out of range"
                    )
                expr = ast.ColumnRef(name=columns[expr.value - 1])
            order_fns.append(compile_scalar(expr, scope, self._params))
        order_values = [tuple(fn(row) for fn in order_fns) for row in rows]
        return _sort_with_precomputed(
            rows, order_values, [o.ascending for o in stmt.order_by]
        )


def _positional(
    select_items: list[tuple[ast.Expression, Optional[str]]], position: int
) -> ast.Expression:
    """ORDER BY <n>: the n-th (1-based) select-list expression."""
    if not 1 <= position <= len(select_items):
        raise ParseError(f"ORDER BY position {position} is out of range")
    return select_items[position - 1][0]


def _resolvable(expr: ast.Expression, scope: Scope) -> bool:
    try:
        canonicalize(expr, scope)
        return True
    except ParseError:
        return False


def _canonicalize_aggregate(call: ast.FunctionCall, scope: Scope):
    parts: list[object] = [call.name, call.distinct]
    for arg in call.args:
        if isinstance(arg, ast.Star):
            parts.append("*")
        else:
            parts.append(canonicalize(arg, scope))
    return tuple(parts)


def _make_picker(index: int) -> Callable[[tuple], object]:
    return lambda row: row[index]


def _dedup(rows: list[tuple]) -> list[tuple]:
    seen: set[tuple] = set()
    out: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def _slice(
    rows: list[tuple], offset: Optional[int], limit: Optional[int]
) -> list[tuple]:
    start = offset or 0
    if limit is None:
        return rows[start:] if start else rows
    return rows[start : start + limit]



"""DB2 change log — the capture side of incremental update.

Every committed modification of a *replicated* (accelerated) table is
appended here as a :class:`ChangeRecord`. The federation's replication
service drains the log and applies the records to the accelerator's
snapshot copies. The log also does byte accounting: a change shipped to
the accelerator costs interconnect bandwidth, which is exactly the price
the paper's legacy ELT flow pays per materialised stage.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.catalog.schema import TableSchema

__all__ = ["ChangeRecord", "ChangeLog"]


@dataclass(frozen=True)
class ChangeRecord:
    """One committed row change.

    ``op`` is INSERT, DELETE, or UPDATE. For DELETE/UPDATE, ``before`` is
    the old row image (used to locate the row in the copy); for
    INSERT/UPDATE, ``after`` is the new image.
    """

    lsn: int
    txn_id: int
    table: str
    op: str
    before: Optional[tuple] = None
    after: Optional[tuple] = None

    def byte_size(self, schema: TableSchema) -> int:
        total = 24  # header: lsn, txn, op, table reference
        if self.before is not None:
            total += schema.row_byte_size(self.before)
        if self.after is not None:
            total += schema.row_byte_size(self.after)
        return total


class ChangeLog:
    """Append-only, thread-safe log with reader cursors."""

    def __init__(self) -> None:
        self._records: list[ChangeRecord] = []
        self._next_lsn = 1
        self._guard = threading.Lock()

    def __len__(self) -> int:
        return len(self._records)

    @property
    def head_lsn(self) -> int:
        """LSN the next record will get."""
        return self._next_lsn

    def make_record(
        self,
        txn_id: int,
        table: str,
        op: str,
        before: Optional[tuple] = None,
        after: Optional[tuple] = None,
    ) -> ChangeRecord:
        """Build a record without assigning an LSN (buffered until commit)."""
        return ChangeRecord(
            lsn=0, txn_id=txn_id, table=table, op=op, before=before, after=after
        )

    def publish(self, records: Sequence[ChangeRecord]) -> int:
        """Append committed records, assigning LSNs; returns last LSN."""
        with self._guard:
            for record in records:
                stamped = ChangeRecord(
                    lsn=self._next_lsn,
                    txn_id=record.txn_id,
                    table=record.table,
                    op=record.op,
                    before=record.before,
                    after=record.after,
                )
                self._records.append(stamped)
                self._next_lsn += 1
            return self._next_lsn - 1

    def read_from(
        self, lsn: int, limit: Optional[int] = None
    ) -> list[ChangeRecord]:
        """Records with LSN >= ``lsn`` in order, at most ``limit`` of them."""
        with self._guard:
            start = lsn - 1
            if start < 0:
                start = 0
            if limit is None:
                return self._records[start:]
            return self._records[start : start + limit]

    def backlog(self, lsn: int) -> int:
        """How many records a reader at ``lsn`` has not consumed yet."""
        with self._guard:
            return max(0, (self._next_lsn - 1) - (lsn - 1))

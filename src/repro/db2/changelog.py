"""DB2 change log — the capture side of incremental update.

Every committed modification of a *replicated* (accelerated) table is
appended here as a :class:`ChangeRecord`. The federation's replication
service drains the log and applies the records to the accelerator's
snapshot copies. The log also does byte accounting: a change shipped to
the accelerator costs interconnect bandwidth, which is exactly the price
the paper's legacy ELT flow pays per materialised stage.

Retention: the log is no longer unbounded. :meth:`ChangeLog.trim` drops
the oldest records up to a target LSN, but never past any registered
*retention guard* — the replication cursor and the oldest live recovery
checkpoint both register one, so a trim can never destroy records a
restarting accelerator would still need to replay. A reader whose cursor
nevertheless falls behind the trim point (e.g. a checkpoint restored
after an aggressive forced trim) gets :class:`ChangelogTruncatedError`
and must fall back to a full table reload.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.catalog.schema import TableSchema
from repro.errors import ChangelogTruncatedError

__all__ = ["ChangeRecord", "ChangeLog"]


@dataclass(frozen=True)
class ChangeRecord:
    """One committed row change.

    ``op`` is INSERT, DELETE, or UPDATE. For DELETE/UPDATE, ``before`` is
    the old row image (used to locate the row in the copy); for
    INSERT/UPDATE, ``after`` is the new image.
    """

    lsn: int
    txn_id: int
    table: str
    op: str
    before: Optional[tuple] = None
    after: Optional[tuple] = None

    def byte_size(self, schema: TableSchema) -> int:
        total = 24  # header: lsn, txn, op, table reference
        if self.before is not None:
            total += schema.row_byte_size(self.before)
        if self.after is not None:
            total += schema.row_byte_size(self.after)
        return total


class ChangeLog:
    """Append-only, thread-safe log with reader cursors and retention."""

    def __init__(self) -> None:
        self._records: list[ChangeRecord] = []
        self._next_lsn = 1
        #: Oldest LSN still retained (trim moves it forward).
        self._base_lsn = 1
        self._guard = threading.Lock()
        #: Callables returning the lowest LSN their owner still needs
        #: (None = no constraint right now). ``trim`` never passes the
        #: minimum over all guards.
        self._retention_guards: list[Callable[[], Optional[int]]] = []
        self.records_trimmed = 0
        self.trims = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def head_lsn(self) -> int:
        """LSN the next record will get."""
        return self._next_lsn

    @property
    def oldest_lsn(self) -> int:
        """Oldest LSN still readable (head_lsn when the log is empty)."""
        return self._base_lsn

    def make_record(
        self,
        txn_id: int,
        table: str,
        op: str,
        before: Optional[tuple] = None,
        after: Optional[tuple] = None,
    ) -> ChangeRecord:
        """Build a record without assigning an LSN (buffered until commit)."""
        return ChangeRecord(
            lsn=0, txn_id=txn_id, table=table, op=op, before=before, after=after
        )

    def publish(self, records: Sequence[ChangeRecord]) -> int:
        """Append committed records, assigning LSNs; returns last LSN."""
        with self._guard:
            for record in records:
                stamped = ChangeRecord(
                    lsn=self._next_lsn,
                    txn_id=record.txn_id,
                    table=record.table,
                    op=record.op,
                    before=record.before,
                    after=record.after,
                )
                self._records.append(stamped)
                self._next_lsn += 1
            return self._next_lsn - 1

    def read_from(
        self, lsn: int, limit: Optional[int] = None
    ) -> list[ChangeRecord]:
        """Records with LSN >= ``lsn`` in order, at most ``limit`` of them.

        Raises :class:`ChangelogTruncatedError` when ``lsn`` predates the
        retained window — the caller's incremental catch-up is impossible
        and it must resynchronise with a full reload instead.
        """
        with self._guard:
            if lsn < self._base_lsn:
                raise ChangelogTruncatedError(
                    f"changelog truncated: LSN {lsn} requested but oldest "
                    f"retained LSN is {self._base_lsn}"
                )
            start = lsn - self._base_lsn
            if start < 0:
                start = 0
            if limit is None:
                return self._records[start:]
            return self._records[start : start + limit]

    def backlog(self, lsn: int) -> int:
        """How many records a reader at ``lsn`` has not consumed yet."""
        with self._guard:
            return max(0, (self._next_lsn - 1) - (lsn - 1))

    # -- retention -----------------------------------------------------------------

    def add_retention_guard(
        self, guard: Callable[[], Optional[int]]
    ) -> Callable[[], Optional[int]]:
        """Register a callable returning the lowest LSN its owner needs.

        ``trim`` consults every guard and never drops a record at or above
        the minimum returned value. Returns the guard for later removal.
        """
        with self._guard:
            self._retention_guards.append(guard)
        return guard

    def remove_retention_guard(
        self, guard: Callable[[], Optional[int]]
    ) -> None:
        with self._guard:
            self._retention_guards = [
                g for g in self._retention_guards if g is not guard
            ]

    def safe_trim_lsn(self) -> int:
        """Highest LSN (exclusive) a trim may currently reach."""
        with self._guard:
            return self._safe_trim_lsn_locked()

    def _safe_trim_lsn_locked(self) -> int:
        allowed = self._next_lsn
        for guard in self._retention_guards:
            needed = guard()
            if needed is not None:
                allowed = min(allowed, needed)
        return allowed

    def trim(self, up_to_lsn: Optional[int] = None) -> int:
        """Drop records with LSN below ``up_to_lsn`` (bounded by guards).

        ``None`` trims as far as the guards allow. Returns the number of
        records dropped. The guard clamp (never past the replication
        cursor or the oldest live checkpoint watermark) is what makes
        trimming *durably* safe: an accelerator restarting from its
        checkpoint is guaranteed to find the suffix it needs to replay.
        """
        with self._guard:
            allowed = self._safe_trim_lsn_locked()
            target = allowed if up_to_lsn is None else min(up_to_lsn, allowed)
            if target <= self._base_lsn:
                return 0
            dropped = target - self._base_lsn
            del self._records[:dropped]
            self._base_lsn = target
            self.records_trimmed += dropped
            self.trims += 1
            return dropped

"""Transactions and locking for the DB2 engine.

The original IDAA only had to support the *cursor stability* isolation
level on the DB2 side (Sec. 2 of the paper); this module reproduces that
model:

* readers take table-level **S locks for the duration of one statement**
  (released at statement end, so no repeatable read);
* writers take table-level **X locks held until commit/rollback**;
* rollback replays a per-transaction undo log;
* committed changes to replicated tables are published to the change log
  at commit time, never before.

AOT changes do not pass through here — they are buffered in
accelerator-side delta buffers attached to the transaction (see
:mod:`repro.accelerator.deltas`), which is exactly the "IDAA has to be
aware of the DB2 transaction context" extension the paper describes.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import LockTimeoutError, TransactionStateError
from repro.wlm.budget import WorkBudget, current_budget

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.accelerator.deltas import DeltaBuffer
    from repro.db2.changelog import ChangeRecord

__all__ = [
    "LockMode",
    "LockManager",
    "TransactionState",
    "Transaction",
    "TransactionManager",
]


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class _TableLock:
    """One table's lock state: either N sharers or one exclusive owner.

    Re-entrant per transaction; an S holder may upgrade to X when it is
    the only sharer.
    """

    def __init__(self) -> None:
        self.condition = threading.Condition()
        self.sharers: dict[int, int] = {}  # txn id -> acquisition count
        self.exclusive_owner: Optional[int] = None
        self.exclusive_count = 0

    def acquire(
        self,
        txn_id: int,
        mode: LockMode,
        timeout: float,
        budget: Optional[WorkBudget] = None,
    ) -> None:
        deadline = time.monotonic() + timeout
        with self.condition:
            while not self._grantable(txn_id, mode):
                if budget is not None:
                    # A timed-out/cancelled statement must not keep
                    # waiting for a lock it will never use; nothing is
                    # held yet, so raising here releases nothing.
                    budget.check()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise LockTimeoutError(
                        f"transaction {txn_id} timed out waiting for "
                        f"{mode.value} lock"
                    )
                # With a budget attached, wake periodically to notice
                # cancellation even when no lock holder signals us.
                wait_for = remaining if budget is None else min(remaining, 0.05)
                self.condition.wait(wait_for)
            if mode is LockMode.SHARED:
                if self.exclusive_owner == txn_id:
                    # X already held: S is implied, count it against X.
                    self.exclusive_count += 1
                else:
                    self.sharers[txn_id] = self.sharers.get(txn_id, 0) + 1
            else:
                if self.exclusive_owner is None:
                    # Possible upgrade: drop our own S entries first.
                    self.sharers.pop(txn_id, None)
                    self.exclusive_owner = txn_id
                self.exclusive_count += 1

    def _grantable(self, txn_id: int, mode: LockMode) -> bool:
        if mode is LockMode.SHARED:
            return self.exclusive_owner is None or self.exclusive_owner == txn_id
        other_sharers = [t for t in self.sharers if t != txn_id]
        if other_sharers:
            return False
        return self.exclusive_owner is None or self.exclusive_owner == txn_id

    def release(self, txn_id: int, mode: LockMode) -> None:
        with self.condition:
            if mode is LockMode.EXCLUSIVE or self.exclusive_owner == txn_id:
                if self.exclusive_owner != txn_id:
                    return
                self.exclusive_count -= 1
                if self.exclusive_count <= 0:
                    self.exclusive_owner = None
                    self.exclusive_count = 0
            else:
                count = self.sharers.get(txn_id, 0) - 1
                if count <= 0:
                    self.sharers.pop(txn_id, None)
                else:
                    self.sharers[txn_id] = count
            self.condition.notify_all()

    def release_all(self, txn_id: int) -> None:
        with self.condition:
            self.sharers.pop(txn_id, None)
            if self.exclusive_owner == txn_id:
                self.exclusive_owner = None
                self.exclusive_count = 0
            self.condition.notify_all()


class LockManager:
    """Table-granularity lock table with timeout-based deadlock breaking."""

    def __init__(self, timeout: float = 2.0) -> None:
        self.timeout = timeout
        self._locks: dict[str, _TableLock] = {}
        self._guard = threading.Lock()

    def _lock_for(self, table: str) -> _TableLock:
        with self._guard:
            lock = self._locks.get(table)
            if lock is None:
                lock = _TableLock()
                self._locks[table] = lock
            return lock

    def acquire(self, txn: "Transaction", table: str, mode: LockMode) -> None:
        lock = self._lock_for(table)
        lock.acquire(txn.txn_id, mode, self.timeout, budget=current_budget())
        txn.note_lock(table, mode)

    def release_statement_locks(self, txn: "Transaction") -> None:
        """Release S locks at statement end (cursor stability)."""
        for table in txn.take_statement_locks():
            self._lock_for(table).release(txn.txn_id, LockMode.SHARED)

    def release_all(self, txn: "Transaction") -> None:
        for table in txn.take_all_locked_tables():
            self._lock_for(table).release_all(txn.txn_id)


class TransactionState(Enum):
    ACTIVE = "ACTIVE"
    COMMITTED = "COMMITTED"
    ABORTED = "ABORTED"


@dataclass
class Transaction:
    """One unit of work spanning DB2 and (through deltas) the accelerator."""

    txn_id: int
    state: TransactionState = TransactionState.ACTIVE
    undo_log: list[Callable[[], None]] = field(default_factory=list)
    pending_changes: list["ChangeRecord"] = field(default_factory=list)
    #: AOT table name -> uncommitted delta buffer on the accelerator.
    aot_deltas: dict[str, "DeltaBuffer"] = field(default_factory=dict)
    #: Snapshot epoch pinned by the first accelerator read of this txn.
    snapshot_epoch: Optional[int] = None
    _statement_s_locks: set[str] = field(default_factory=set)
    _locked_tables: set[str] = field(default_factory=set)

    def require_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def note_lock(self, table: str, mode: LockMode) -> None:
        self._locked_tables.add(table)
        if mode is LockMode.SHARED:
            self._statement_s_locks.add(table)

    def take_statement_locks(self) -> set[str]:
        taken = self._statement_s_locks
        self._statement_s_locks = set()
        return taken

    def take_all_locked_tables(self) -> set[str]:
        taken = self._locked_tables
        self._locked_tables = set()
        self._statement_s_locks = set()
        return taken

    def add_undo(self, action: Callable[[], None]) -> None:
        self.undo_log.append(action)

    def run_undo(self) -> None:
        while self.undo_log:
            self.undo_log.pop()()


class TransactionManager:
    """Creates transactions and drives commit/rollback."""

    def __init__(self, lock_manager: Optional[LockManager] = None) -> None:
        self.lock_manager = lock_manager or LockManager()
        self._ids = itertools.count(1)
        self.commits = 0
        self.rollbacks = 0

    def begin(self) -> Transaction:
        return Transaction(txn_id=next(self._ids))

    def commit(self, txn: Transaction) -> list["ChangeRecord"]:
        """Commit: release locks, hand back the changes to publish."""
        txn.require_active()
        txn.state = TransactionState.COMMITTED
        txn.undo_log.clear()
        changes = list(txn.pending_changes)
        txn.pending_changes.clear()
        self.lock_manager.release_all(txn)
        self.commits += 1
        return changes

    def rollback(self, txn: Transaction) -> None:
        txn.require_active()
        txn.run_undo()
        txn.pending_changes.clear()
        txn.state = TransactionState.ABORTED
        self.lock_manager.release_all(txn)
        self.rollbacks += 1

    def end_statement(self, txn: Transaction) -> None:
        """Statement boundary: cursor stability drops read locks here."""
        self.lock_manager.release_statement_locks(txn)

"""The simulated DB2 for z/OS engine.

A lock-based, row-at-a-time OLTP engine: slotted-page heaps, table-level
S/X locking with cursor-stability reads, undo-logged rollback, and a
change log that feeds the accelerator's replication service. It is the
system of record for everything except accelerator-only tables.
"""

from repro.db2.engine import Db2Engine
from repro.db2.transaction import (
    LockManager,
    LockMode,
    Transaction,
    TransactionManager,
    TransactionState,
)
from repro.db2.changelog import ChangeLog, ChangeRecord

__all__ = [
    "Db2Engine",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "TransactionState",
    "ChangeLog",
    "ChangeRecord",
]

"""The DB2 engine: system of record, OLTP path, and CDC source.

Responsibilities:

* row-store DDL/DML with table-level S/X locking (cursor stability) and
  undo-logged rollback;
* primary-key hash indexes with uniqueness enforcement and an index fast
  path for point queries — this is why the router keeps OLTP lookups on
  DB2 (experiment E3);
* change capture: committed modifications of *accelerated* tables are
  buffered per transaction and published to the change log at commit.

The engine never talks to the accelerator; the federation layer routes
statements to it only when the data actually lives here.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.catalog import Catalog, TableDescriptor, TableLocation
from repro.catalog.schema import TableSchema
from repro.db2.changelog import ChangeLog
from repro.db2.executor import (
    RowQueryEngine,
    references_only,
    split_conjuncts,
)
from repro.db2.transaction import LockMode, Transaction, TransactionManager
from repro.errors import (
    ReproError,
    SqlError,
    UnknownObjectError,
)
from repro.sql import ast
from repro.sql.expressions import Scope, compile_scalar
from repro.storage.row_store import RowId, RowStoreTable
from repro.wlm.budget import current_budget

__all__ = ["Db2Engine"]


class _TxnTableProvider:
    """TableProvider that takes statement-scoped S locks before scanning."""

    def __init__(
        self,
        engine: "Db2Engine",
        txn: Transaction,
        overrides: Optional[dict[str, list[tuple]]] = None,
    ) -> None:
        self._engine = engine
        self._txn = txn
        self._overrides = overrides or {}

    def table_schema(self, name: str) -> TableSchema:
        return self._engine.storage_for(name).schema

    def scan_rows(self, name: str) -> Iterator[tuple]:
        key = name.upper()
        if key in self._overrides:
            return iter(self._overrides[key])
        self._engine.lock(self._txn, key, LockMode.SHARED)
        storage = self._engine.storage_for(key)
        return (row for _, row in storage.scan())


class Db2Engine:
    """Row-store engine over the shared catalog."""

    def __init__(self, catalog: Catalog, change_log: Optional[ChangeLog] = None):
        self.catalog = catalog
        self.change_log = change_log or ChangeLog()
        self.txn_manager = TransactionManager()
        self._tables: dict[str, RowStoreTable] = {}
        self._pk_indexes: dict[str, dict[tuple, RowId]] = {}
        # Instrumentation for the experiments.
        self.rows_read = 0
        self.rows_written = 0
        self.statements_executed = 0
        self.index_lookups = 0

    # -- storage / DDL -----------------------------------------------------------

    def create_storage(self, descriptor: TableDescriptor) -> None:
        """Allocate row storage for a DB2-resident table."""
        key = descriptor.name
        if key in self._tables:
            raise ReproError(f"storage for {key} already exists")
        self._tables[key] = RowStoreTable(descriptor.schema)
        if descriptor.schema.primary_key_columns:
            self._pk_indexes[key] = {}

    def drop_storage(self, name: str) -> None:
        self._tables.pop(name.upper(), None)
        self._pk_indexes.pop(name.upper(), None)

    def storage_for(self, name: str) -> RowStoreTable:
        key = name.upper()
        storage = self._tables.get(key)
        if storage is None:
            raise UnknownObjectError(f"table {key} has no DB2 storage")
        return storage

    def has_storage(self, name: str) -> bool:
        return name.upper() in self._tables

    def lock(self, txn: Transaction, table: str, mode: LockMode) -> None:
        txn.require_active()
        self.txn_manager.lock_manager.acquire(txn, table.upper(), mode)

    # -- change capture -------------------------------------------------------------

    def _capture(
        self,
        txn: Transaction,
        descriptor: TableDescriptor,
        op: str,
        before: Optional[tuple],
        after: Optional[tuple],
    ) -> None:
        if descriptor.location is not TableLocation.ACCELERATED:
            return
        txn.pending_changes.append(
            self.change_log.make_record(
                txn.txn_id, descriptor.name, op, before=before, after=after
            )
        )

    def commit(self, txn: Transaction) -> None:
        """Commit the DB2 side and publish captured changes."""
        changes = self.txn_manager.commit(txn)
        if changes:
            self.change_log.publish(changes)

    def rollback(self, txn: Transaction) -> None:
        self.txn_manager.rollback(txn)

    # -- low-level DML (used by executor paths and the loader) ------------------------

    def insert_rows(
        self,
        txn: Transaction,
        table: str,
        rows: Sequence[Sequence[object]],
        already_coerced: bool = False,
        capture: bool = True,
    ) -> int:
        """Insert full-width rows under ``txn`` with undo + capture.

        ``capture=False`` skips change capture — used by the loader's
        dual-load path, which writes the accelerator copy itself instead
        of going through replication.
        """
        descriptor = self.catalog.table(table)
        storage = self.storage_for(table)
        self.lock(txn, descriptor.name, LockMode.EXCLUSIVE)
        index = self._pk_indexes.get(descriptor.name)
        pk_positions = (
            [descriptor.schema.position_of(c) for c in
             descriptor.schema.primary_key_columns]
            if index is not None
            else []
        )
        inserted = 0
        for raw in rows:
            row = tuple(raw) if already_coerced else descriptor.schema.coerce_row(raw)
            if index is not None:
                key = tuple(row[p] for p in pk_positions)
                if key in index:
                    raise SqlError(
                        f"duplicate primary key {key} in {descriptor.name}"
                    )
            row_id = storage.insert(row)
            if index is not None:
                index[key] = row_id
                txn.add_undo(_undo_index_put(index, key))
            txn.add_undo(_undo_insert(storage, row_id))
            if capture:
                self._capture(txn, descriptor, "INSERT", None, row)
            inserted += 1
        self.rows_written += inserted
        self.statements_executed += 1
        return inserted

    def _pk_equality_key(
        self,
        descriptor: TableDescriptor,
        binding: str,
        where: Optional[ast.Expression],
        params: Sequence[object],
    ) -> Optional[tuple]:
        """The full PK key bound by equality conjuncts of ``where``, if any."""
        if where is None:
            return None
        index = self._pk_indexes.get(descriptor.name)
        if index is None:
            return None
        schema = descriptor.schema
        pk_columns = schema.primary_key_columns
        scope = Scope([(binding, c.name) for c in schema.columns])
        empty = Scope([])
        equalities: dict[str, object] = {}
        for conjunct in split_conjuncts(where):
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            for column_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if (
                    isinstance(column_side, ast.ColumnRef)
                    and references_only(value_side, empty)
                ):
                    try:
                        position = scope.resolve(
                            column_side.name, column_side.table
                        )
                    except Exception:
                        continue
                    name = schema.columns[position].name
                    value_fn = compile_scalar(value_side, empty, params)
                    equalities[name] = value_fn(())
                    break
        if not all(column in equalities for column in pk_columns):
            return None
        return tuple(
            schema.column(c).coerce(equalities[c]) for c in pk_columns
        )

    def _dml_targets(
        self,
        descriptor: TableDescriptor,
        storage: RowStoreTable,
        where: Optional[ast.Expression],
        predicate,
        params: Sequence[object],
    ) -> list[tuple[RowId, tuple]]:
        """Rows a DML statement touches: PK index fast path or full scan."""
        key = self._pk_equality_key(descriptor, descriptor.name, where, params)
        if key is not None:
            self.index_lookups += 1
            row_id = self._pk_indexes[descriptor.name].get(key)
            if row_id is None:
                return []
            row = storage.fetch(row_id)
            self.rows_read += 1
            if predicate is None or predicate(row) is True:
                return [(row_id, row)]
            return []
        self.rows_read += storage.row_count
        budget = current_budget()
        targets: list[tuple[RowId, tuple]] = []
        pending = 0
        for row_id, row in storage.scan():
            # Same cooperative-cancellation cadence as the row executor's
            # scans: a statement deadline stops the DML during target
            # selection, before any row has been modified.
            if budget is not None:
                pending += 1
                if pending >= 1024:
                    pending = 0
                    budget.check()
            if predicate is None or predicate(row) is True:
                targets.append((row_id, row))
        return targets

    def update_where(
        self,
        txn: Transaction,
        stmt: ast.UpdateStatement,
        params: Sequence[object] = (),
    ) -> int:
        descriptor = self.catalog.table(stmt.table)
        storage = self.storage_for(stmt.table)
        self.lock(txn, descriptor.name, LockMode.EXCLUSIVE)
        schema = descriptor.schema
        scope = Scope([(descriptor.name, c.name) for c in schema.columns])
        resolver = self._make_subquery_resolver(txn, params, scope)
        predicate = (
            compile_scalar(stmt.where, scope, params, resolver)
            if stmt.where is not None
            else None
        )
        assignment_fns = [
            (schema.position_of(column), compile_scalar(expr, scope, params, resolver))
            for column, expr in stmt.assignments
        ]
        index = self._pk_indexes.get(descriptor.name)
        pk_positions = (
            [schema.position_of(c) for c in schema.primary_key_columns]
            if index is not None
            else []
        )
        # Materialise targets first: no Halloween problem with in-place
        # updates here (no index-order scans), but keep it tidy anyway.
        targets = self._dml_targets(
            descriptor, storage, stmt.where, predicate, params
        )
        for row_id, row in targets:
            new_row = list(row)
            for position, fn in assignment_fns:
                new_row[position] = schema.columns[position].coerce(fn(row))
            new_tuple = tuple(new_row)
            if index is not None:
                old_key = tuple(row[p] for p in pk_positions)
                new_key = tuple(new_tuple[p] for p in pk_positions)
                if new_key != old_key:
                    if new_key in index:
                        raise SqlError(
                            f"duplicate primary key {new_key} in {descriptor.name}"
                        )
                    del index[old_key]
                    index[new_key] = row_id
                    txn.add_undo(_undo_index_move(index, old_key, new_key, row_id))
            before = storage.update(row_id, new_tuple)
            txn.add_undo(_undo_update(storage, row_id, before))
            self._capture(txn, descriptor, "UPDATE", before, new_tuple)
        self.rows_written += len(targets)
        self.statements_executed += 1
        return len(targets)

    def delete_where(
        self,
        txn: Transaction,
        stmt: ast.DeleteStatement,
        params: Sequence[object] = (),
    ) -> int:
        descriptor = self.catalog.table(stmt.table)
        storage = self.storage_for(stmt.table)
        self.lock(txn, descriptor.name, LockMode.EXCLUSIVE)
        schema = descriptor.schema
        scope = Scope([(descriptor.name, c.name) for c in schema.columns])
        resolver = self._make_subquery_resolver(txn, params, scope)
        predicate = (
            compile_scalar(stmt.where, scope, params, resolver)
            if stmt.where is not None
            else None
        )
        index = self._pk_indexes.get(descriptor.name)
        pk_positions = (
            [schema.position_of(c) for c in schema.primary_key_columns]
            if index is not None
            else []
        )
        targets = self._dml_targets(
            descriptor, storage, stmt.where, predicate, params
        )
        for row_id, row in targets:
            storage.delete(row_id)
            txn.add_undo(_undo_delete(storage, row_id, row))
            if index is not None:
                key = tuple(row[p] for p in pk_positions)
                del index[key]
                txn.add_undo(_undo_index_restore(index, key, row_id))
            self._capture(txn, descriptor, "DELETE", row, None)
        self.rows_written += len(targets)
        self.statements_executed += 1
        return len(targets)

    # -- queries ----------------------------------------------------------------------

    def execute_select(
        self,
        txn: Transaction,
        stmt,
        params: Sequence[object] = (),
        plan=None,
        tracer=None,
        profile=None,
        estimates=None,
    ) -> tuple[list[str], list[tuple]]:
        """Run a SELECT (or set operation) against DB2-resident tables.

        ``plan`` is an optional pre-bound :mod:`repro.sql.logical` plan
        for ``stmt`` (from the statement plan cache); the index fast path
        still inspects the AST, so both are passed. ``profile`` is an
        optional :class:`repro.obs.profile.StatementProfile` the plan
        walker fills with per-operator runtime stats. ``estimates`` maps
        id(plan node) -> estimated rows and steers join strategies.
        """
        txn.require_active()
        overrides = self._point_lookup_overrides(stmt, txn, params)
        provider = _TxnTableProvider(self, txn, overrides)
        engine = RowQueryEngine(
            provider, params, tracer=tracer, profile=profile, estimates=estimates
        )
        columns, rows = engine.execute(plan if plan is not None else stmt)
        self.rows_read += engine.rows_examined
        self.statements_executed += 1
        return columns, rows

    def _make_subquery_resolver(self, txn: Transaction, params, scope: Scope):
        from repro.sql.correlation import SubqueryExecutor

        return SubqueryExecutor(
            scope,
            lambda table: self.storage_for(table).schema.column_names,
            lambda query: self.execute_select(txn, query, params)[1],
        )

    def _point_lookup_overrides(
        self,
        stmt,
        txn: Transaction,
        params: Sequence[object],
    ) -> Optional[dict[str, list[tuple]]]:
        """Index fast path: WHERE covers a table's full primary key with
        equality against constants → serve that table from the PK index."""
        if not isinstance(stmt, ast.SelectStatement):
            return None
        if not isinstance(stmt.from_item, ast.TableRef) or stmt.where is None:
            return None
        table = stmt.from_item.name.upper()
        index = self._pk_indexes.get(table)
        if index is None:
            return None
        descriptor = self.catalog.table(table)
        key = self._pk_equality_key(
            descriptor, stmt.from_item.binding, stmt.where, params
        )
        if key is None:
            return None
        self.lock(txn, table, LockMode.SHARED)
        self.index_lookups += 1
        row_id = index.get(key)
        storage = self.storage_for(table)
        rows = [storage.fetch(row_id)] if row_id is not None else []
        return {table: rows}

    # -- convenience (tests) -------------------------------------------------------------

    def table_rows(self, name: str) -> list[tuple]:
        """All rows of a table without a transaction (test helper)."""
        return [row for _, row in self.storage_for(name).scan()]


# -- undo closures (module-level so they don't capture loop variables) ------


def _undo_insert(storage: RowStoreTable, row_id: RowId):
    return lambda: storage.delete(row_id)


def _undo_update(storage: RowStoreTable, row_id: RowId, before: tuple):
    return lambda: storage.update(row_id, before)


def _undo_delete(storage: RowStoreTable, row_id: RowId, row: tuple):
    return lambda: storage.undelete(row_id, row)


def _undo_index_put(index: dict, key: tuple):
    return lambda: index.pop(key, None)


def _undo_index_move(index: dict, old_key: tuple, new_key: tuple, row_id: RowId):
    def undo():
        index.pop(new_key, None)
        index[old_key] = row_id

    return undo


def _undo_index_restore(index: dict, key: tuple, row_id: RowId):
    def undo():
        index[key] = row_id

    return undo

"""Batch loader with per-placement semantics and movement accounting."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog import Privilege, TableLocation
from repro.errors import LoaderError
from repro.federation.system import AcceleratedDatabase, Connection
from repro.loader.sources import RowSource
from repro.metrics.counters import MovementStats

__all__ = ["IdaaLoader", "LoadReport"]


@dataclass
class LoadReport:
    """What one load did, for the ingestion experiments (E4)."""

    table: str
    location: str
    rows: int = 0
    batches: int = 0
    elapsed_seconds: float = 0.0
    movement: MovementStats = field(default_factory=MovementStats)
    db2_rows_written: int = 0

    @property
    def rows_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.rows / self.elapsed_seconds


class IdaaLoader:
    """Loads a :class:`RowSource` into a table of the federation.

    The target's placement decides the path:

    * ``DB2_ONLY``: rows go through the DB2 engine only;
    * ``ACCELERATED``: *dual load* — DB2 storage and the accelerator copy
      are written in the same batch, bypassing replication (change
      capture is disabled for the load, like the real loader's
      bulk path);
    * ``ACCELERATOR_ONLY``: rows go straight to the accelerator; DB2 only
      holds the nickname and executes nothing per row.
    """

    def __init__(self, system: AcceleratedDatabase, batch_size: int = 5000):
        self._system = system
        self.batch_size = batch_size

    def load(
        self,
        source: RowSource,
        table: str,
        connection: Connection,
        create: bool = False,
        in_accelerator: bool = False,
    ) -> LoadReport:
        """Load all rows of ``source`` into ``table``.

        With ``create=True`` the table is created first, with a schema
        inferred from the source (``in_accelerator`` picks AOT placement).
        """
        system = self._system
        if create:
            if system.catalog.has_table(table):
                raise LoaderError(f"table {table.upper()} already exists")
            schema = source.infer_schema()
            descriptor = system.catalog.create_table(
                table,
                schema,
                location=(
                    TableLocation.ACCELERATOR_ONLY
                    if in_accelerator
                    else TableLocation.DB2_ONLY
                ),
                owner=connection.user.name,
            )
            if in_accelerator:
                system.accelerator.create_storage(descriptor)
            else:
                system.db2.create_storage(descriptor)
        descriptor = system.catalog.table(table)

        # Governance: LOAD privilege (owner and SYSADM implicit).
        if not (
            connection.user.is_admin
            or descriptor.owner == connection.user.name
        ):
            system.catalog.privileges.check(
                connection.user.name, Privilege.LOAD, "TABLE", descriptor.name
            )

        schema = descriptor.schema
        expected = [c.upper() for c in source.column_names()]
        if expected != schema.column_names:
            raise LoaderError(
                f"source columns {expected} do not match table columns "
                f"{schema.column_names}"
            )

        report = LoadReport(
            table=descriptor.name, location=descriptor.location.value
        )
        movement_start = system.interconnect.snapshot()
        db2_written_start = system.db2.rows_written
        started = time.perf_counter()

        batch: list[tuple] = []
        for raw in source.rows():
            batch.append(schema.coerce_row(raw))
            if len(batch) >= self.batch_size:
                self._load_batch(descriptor, batch, connection)
                report.rows += len(batch)
                report.batches += 1
                batch = []
        if batch:
            self._load_batch(descriptor, batch, connection)
            report.rows += len(batch)
            report.batches += 1

        report.elapsed_seconds = time.perf_counter() - started
        report.movement = system.interconnect.since(movement_start)
        report.db2_rows_written = system.db2.rows_written - db2_written_start
        return report

    def _load_batch(
        self,
        descriptor,
        rows: list[tuple],
        connection: Connection,
    ) -> None:
        system = self._system
        nbytes = sum(descriptor.schema.row_byte_size(row) for row in rows)
        if descriptor.location is TableLocation.ACCELERATOR_ONLY:
            # Straight to the accelerator; DB2 is bypassed entirely.
            system.interconnect.send_to_accelerator(nbytes)
            system.accelerator.insert_into(
                descriptor.name, rows, already_coerced=True
            )
            return
        # DB2-resident: write the row store under a short transaction.
        txn = system.db2.txn_manager.begin()
        try:
            system.db2.insert_rows(
                txn,
                descriptor.name,
                rows,
                already_coerced=True,
                capture=descriptor.location is not TableLocation.ACCELERATED,
            )
            system.db2.commit(txn)
        except Exception:
            system.db2.rollback(txn)
            raise
        if descriptor.location is TableLocation.ACCELERATED:
            # Dual load: ship the same batch to the copy directly.
            system.interconnect.send_to_accelerator(nbytes)
            system.accelerator.bulk_insert(descriptor.name, rows)

"""The IDAA Loader analogue: direct external ingestion.

Section 2 of the paper: data can originate from a variety of sources —
even applications not running on System z — and can be ingested into
regular DB2 tables *or directly into accelerator-only tables*, bypassing
DB2 entirely. This package provides the sources (CSV, JSON-lines,
in-memory iterables) and the batch loader with per-target semantics:

* ``DB2_ONLY`` table — rows land in the row store only;
* ``ACCELERATED`` table — *dual load*: rows land in DB2 and are bulk-
  appended to the accelerator copy directly (not through replication);
* ``ACCELERATOR_ONLY`` table — rows go straight to the accelerator; DB2
  executes nothing.
"""

from repro.loader.sources import CsvSource, IterableSource, JsonLinesSource
from repro.loader.loader import IdaaLoader, LoadReport

__all__ = [
    "CsvSource",
    "JsonLinesSource",
    "IterableSource",
    "IdaaLoader",
    "LoadReport",
]

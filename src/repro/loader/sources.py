"""Row sources for the loader: CSV, JSON-lines, and in-memory data."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.catalog.schema import Column, TableSchema
from repro.errors import LoaderError
from repro.sql.types import infer_type

__all__ = ["RowSource", "CsvSource", "JsonLinesSource", "IterableSource"]


class RowSource:
    """Base class: named columns plus an iterator of raw row tuples."""

    def column_names(self) -> list[str]:
        raise NotImplementedError

    def rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def infer_schema(self, sample_size: int = 100) -> TableSchema:
        """Infer a schema from a sample of rows (used with create=True)."""
        names = self.column_names()
        samples: list[tuple] = []
        for row in self.rows():
            samples.append(row)
            if len(samples) >= sample_size:
                break
        if not samples:
            raise LoaderError("cannot infer a schema from an empty source")
        columns: list[Column] = []
        for position, name in enumerate(names):
            sample = next(
                (row[position] for row in samples if row[position] is not None),
                None,
            )
            if sample is None:
                raise LoaderError(
                    f"column {name} is entirely NULL in the sample; "
                    "provide an explicit schema"
                )
            sql_type = infer_type(_convert_text(sample))
            columns.append(Column(name.upper(), sql_type))
        return TableSchema(columns)


def _convert_text(value):
    """Best-effort typed conversion of a CSV cell."""
    if not isinstance(value, str):
        return value
    text = value.strip()
    if text == "":
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class CsvSource(RowSource):
    """CSV file source with optional header and type conversion.

    Empty cells become NULL; numeric-looking cells become int/float.
    """

    def __init__(
        self,
        path: Union[str, Path],
        has_header: bool = True,
        delimiter: str = ",",
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        self.path = Path(path)
        self.has_header = has_header
        self.delimiter = delimiter
        self._columns = [c.upper() for c in columns] if columns else None
        if not self.has_header and self._columns is None:
            raise LoaderError("headerless CSV needs an explicit column list")

    def column_names(self) -> list[str]:
        if self._columns is not None:
            return list(self._columns)
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            header = next(reader, None)
        if header is None:
            raise LoaderError(f"{self.path} is empty")
        self._columns = [name.strip().upper() for name in header]
        return list(self._columns)

    def rows(self) -> Iterator[tuple]:
        width = len(self.column_names())
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            if self.has_header:
                next(reader, None)
            for line_number, record in enumerate(reader, start=2):
                if not record:
                    continue
                if len(record) != width:
                    raise LoaderError(
                        f"{self.path}:{line_number}: expected {width} "
                        f"fields, got {len(record)}"
                    )
                yield tuple(_convert_text(cell) for cell in record)


class JsonLinesSource(RowSource):
    """One JSON object per line (the social-media ingestion shape)."""

    def __init__(
        self,
        path: Union[str, Path],
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        self.path = Path(path)
        self._columns = [c.upper() for c in columns] if columns else None

    def column_names(self) -> list[str]:
        if self._columns is not None:
            return list(self._columns)
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    record = json.loads(line)
                    self._columns = [key.upper() for key in record]
                    return list(self._columns)
        raise LoaderError(f"{self.path} contains no records")

    def rows(self) -> Iterator[tuple]:
        names = self.column_names()
        lowered = [name.lower() for name in names]
        with open(self.path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise LoaderError(
                        f"{self.path}:{line_number}: invalid JSON ({error})"
                    ) from None
                yield tuple(
                    record.get(name, record.get(lower))
                    for name, lower in zip(names, lowered)
                )


class IterableSource(RowSource):
    """Rows from any Python iterable (generators stream once)."""

    def __init__(
        self, rows: Iterable[tuple], columns: Sequence[str]
    ) -> None:
        self._rows = rows
        self._columns = [c.upper() for c in columns]
        self._consumed = False

    def column_names(self) -> list[str]:
        return list(self._columns)

    def rows(self) -> Iterator[tuple]:
        if self._consumed and not isinstance(self._rows, (list, tuple)):
            raise LoaderError("generator source was already consumed")
        self._consumed = True
        return iter(self._rows)

"""The accelerator engine: storage, snapshots, deltas, and DML.

Holds the columnar tables (both snapshot *copies* of accelerated DB2
tables and the paper's accelerator-only tables), advances the global MVCC
epoch on every applied write batch, and executes queries through the
vectorised executor at a chosen snapshot epoch, optionally merged with a
transaction's uncommitted AOT delta buffers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.accelerator.deltas import DeltaBuffer
from repro.accelerator.executor import ScanPartitions, VectorQueryEngine
from repro.accelerator.vtable import columns_from_rows
from repro.catalog import Catalog, TableDescriptor
from repro.catalog.schema import TableSchema
from repro.db2.changelog import ChangeRecord
from repro.errors import ReplicationError, ReproError, UnknownObjectError
from repro.obs.trace import NULL_SPAN
from repro.sql import ast
from repro.sql.expressions import Scope, VColumn, compile_vector
from repro.sql.planning import extract_column_ranges
from repro.storage.column_store import ColumnStoreTable
from repro.wlm.budget import current_budget

__all__ = ["AcceleratorEngine", "GroomStats"]

#: Simulated per-slice scan speed (rows/second) for the busy-time model.
SCAN_ROWS_PER_SECOND = 5_000_000.0


@dataclass(frozen=True)
class GroomStats:
    """Outcome of one GROOM pass over a table."""

    rows_reclaimed: int
    chunks_before: int
    chunks_after: int


class _SnapshotProvider:
    """Vector-executor table provider bound to one snapshot + deltas."""

    def __init__(
        self,
        engine: "AcceleratorEngine",
        epoch: int,
        deltas: Optional[dict[str, DeltaBuffer]] = None,
    ) -> None:
        self._engine = engine
        self._epoch = epoch
        self._deltas = deltas or {}

    def table_schema(self, name: str) -> TableSchema:
        return self._engine.storage_for(name).schema

    def scan_columns(
        self,
        name: str,
        ranges: Optional[dict[str, tuple]] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> tuple[dict[str, VColumn], int]:
        key = name.upper()
        delta = self._deltas.get(key)
        # Zone-map pruning must be disabled when a delta deletes base rows?
        # No: deletions are re-applied below; pruning only skips *reads*.
        __, cols, length = self._engine.scan_snapshot(
            key, self._epoch, ranges=ranges, delta=delta, columns=columns
        )
        return cols, length

    def chunks_skipped_total(self) -> int:
        """Engine-wide zone-map pruning counter; the profiler reads the
        delta around each scan to attribute skipped chunks per operator."""
        return self._engine.chunks_skipped

    def scan_partitions(
        self,
        name: str,
        ranges: Optional[dict[str, tuple]] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Optional[ScanPartitions]:
        key = name.upper()
        return self._engine.partition_scan(
            key,
            self._epoch,
            ranges=ranges,
            delta=self._deltas.get(key),
            columns=columns,
        )


class AcceleratorEngine:
    """Columnar engine with epoch snapshots and AOT delta awareness."""

    def __init__(
        self,
        catalog: Catalog,
        slice_count: int = 4,
        chunk_rows: int = 65536,
        fault_injector=None,
        tracer=None,
        metrics=None,
        parallel_workers: int = 4,
    ) -> None:
        self.catalog = catalog
        self.slice_count = slice_count
        self.chunk_rows = chunk_rows
        #: Optional :class:`repro.federation.faults.FaultInjector`; every
        #: query/apply entry point consults it before touching storage, so
        #: an injected crash never leaves a half-written batch behind.
        self.fault_injector = fault_injector
        #: Optional :class:`repro.obs.trace.Tracer`; SELECTs become
        #: ``accelerator.execute`` spans under the statement trace.
        self.tracer = tracer
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` for the
        #: partitioned-scan counters/histograms.
        self.metrics = metrics
        #: Scan fan-out; 0/1 disables chunk-parallel scans entirely.
        self.parallel_workers = parallel_workers
        #: Tables smaller than this stay sequential — thread handoff
        #: costs more than it saves on small scans.
        self.parallel_min_rows = 16384
        self._tables: dict[str, ColumnStoreTable] = {}
        #: Replication-apply cache: table -> {row tuple: [row ids]}.
        #: Maintained incrementally by apply_changes; any other write path
        #: invalidates it.
        self._lookup_cache: dict[str, dict[tuple, list[int]]] = {}
        #: Serialises write batches (epoch assignment + chunk appends).
        #: Readers are lock-free: they scan immutable chunks at a snapshot
        #: epoch (MVCC), so only writers contend here.
        self._write_lock = threading.Lock()
        self.current_epoch = 0
        #: Per-table high-water mark of applied change-record LSNs.
        #: ``apply_changes`` skips records at or below it, which makes
        #: replication apply idempotent under redelivery — a retried
        #: batch, or a changelog replay from a recovery checkpoint.
        self._applied_lsn: dict[str, int] = {}
        #: Per-table lineage epoch, bumped on every content-changing
        #: write. The recovery manager mirrors it (via ``write_listener``)
        #: into a DB2-side journal so a restart can tell which AOTs the
        #: crash made stale or lost entirely.
        self._lineage: dict[str, int] = {}
        #: Called as ``listener(table_key, lineage_epoch)`` after each
        #: content-changing write, while the write lock is held.
        self.write_listener: Optional[Callable[[str, int], None]] = None
        # Instrumentation.
        self.queries_executed = 0
        self.records_deduplicated = 0
        self.rows_scanned = 0
        self.chunks_skipped = 0
        self.simulated_busy_seconds = 0.0
        self.parallel_scans = 0
        #: Partitioned-scan telemetry of the most recent statement.
        self.last_parallel_scans: list[dict] = []
        self.zone_maps_enabled = True

    # -- storage / DDL ----------------------------------------------------------

    def create_storage(self, descriptor: TableDescriptor) -> None:
        key = descriptor.name
        if key in self._tables:
            raise ReproError(f"accelerator storage for {key} already exists")
        self._tables[key] = ColumnStoreTable(
            descriptor.schema,
            slice_count=self.slice_count,
            distribute_on=descriptor.distribute_on,
            chunk_rows=self.chunk_rows,
        )

    def drop_storage(self, name: str) -> None:
        self._tables.pop(name.upper(), None)
        self._lookup_cache.pop(name.upper(), None)

    def storage_for(self, name: str) -> ColumnStoreTable:
        key = name.upper()
        table = self._tables.get(key)
        if table is None:
            raise UnknownObjectError(f"table {key} has no accelerator storage")
        return table

    def has_storage(self, name: str) -> bool:
        return name.upper() in self._tables

    def _check_fault(self) -> None:
        if self.fault_injector is not None:
            self.fault_injector.check("accelerator")

    def _staged_epoch(self) -> int:
        """The epoch a write batch stamps its changes with.

        Writers (serialised by ``_write_lock``) stamp rows with
        ``current_epoch + 1`` and only *publish* that epoch — a single
        atomic assignment — after the whole batch is in place, so
        lock-free readers never observe a torn batch.
        """
        return self.current_epoch + 1

    def _publish_epoch(self, epoch: int) -> None:
        self.current_epoch = epoch

    def _note_write_locked(self, key: str) -> None:
        """Bump ``key``'s lineage epoch and notify the write listener.

        Called with the write lock held, after the batch's epoch is
        published — the listener (the recovery manager's DB2-side lineage
        journal) therefore only ever sees durably-visible writes.
        """
        epoch = self._lineage.get(key, 0) + 1
        self._lineage[key] = epoch
        listener = self.write_listener
        if listener is not None:
            listener(key, epoch)

    # -- write paths -----------------------------------------------------------------

    def bulk_insert(self, name: str, rows: Sequence[tuple]) -> int:
        """Append coerced rows as one batch at a fresh epoch."""
        self._check_fault()
        table = self.storage_for(name)
        with self._write_lock:
            self._lookup_cache.pop(name.upper(), None)
            epoch = self._staged_epoch()
            table.append_rows(list(rows), epoch)
            self._publish_epoch(epoch)
            self._note_write_locked(name.upper())
        return len(rows)

    def apply_changes(self, name: str, records: Sequence[ChangeRecord]) -> int:
        """Apply one replication batch (insert/update/delete) atomically.

        Rows are located by before-image equality, which is how a
        replication target without shared rowids has to do it.

        Idempotence: stamped records (LSN > 0) at or below the table's
        applied-LSN watermark are skipped — a redelivered batch (retry
        after a crash, checkpoint replay over-read) is a no-op rather
        than a double apply. An empty or fully-duplicate batch returns 0
        without bumping the snapshot epoch. Stamped records must arrive
        in strictly ascending LSN order within a batch; anything else is
        an out-of-order delivery and is rejected. Unstamped records
        (LSN <= 0, direct engine use) bypass the watermark entirely.
        """
        self._check_fault()
        key = name.upper()
        table = self.storage_for(key)
        with self._write_lock:
            watermark = self._applied_lsn.get(key, 0)
            fresh = []
            last_lsn = None
            for record in records:
                if record.lsn > 0:
                    if last_lsn is not None and record.lsn <= last_lsn:
                        raise ReplicationError(
                            f"out-of-order change records for {key}: "
                            f"LSN {record.lsn} after LSN {last_lsn}"
                        )
                    last_lsn = record.lsn
                    if record.lsn <= watermark:
                        self.records_deduplicated += 1
                        continue
                fresh.append(record)
            if not fresh:
                return 0
            try:
                applied = self._apply_changes_locked(key, table, fresh)
            except Exception:
                # The lookup cache is mutated in place while the batch is
                # processed; a failed batch leaves it inconsistent, so the
                # next drain must rebuild it from storage.
                self._lookup_cache.pop(key, None)
                raise
            if last_lsn is not None:
                self._applied_lsn[key] = max(watermark, last_lsn)
            self._note_write_locked(key)
            return applied

    def _apply_changes_locked(
        self, key: str, table: ColumnStoreTable, records
    ) -> int:
        epoch = self._staged_epoch()
        # Rows inserted earlier in this same batch get placeholder ids
        # (-1, -2, ...) so later records in the batch can update/delete
        # them before they ever reach the column store.
        pending_inserts: dict[int, tuple] = {}
        next_placeholder = -1
        deletes: list[int] = []
        lookup: Optional[dict[tuple, list[int]]] = self._lookup_cache.get(key)

        def track_insert(row: tuple) -> None:
            nonlocal next_placeholder
            placeholder = next_placeholder
            next_placeholder -= 1
            pending_inserts[placeholder] = tuple(row)
            if lookup is not None:
                lookup.setdefault(tuple(row), []).append(placeholder)

        for record in records:
            if record.op == "INSERT":
                track_insert(record.after)
                continue
            if lookup is None:
                lookup = self._build_row_lookup(table, epoch - 1)
                for placeholder, row in pending_inserts.items():
                    lookup.setdefault(row, []).append(placeholder)
            before = tuple(record.before)
            candidates = lookup.get(before)
            if not candidates:
                raise ReplicationError(
                    f"cannot locate row {before!r} in copy of {key}"
                )
            row_id = candidates.pop()
            if row_id < 0:
                del pending_inserts[row_id]
            else:
                deletes.append(row_id)
            if record.op == "UPDATE":
                track_insert(record.after)
            elif record.op != "DELETE":
                raise ReplicationError(f"unknown change op {record.op}")
        if deletes:
            table.mark_deleted(deletes, epoch)
        if pending_inserts:
            new_ids = table.append_rows(list(pending_inserts.values()), epoch)
            if lookup is not None:
                # Swap batch placeholders for the real row ids so the
                # cache stays valid for the next drain.
                for (placeholder, row), real_id in zip(
                    pending_inserts.items(), new_ids
                ):
                    ids = lookup.get(row, [])
                    for position, candidate in enumerate(ids):
                        if candidate == placeholder:
                            ids[position] = int(real_id)
                            break
        if lookup is not None:
            self._lookup_cache[key] = lookup
        self._publish_epoch(epoch)
        return len(records)

    def _build_row_lookup(
        self, table: ColumnStoreTable, epoch: int
    ) -> dict[tuple, list[int]]:
        row_ids, columns = table.read_visible(epoch)
        ordered = [columns[c.name] for c in table.schema.columns]
        object_columns = [col.to_objects() for col in ordered]
        lookup: dict[tuple, list[int]] = {}
        for index, row_id in enumerate(row_ids):
            row = tuple(values[index] for values in object_columns)
            lookup.setdefault(row, []).append(int(row_id))
        return lookup

    def apply_delta(self, delta: DeltaBuffer) -> int:
        """Commit a transaction's AOT delta at a fresh epoch."""
        table = self.storage_for(delta.table)
        with self._write_lock:
            self._lookup_cache.pop(delta.table.upper(), None)
            epoch = self._staged_epoch()
            changed = 0
            if delta.deleted_base_ids:
                changed += table.mark_deleted(
                    sorted(delta.deleted_base_ids), epoch
                )
            live = delta.live_inserts()
            if live:
                table.append_rows(live, epoch)
                changed += len(live)
            self._publish_epoch(epoch)
            if changed:
                self._note_write_locked(delta.table.upper())
        return changed

    def groom(self, name: str) -> GroomStats:
        """Rewrite a table's storage keeping only currently-live rows.

        This is Netezza's GROOM: deleted row versions are physically
        reclaimed and small trickle-insert chunks are merged. Row ids are
        preserved, but version history collapses — snapshots older than
        the groom see the groomed (live-only) state, so it must not run
        while transactions hold older snapshot epochs.
        """
        key = name.upper()
        table = self.storage_for(key)
        with self._write_lock:
            return self._groom_locked(key, table)

    def _groom_locked(self, key: str, table: ColumnStoreTable) -> "GroomStats":
        self._lookup_cache.pop(key, None)
        chunks_before = table.total_chunk_count
        row_ids, columns = table.read_visible(self.current_epoch)
        ordered = [columns[c.name] for c in table.schema.columns]
        object_columns = [col.to_objects() for col in ordered]
        rows = [
            tuple(values[i] for values in object_columns)
            for i in range(len(row_ids))
        ]
        reclaimed = sum(
            len(chunk) for _, chunk in table.iter_chunks()
        ) - len(rows)
        fresh = ColumnStoreTable(
            table.schema,
            slice_count=table.slice_count,
            distribute_on=table.distribute_on,
            chunk_rows=table.chunk_rows,
        )
        fresh._next_row_id = table._next_row_id
        # Epoch 0 keeps the live rows visible to every snapshot.
        fresh.append_rows(rows, epoch=0, row_ids=row_ids)
        self._tables[key] = fresh
        return GroomStats(
            rows_reclaimed=reclaimed,
            chunks_before=chunks_before,
            chunks_after=fresh.total_chunk_count,
        )

    # -- recovery support ---------------------------------------------------------------

    def applied_lsn(self, name: str) -> int:
        """Highest change-record LSN applied to ``name`` (0 = none)."""
        return self._applied_lsn.get(name.upper(), 0)

    def applied_lsns(self) -> dict[str, int]:
        return dict(self._applied_lsn)

    def lineage_epoch(self, name: str) -> int:
        """Current lineage epoch of ``name`` (0 = never written)."""
        return self._lineage.get(name.upper(), 0)

    def lineage_epochs(self) -> dict[str, int]:
        return dict(self._lineage)

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def _live_rows_locked(self, table: ColumnStoreTable) -> list[tuple]:
        row_ids, columns = table.read_visible(self.current_epoch)
        ordered = [columns[c.name] for c in table.schema.columns]
        object_columns = [col.to_objects() for col in ordered]
        return [
            tuple(values[i] for values in object_columns)
            for i in range(len(row_ids))
        ]

    def capture_state(self) -> dict:
        """Consistent image of every table + watermarks, one lock hold.

        Used by checkpointing. Because the write lock blocks every write
        path, the row images, applied-LSN watermarks, and lineage epochs
        are mutually consistent — no batch can land between a table's
        rows and its watermark being captured.
        """
        with self._write_lock:
            tables = {
                key: self._live_rows_locked(table)
                for key, table in sorted(self._tables.items())
            }
            return {
                "tables": tables,
                "applied_lsn": dict(self._applied_lsn),
                "lineage": dict(self._lineage),
            }

    def snapshot_rows(self, name: str) -> list[tuple]:
        """Live rows of one table at the current epoch (write-blocked)."""
        table = self.storage_for(name)
        with self._write_lock:
            return self._live_rows_locked(table)

    def wipe(self) -> None:
        """Simulate a crash: every piece of volatile state is lost.

        Tables, lookup caches, LSN watermarks, lineage epochs, and the
        snapshot epoch all go — exactly what an appliance restart loses.
        Recovery rebuilds them from the last checkpoint plus the
        changelog suffix.
        """
        with self._write_lock:
            self._tables.clear()
            self._lookup_cache.clear()
            self._applied_lsn.clear()
            self._lineage.clear()
            self.current_epoch = 0
            self.last_parallel_scans = []

    def restore_table(
        self,
        descriptor: TableDescriptor,
        rows: Sequence[tuple],
        applied_lsn: int = 0,
        lineage_epoch: int = 0,
    ) -> int:
        """Load a checkpointed table image during restart recovery.

        Rows land at epoch 0 — visible to every snapshot — and the write
        listener is deliberately *not* fired: a restore is not new work,
        so lineage epochs come from the checkpoint, not from the load.
        """
        key = descriptor.name
        with self._write_lock:
            self._lookup_cache.pop(key, None)
            table = ColumnStoreTable(
                descriptor.schema,
                slice_count=self.slice_count,
                distribute_on=descriptor.distribute_on,
                chunk_rows=self.chunk_rows,
            )
            if rows:
                table.append_rows([tuple(r) for r in rows], epoch=0)
            self._tables[key] = table
            if applied_lsn:
                self._applied_lsn[key] = applied_lsn
            if lineage_epoch:
                self._lineage[key] = lineage_epoch
        return len(rows)

    # -- snapshot reads -----------------------------------------------------------------

    def scan_snapshot(
        self,
        name: str,
        epoch: int,
        ranges: Optional[dict[str, tuple]] = None,
        delta: Optional[DeltaBuffer] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> tuple[np.ndarray, dict[str, VColumn], int]:
        """Visible columns at ``epoch`` merged with an optional own-delta.

        Returned row ids are base ids for base rows and ``-(index+1)`` for
        rows coming from the delta buffer (so DML can target them).
        ``columns`` restricts materialisation to a name subset (projection
        pruning).
        """
        table = self.storage_for(name)
        table.zone_maps_enabled = self.zone_maps_enabled
        wanted = (
            list(table.schema.columns)
            if columns is None
            else [c for c in table.schema.columns if c.name in set(columns)]
        )
        row_ids, columns_read = table.read_visible(
            epoch, columns=[c.name for c in wanted], ranges=ranges
        )
        self.rows_scanned += len(row_ids)
        self.chunks_skipped += table.last_scan_chunks_skipped
        self.simulated_busy_seconds += table.row_count / (
            SCAN_ROWS_PER_SECOND * max(1, table.slice_count)
        )
        if delta is None or delta.is_empty:
            return row_ids, columns_read, len(row_ids)

        keep = ~np.isin(row_ids, np.fromiter(
            delta.deleted_base_ids, dtype=np.int64,
            count=len(delta.deleted_base_ids),
        )) if delta.deleted_base_ids else np.ones(len(row_ids), dtype=bool)
        row_ids = row_ids[keep]
        columns_read = {
            name_: VColumn(
                values=col.values[keep],
                mask=col.mask[keep] if col.mask is not None else None,
            )
            for name_, col in columns_read.items()
        }
        insert_indexes = delta.live_insert_indexes()
        if insert_indexes:
            inserted_rows = [delta.inserted[i] for i in insert_indexes]
            extra = columns_from_rows(table.schema, inserted_rows)
            merged: dict[str, VColumn] = {}
            for column in wanted:
                base_col = columns_read[column.name]
                add_col = extra[column.name]
                values = _concat_values(base_col.values, add_col.values)
                mask = _concat_optional_masks(
                    base_col.mask, add_col.mask, len(base_col.values),
                    len(add_col.values),
                )
                merged[column.name] = VColumn(values=values, mask=mask)
            columns_read = merged
            delta_ids = np.array(
                [-(i + 1) for i in insert_indexes], dtype=np.int64
            )
            row_ids = np.concatenate([row_ids, delta_ids])
        return row_ids, columns_read, len(row_ids)

    def partition_scan(
        self,
        name: str,
        epoch: int,
        ranges: Optional[dict[str, tuple]] = None,
        delta: Optional[DeltaBuffer] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> Optional["ScanPartitions"]:
        """Split a snapshot scan into parallel chunk-span partitions.

        Returns ``None`` — sequential fallback — when the fan-out is
        disabled, the table is too small for threads to pay off, a
        transaction delta must be merged (delta merge is inherently a
        single ordered pass), or fault rules are armed for the
        accelerator (injected faults must fire deterministically on the
        single sequential scan, not on a racing worker).
        """
        workers = self.parallel_workers
        if workers < 2:
            return None
        if delta is not None and not delta.is_empty:
            return None
        if self.fault_injector is not None and self.fault_injector.rules(
            "accelerator"
        ):
            return None
        table = self.storage_for(name)
        table.zone_maps_enabled = self.zone_maps_enabled
        chunks = table.visible_chunks(ranges)
        skipped = table.last_scan_chunks_skipped
        if len(chunks) < 2:
            return None
        total_rows = sum(len(chunk) for chunk in chunks)
        if total_rows < self.parallel_min_rows:
            return None
        spans = _partition_chunks(chunks, workers)

        wanted = list(columns) if columns is not None else None

        def make_gather(span_chunks):
            return lambda: table.gather_chunks(span_chunks, epoch, wanted)

        busy = table.row_count / (
            SCAN_ROWS_PER_SECOND * max(1, table.slice_count)
        )

        def finish(rows_scanned: int) -> None:
            self.rows_scanned += rows_scanned
            self.chunks_skipped += skipped
            self.simulated_busy_seconds += busy
            self.parallel_scans += 1

        return ScanPartitions(
            partitions=[make_gather(span) for span in spans],
            workers=workers,
            finish=finish,
        )

    # -- queries -------------------------------------------------------------------------

    def execute_select(
        self,
        stmt,
        params: Sequence[object] = (),
        snapshot_epoch: Optional[int] = None,
        deltas: Optional[dict[str, DeltaBuffer]] = None,
        kernel_cache=None,
        plan=None,
        profile=None,
        estimates=None,
    ) -> tuple[list[str], list[tuple]]:
        epoch = self.current_epoch if snapshot_epoch is None else snapshot_epoch
        tracer = self.tracer
        span = (
            tracer.span("accelerator.execute", epoch=epoch)
            if tracer is not None and tracer.enabled
            else NULL_SPAN
        )
        with span:
            scanned_before = self.rows_scanned
            self._check_fault()
            provider = _SnapshotProvider(self, epoch, deltas)
            engine = VectorQueryEngine(
                provider,
                params,
                kernel_cache=kernel_cache,
                tracer=tracer,
                profile=profile,
                estimates=estimates,
            )
            columns, rows = engine.execute(plan if plan is not None else stmt)
            self.queries_executed += 1
            span.annotate(
                rows=len(rows),
                rows_scanned=self.rows_scanned - scanned_before,
            )
            # Telemetry for the most recent statement (benchmarks and
            # tests read partition balance from here).
            self.last_parallel_scans = engine.parallel_scans
            if engine.parallel_scans:
                self._record_parallel_scans(engine.parallel_scans, span)
        return columns, rows

    def _record_parallel_scans(self, scans: list[dict], span) -> None:
        """Per-worker span timings + metrics for this statement's scans."""
        seconds = [s for scan in scans for s in scan["partition_seconds"]]
        span.annotate(
            parallel_scans=len(scans),
            parallel_workers=scans[0]["workers"],
            partition_seconds=[round(s, 6) for s in seconds],
        )
        if self.metrics is not None:
            self.metrics.counter("accelerator.parallel_statements").inc()
            histogram = self.metrics.histogram(
                "accelerator.scan_partition_seconds"
            )
            for value in seconds:
                histogram.observe(value)

    # -- AOT DML ------------------------------------------------------------------------------

    def insert_into(
        self,
        name: str,
        rows: Sequence[Sequence[object]],
        delta: Optional[DeltaBuffer] = None,
        already_coerced: bool = False,
    ) -> int:
        """INSERT: into the txn delta when given, else applied directly."""
        schema = self.storage_for(name).schema
        coerced = (
            [tuple(r) for r in rows]
            if already_coerced
            else [schema.coerce_row(r) for r in rows]
        )
        if delta is not None:
            delta.insert(coerced)
        else:
            # Crash point: an accelerator-only populate (CTAS / direct
            # INSERT ... SELECT) dies before any row became durable.
            if self.fault_injector is not None:
                self.fault_injector.crash_point("aot.mid_build")
            self.bulk_insert(name, coerced)
        return len(coerced)

    def delete_where(
        self,
        stmt: ast.DeleteStatement,
        params: Sequence[object] = (),
        snapshot_epoch: Optional[int] = None,
        delta: Optional[DeltaBuffer] = None,
    ) -> int:
        name = stmt.table.upper()
        budget = current_budget()
        if budget is not None:
            # Deadline checkpoint before target selection: the statement
            # stops here rather than after a (fully atomic) apply.
            budget.check()
        if delta is not None:
            base_ids, own_indexes = self._target_rows(
                name, stmt.where, params, snapshot_epoch, delta
            )
            deleted = delta.delete_base(base_ids)
            deleted += delta.delete_own(own_indexes)
            return deleted
        # Direct apply: target selection and deletion form one atomic
        # read-modify-write, so concurrent DML cannot double-apply.
        table = self.storage_for(name)
        with self._write_lock:
            base_ids, __ = self._target_rows(
                name, stmt.where, params, snapshot_epoch, None
            )
            self._lookup_cache.pop(name, None)
            if not base_ids:
                return 0
            epoch = self._staged_epoch()
            deleted = table.mark_deleted(base_ids, epoch)
            self._publish_epoch(epoch)
            self._note_write_locked(name)
            return deleted

    def update_where(
        self,
        stmt: ast.UpdateStatement,
        params: Sequence[object] = (),
        snapshot_epoch: Optional[int] = None,
        delta: Optional[DeltaBuffer] = None,
    ) -> int:
        name = stmt.table.upper()
        budget = current_budget()
        if budget is not None:
            budget.check()
        if delta is None:
            # Direct apply is an atomic read-modify-write (see delete).
            with self._write_lock:
                return self._update_where_unlocked(
                    stmt, params, snapshot_epoch, None
                )
        return self._update_where_unlocked(stmt, params, snapshot_epoch, delta)

    def _update_where_unlocked(
        self,
        stmt: ast.UpdateStatement,
        params: Sequence[object],
        snapshot_epoch: Optional[int],
        delta: Optional[DeltaBuffer],
    ) -> int:
        name = stmt.table.upper()
        table = self.storage_for(name)
        schema = table.schema
        epoch = self.current_epoch if snapshot_epoch is None else snapshot_epoch
        row_ids, columns, length = self.scan_snapshot(name, epoch, delta=delta)
        scope = Scope([(name, c.name) for c in schema.columns])
        ordered = [columns[c.name] for c in schema.columns]
        mask = self._predicate_mask(stmt.where, scope, ordered, length, params)
        if not mask.any():
            return 0
        target_positions = np.where(mask)[0]
        # Compute new full rows for the targets.
        assignment_map = {column: expr for column, expr in stmt.assignments}
        new_columns: list[list[object]] = []
        for column in schema.columns:
            expr = assignment_map.get(column.name)
            if expr is None:
                source = ordered[schema.position_of(column.name)]
                values = source.to_objects()
                new_columns.append([values[i] for i in target_positions])
            else:
                fn = compile_vector(expr, scope, params)
                result = fn(ordered, length)
                values = result.to_objects()
                new_columns.append(
                    [column.coerce(values[i]) for i in target_positions]
                )
        new_rows = [tuple(col[j] for col in new_columns)
                    for j in range(len(target_positions))]
        target_ids = row_ids[mask]
        base_ids = [int(r) for r in target_ids if r >= 0]
        own_indexes = [-(int(r)) - 1 for r in target_ids if r < 0]
        if delta is not None:
            delta.delete_base(base_ids)
            # Replace own inserts in place; base targets become new inserts.
            own_set = set(own_indexes)
            replacement = iter(new_rows)
            for r in target_ids:
                row = next(replacement)
                if r < 0 and -(int(r)) - 1 in own_set:
                    delta.update_own(-(int(r)) - 1, row)
                else:
                    delta.insert([row])
            return len(new_rows)
        self._lookup_cache.pop(name, None)
        epoch = self._staged_epoch()
        if base_ids:
            table.mark_deleted(base_ids, epoch)
        table.append_rows(new_rows, epoch)
        self._publish_epoch(epoch)
        self._note_write_locked(name)
        return len(new_rows)

    def _target_rows(
        self,
        name: str,
        where: Optional[ast.Expression],
        params: Sequence[object],
        snapshot_epoch: Optional[int],
        delta: Optional[DeltaBuffer],
    ) -> tuple[list[int], list[int]]:
        table = self.storage_for(name)
        schema = table.schema
        epoch = self.current_epoch if snapshot_epoch is None else snapshot_epoch
        scope = Scope([(name, c.name) for c in schema.columns])
        binding_columns = {i: c.name for i, c in enumerate(schema.columns)}
        ranges = (
            extract_column_ranges(where, scope, binding_columns)
            if where is not None
            else {}
        )
        row_ids, columns, length = self.scan_snapshot(
            name, epoch, ranges=ranges or None, delta=delta
        )
        ordered = [columns[c.name] for c in schema.columns]
        mask = self._predicate_mask(where, scope, ordered, length, params)
        targets = row_ids[mask]
        base_ids = [int(r) for r in targets if r >= 0]
        own_indexes = [-(int(r)) - 1 for r in targets if r < 0]
        return base_ids, own_indexes

    def _predicate_mask(
        self,
        where: Optional[ast.Expression],
        scope: Scope,
        columns: list[VColumn],
        length: int,
        params: Sequence[object],
    ) -> np.ndarray:
        if where is None:
            return np.ones(length, dtype=bool)
        fn = compile_vector(
            where, scope, params, self._dml_resolver(scope)
        )
        result = fn(columns, length)
        mask = result.values.astype(bool)
        if result.mask is not None:
            mask &= ~result.mask
        return mask

    def _dml_resolver(self, scope: Scope):
        from repro.sql.correlation import SubqueryExecutor

        return SubqueryExecutor(
            scope,
            lambda table: self.storage_for(table).schema.column_names,
            lambda query: self.execute_select(query)[1],
        )


def _partition_chunks(chunks: list, parts: int) -> list[list]:
    """Split chunks into up to ``parts`` contiguous spans of ~equal rows.

    Spans are contiguous in chunk order so that concatenating the
    partitions' results reproduces the sequential scan's row order
    byte-for-byte.
    """
    total = sum(len(chunk) for chunk in chunks)
    spans: list[list] = []
    current: list = []
    accumulated = 0
    for chunk in chunks:
        current.append(chunk)
        accumulated += len(chunk)
        if (
            len(spans) < parts - 1
            and accumulated >= total * (len(spans) + 1) / parts
        ):
            spans.append(current)
            current = []
    if current:
        spans.append(current)
    return spans


def _concat_values(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if a.dtype == b.dtype:
        return np.concatenate([a, b])
    return np.concatenate([a.astype(object), b.astype(object)])


def _concat_optional_masks(a, b, a_len: int, b_len: int):
    if a is None and b is None:
        return None
    left = a if a is not None else np.zeros(a_len, dtype=bool)
    right = b if b is not None else np.zeros(b_len, dtype=bool)
    merged = np.concatenate([left, right])
    return merged if merged.any() else None

"""Vectorised intermediate results (column batches with a scope)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.catalog.schema import TableSchema
from repro.sql.expressions import Scope, VColumn

__all__ = ["VTable", "columns_from_rows", "rows_from_columns"]


class VTable:
    """A batch of columns aligned with a name-resolution scope.

    This is what flows between the accelerator's operators: scans produce
    one, joins concatenate two, filters compress one, and projections
    turn one into result rows.
    """

    def __init__(self, scope: Scope, columns: list[VColumn], length: int) -> None:
        self.scope = scope
        self.columns = columns
        self.length = length

    @property
    def width(self) -> int:
        return len(self.columns)

    def filter(self, mask: np.ndarray) -> "VTable":
        """Keep only rows where ``mask`` is True."""
        if mask.all():
            return self
        count = int(mask.sum())
        columns = [
            VColumn(
                values=col.values[mask],
                mask=col.mask[mask] if col.mask is not None else None,
            )
            for col in self.columns
        ]
        return VTable(self.scope, columns, count)

    def gather(
        self, indexes: np.ndarray, null_mask: Optional[np.ndarray] = None
    ) -> list[VColumn]:
        """Columns re-ordered by ``indexes``; rows where ``null_mask`` is
        True become all-NULL (outer-join padding). ``indexes`` entries for
        padded rows may be arbitrary (use 0)."""
        out: list[VColumn] = []
        for col in self.columns:
            values = col.values[indexes]
            if col.mask is not None:
                mask = col.mask[indexes].copy()
            else:
                mask = None
            if null_mask is not None and null_mask.any():
                if mask is None:
                    mask = np.zeros(len(indexes), dtype=bool)
                mask |= null_mask
            out.append(VColumn(values=values, mask=mask))
        return out

    def to_rows(self) -> list[tuple]:
        """Materialise as Python row tuples (NULL → None)."""
        if not self.columns:
            return [()] * self.length
        object_columns = [col.to_objects() for col in self.columns]
        return [tuple(row) for row in zip(*object_columns)]


def columns_from_rows(
    schema: TableSchema, rows: Sequence[tuple]
) -> dict[str, VColumn]:
    """Pack coerced row tuples into typed columns (delta merge, loader)."""
    out: dict[str, VColumn] = {}
    for position, column in enumerate(schema.columns):
        items = [row[position] for row in rows]
        mask = np.array([item is None for item in items], dtype=bool)
        dtype = column.sql_type.numpy_dtype
        if dtype.kind in "ifb":
            fill = 0 if dtype.kind in "ib" else np.nan
            values = np.array(
                [fill if item is None else item for item in items], dtype=dtype
            )
        else:
            values = np.empty(len(items), dtype=object)
            values[:] = items
        out[column.name] = VColumn(
            values=values, mask=mask if mask.any() else None
        )
    return out


def rows_from_columns(columns: Sequence[VColumn]) -> list[tuple]:
    """Inverse of :func:`columns_from_rows` for aligned columns."""
    if not columns:
        return []
    object_columns = [col.to_objects() for col in columns]
    return [tuple(row) for row in zip(*object_columns)]

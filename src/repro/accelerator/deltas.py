"""Transaction-scoped delta buffers for accelerator-only tables.

Section 2 of the paper: *"With AOTs, IDAA has to be aware of the DB2
transaction context so that correct results are guaranteed, i.e.,
uncommitted data modifications of the own transaction are handled. At the
same time, concurrent execution of multiple queries in a single
transaction are also supported."*

The mechanism here:

* every AOT modification inside an open DB2 transaction lands in a
  :class:`DeltaBuffer` attached to that transaction, not in the base
  column store;
* queries of the same transaction merge base snapshot + own delta, so
  they see their own uncommitted changes (and can run concurrently —
  the buffer is only appended to between statements);
* other transactions read the base snapshot at their epoch and never see
  the buffer (snapshot isolation);
* COMMIT applies the buffer to the column store at a fresh epoch;
  ROLLBACK just drops it.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["DeltaBuffer"]


class DeltaBuffer:
    """Uncommitted inserts/deletes of one transaction against one AOT."""

    def __init__(self, table: str) -> None:
        self.table = table
        #: Rows inserted by this transaction (coerced tuples). Entries
        #: deleted again before commit become ``None`` placeholders.
        self.inserted: list[tuple | None] = []
        #: Base-table row ids deleted by this transaction.
        self.deleted_base_ids: set[int] = set()

    # Positive indexes address ``inserted``; this keeps row identity for
    # UPDATE/DELETE statements that target the transaction's own inserts.

    def insert(self, rows: Sequence[tuple]) -> None:
        self.inserted.extend(tuple(row) for row in rows)

    def delete_base(self, row_ids: Sequence[int]) -> int:
        before = len(self.deleted_base_ids)
        self.deleted_base_ids.update(int(r) for r in row_ids)
        return len(self.deleted_base_ids) - before

    def delete_own(self, insert_indexes: Sequence[int]) -> int:
        deleted = 0
        for index in insert_indexes:
            if self.inserted[index] is not None:
                self.inserted[index] = None
                deleted += 1
        return deleted

    def update_own(self, insert_index: int, new_row: tuple) -> None:
        self.inserted[insert_index] = tuple(new_row)

    def live_inserts(self) -> list[tuple]:
        return [row for row in self.inserted if row is not None]

    def live_insert_indexes(self) -> list[int]:
        return [i for i, row in enumerate(self.inserted) if row is not None]

    @property
    def is_empty(self) -> bool:
        return not self.deleted_base_ids and not any(
            row is not None for row in self.inserted
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaBuffer({self.table}, +{len(self.live_inserts())}, "
            f"-{len(self.deleted_base_ids)})"
        )

"""Vectorised query execution for the accelerator.

The engine lowers the shared logical plan (:mod:`repro.sql.logical`) to
column-batch kernels: operators consume and produce
:class:`~repro.accelerator.vtable.VTable` batches; predicates and
projections run as numpy kernels compiled by
:func:`repro.sql.expressions.compile_vector`. Grouped aggregation uses
``bincount`` / ``ufunc.at`` kernels on group-inverse arrays. This is the
simulation stand-in for Netezza's FPGA-accelerated streaming execution:
the *shape* of its advantage over DB2's interpreted row pipeline — column
pruning (``Scan.columns``), zone-map skipping (``Scan.predicate``), batch
arithmetic — is preserved.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence, Union

import numpy as np

from repro.catalog.schema import Column, TableSchema
from repro.errors import ParseError
from repro.sql import ast, logical
from repro.sql.expressions import (
    Scope,
    VColumn,
    compile_scalar,
    compile_vector,
    expression_label,
)
from repro.sql.correlation import SubqueryExecutor
from repro.wlm.budget import current_budget
from repro.sql.planning import (
    canonicalize,
    extract_column_ranges,
    map_children,
    references_only,
    resolve_order_position,
    sort_rows_with_keys,
    split_conjuncts,
)
from repro.sql.stats import CostModel
from repro.accelerator.vtable import VTable

#: Shared strategy thresholds for the estimate-driven join choice.
_COST_MODEL = CostModel()

__all__ = [
    "VectorTableProvider",
    "VectorQueryEngine",
    "ScanPartitions",
    "ScanWorkerPool",
    "run_partitioned_aggregate",
]


@dataclass(frozen=True)
class ScanPartitions:
    """A table scan split into independent chunk-span partitions.

    ``partitions`` are thunks, each returning ``(row_ids, columns)`` for
    one contiguous span of post-pruning chunks; concatenating their
    results in list order reproduces the sequential scan's row order
    exactly. ``finish`` must be called exactly once (from the
    coordinating thread) with the total rows gathered, so the engine's
    scan counters are updated without racing.

    ``ordered`` is the concatenation guarantee above. Sharded providers
    return ``ordered=False`` plans — each partition is one shard's rows,
    and concatenating shards does *not* reproduce the single-instance
    scan order. Consumers that splice partition results back into a row
    stream must fall back to a sequential scan for unordered plans;
    consumers folding order-independent aggregate states (COUNT/MIN/MAX
    partials, mergeable training states) may use them freely.
    """

    partitions: list
    workers: int
    finish: Callable[[int], None]
    ordered: bool = True


class ScanWorkerPool:
    """Process-wide thread pools for partitioned scans, keyed by size.

    The gather + predicate work per partition is numpy-dominated and
    releases the GIL, so threads give real overlap. Pools are shared
    across all engines in the process: many short-lived systems (the
    test suite builds thousands) must not each spawn a thread set.
    """

    _lock = threading.Lock()
    _pools: dict[int, ThreadPoolExecutor] = {}

    @classmethod
    def run(cls, workers: int, fn: Callable, items: Sequence) -> list:
        """Apply ``fn`` to ``items`` on the shared pool; order preserved."""
        with cls._lock:
            pool = cls._pools.get(workers)
            if pool is None:
                pool = ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix=f"accel-scan{workers}",
                )
                cls._pools[workers] = pool
        return list(pool.map(fn, items))


def run_partitioned_aggregate(
    plan: ScanPartitions,
    partition_fn: Callable[[Sequence, dict], object],
    budget=None,
) -> tuple[list, int, list[float]]:
    """Run a mergeable-aggregate transition over scan partitions.

    Each partition thunk is gathered on the shared :class:`ScanWorkerPool`
    and fed to ``partition_fn(row_ids, columns)``, which returns that
    partition's aggregate state. States come back in partition order, so
    an ordered merge reproduces the sequential transition order exactly
    (the same contract the SQL partial-aggregate kernels rely on).
    ``budget`` is checked at each partition boundary for cooperative
    cancellation; it must be passed explicitly because contextvars do not
    propagate into the shared pool threads. Returns
    ``(states, rows_scanned, per_partition_seconds)``; ``plan.finish`` is
    called exactly once with the total.
    """

    def task(gather):
        if budget is not None:
            budget.check()
        started = time.perf_counter()
        row_ids, columns = gather()
        state = partition_fn(row_ids, columns)
        return state, len(row_ids), time.perf_counter() - started

    results = ScanWorkerPool.run(plan.workers, task, plan.partitions)
    total = sum(rows for __, rows, __ in results)
    plan.finish(total)
    states = [state for state, __, __ in results]
    seconds = [elapsed for __, __, elapsed in results]
    return states, total, seconds


class VectorTableProvider(Protocol):
    """What the vector executor needs from the accelerator engine."""

    def table_schema(self, name: str) -> TableSchema:
        """Schema of a base table."""

    def scan_columns(
        self,
        name: str,
        ranges: Optional[dict[str, tuple]] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> tuple[dict[str, VColumn], int]:
        """Current visible columns of a base table (plus row count).

        ``columns`` restricts materialisation to a name subset (projection
        pruning); providers without column projection may ignore it and
        return every column.
        """


class VectorQueryEngine:
    """Executes logical plans as column-batch pipelines."""

    def __init__(
        self,
        provider: VectorTableProvider,
        params: Sequence[object] = (),
        kernel_cache=None,
        tracer=None,
        profile=None,
        estimates=None,
    ) -> None:
        self._provider = provider
        self._params = params
        #: Optional cardinality estimates keyed by id(plan node); when
        #: present, INNER equi-joins pick their hash build side (and tiny
        #: products take the vectorised cross-filter path) from them.
        #: All strategies are byte-identical.
        self._estimates = estimates if estimates is not None else {}
        #: Optional StatementProfile (repro.obs.profile); when set, each
        #: plan operator reports rows/wall-time/chunks-pruned into it.
        #: Disabled cost: one ``is None`` check per operator.
        self._profile = profile
        #: Optional compiled-kernel cache (``get``/``put``) owned by the
        #: statement's cached plan. Only subquery-free expressions are
        #: cached: subquery kernels close over a resolver bound to this
        #: execution's snapshot. Keys include the params tuple because
        #: parameter values are baked into the compiled closures.
        self._kernel_cache = kernel_cache
        #: Optional repro.obs tracer; when enabled, each plan operator
        #: emits an ``op.*`` child span so MON_SPANS shows plan shape.
        self.tracer = tracer
        #: The statement's work budget, captured once at engine
        #: construction (one engine per statement). Captured eagerly
        #: because contextvars do not propagate into the shared
        #: ScanWorkerPool threads — partition tasks close over it.
        self._budget = current_budget()
        self.rows_scanned = 0
        #: One entry per partitioned scan this statement ran (telemetry).
        self.parallel_scans: list[dict] = []

    # -- public API --------------------------------------------------------------

    def execute(
        self,
        stmt: Union[ast.SelectStatement, ast.SetOperation, logical.PlanNode],
    ) -> tuple[list[str], list[tuple]]:
        """Run a statement or pre-bound logical plan; returns (columns, rows)."""
        if isinstance(stmt, logical.PlanNode):
            plan = stmt
        else:
            plan = logical.plan_statement(stmt)
        return self._execute_plan(plan)

    def _checkpoint(self) -> None:
        """Cooperative cancellation point (operator/chunk boundaries)."""
        if self._budget is not None:
            self._budget.check()

    def _op_span(self, name: str, **attrs):
        tracer = self.tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return nullcontext()
        return tracer.span(f"op.{name}", **attrs)

    def _stats(self, node: logical.PlanNode):
        """This node's OperatorStats, or None when profiling is off."""
        profile = self._profile
        if profile is None:
            return None
        return profile.stats_for(node)

    def _resolver(self, scope: Scope) -> SubqueryExecutor:
        """Scope-aware subquery executor (see repro.sql.correlation)."""
        return SubqueryExecutor(
            scope,
            lambda table: self._provider.table_schema(table).column_names,
            lambda query: self.execute(query)[1],
        )

    def _compile_where(self, where: ast.Expression, scope: Scope) -> Callable:
        """Compile a WHERE predicate, reusing the plan's kernel cache.

        Subquery-bearing predicates are compiled fresh every time (their
        resolver captures this execution's snapshot); everything else is
        cached by (expression identity, scope, params). Each entry pins
        the expression object it was compiled from and is validated by
        identity on lookup: predicates of ephemeral ASTs (bound
        correlated subqueries) die after execution, and without the pin a
        later AST could be allocated at the recycled address and collide
        on ``id`` — serving a kernel compiled for a different literal.
        """
        if self._kernel_cache is None or _contains_subquery(where):
            return compile_vector(
                where, scope, self._params, self._resolver(scope)
            )
        try:
            key = (id(where), tuple(scope.entries), tuple(self._params))
            hash(key)
        except TypeError:
            return compile_vector(where, scope, self._params)
        entry = self._kernel_cache.get(key)
        if entry is not None and entry[0] is where:
            return entry[1]
        fn = compile_vector(where, scope, self._params)
        self._kernel_cache.put(key, (where, fn))
        return fn

    # -- plan walker -------------------------------------------------------------

    def _execute_plan(self, node: logical.PlanNode) -> tuple[list[str], list[tuple]]:
        self._checkpoint()
        if isinstance(node, logical.Limit):
            with self._op_span("limit"):
                stats = self._stats(node)
                started = time.perf_counter() if stats is not None else 0.0
                columns, rows = self._execute_plan(node.child)
                out = logical.slice_rows(rows, node.offset, node.limit)
                if stats is not None:
                    stats.observe(len(out), time.perf_counter() - started)
                return columns, out
        if isinstance(node, logical.Sort):
            stats = self._stats(node)
            if stats is None:
                return self._execute_sorted(node.child, node.order_by)
            started = time.perf_counter()
            columns, rows = self._execute_sorted(node.child, node.order_by)
            stats.observe(len(rows), time.perf_counter() - started)
            return columns, rows
        if isinstance(node, logical.SetOp):
            return self._execute_set_op(node)
        if isinstance(node, logical.Aggregate):
            return self._execute_aggregate(node, ())
        if isinstance(node, logical.Project):
            return self._execute_project(node, ())
        raise ParseError(f"cannot execute plan node {type(node).__name__}")

    def _execute_sorted(
        self, child: logical.PlanNode, order_by: Sequence[ast.OrderItem]
    ) -> tuple[list[str], list[tuple]]:
        with self._op_span("sort"):
            # Projection and aggregation fuse their ORDER BY (keys may
            # reference the pre-projection input scope); set operations
            # sort over output columns.
            if isinstance(child, logical.Aggregate):
                return self._execute_aggregate(child, order_by)
            if isinstance(child, logical.Project) and child.child is not None:
                return self._execute_project(child, order_by)
            columns, rows = self._execute_plan(child)
            return columns, logical.order_rows_by_output(
                columns, rows, order_by, self._params
            )

    def _execute_set_op(self, node: logical.SetOp) -> tuple[list[str], list[tuple]]:
        stats = self._stats(node)
        started = time.perf_counter() if stats is not None else 0.0
        with self._op_span("setop", op=node.op):
            left_cols, left_rows = self._execute_plan(node.left)
            right_cols, right_rows = self._execute_plan(node.right)
            rows = logical.combine_set_rows(
                node.op, left_cols, left_rows, right_cols, right_rows
            )
        if stats is not None:
            stats.observe(len(rows), time.perf_counter() - started)
        return left_cols, rows

    def _execute_project(
        self, node: logical.Project, order_by: Sequence[ast.OrderItem]
    ) -> tuple[list[str], list[tuple]]:
        stats = self._stats(node)
        if node.child is None:
            columns, rows = self._constant_select(node.select_items)
            if stats is not None:
                stats.observe(len(rows), 0.0)
            return columns, rows
        started = time.perf_counter() if stats is not None else 0.0
        with self._op_span("project"):
            table = self._build_table(node.child, allow_parallel=True)
            columns, rows = self._project(node.select_items, order_by, table)
        if node.distinct:
            rows = logical.dedup_rows(rows)
        if stats is not None:
            stats.observe(len(rows), time.perf_counter() - started)
        return columns, rows

    def _execute_aggregate(
        self, node: logical.Aggregate, order_by: Sequence[ast.OrderItem]
    ) -> tuple[list[str], list[tuple]]:
        stats = self._stats(node)
        started = time.perf_counter() if stats is not None else 0.0
        with self._op_span("aggregate"):
            direct = None
            if not order_by and not node.group_by and node.having is None:
                direct = self._partial_aggregate(node)
            if direct is not None:
                columns, rows = direct
            else:
                table = self._build_table(node.child, allow_parallel=True)
                columns, rows = self._aggregate(node, order_by, table)
        if node.distinct:
            rows = logical.dedup_rows(rows)
        if stats is not None:
            stats.observe(len(rows), time.perf_counter() - started)
        return columns, rows

    def _constant_select(
        self, select_items: Sequence[ast.SelectItem]
    ) -> tuple[list[str], list[tuple]]:
        scope = Scope([])
        columns: list[str] = []
        values: list[object] = []
        for position, item in enumerate(select_items):
            if isinstance(item.expression, ast.Star):
                raise ParseError("'*' requires a FROM clause")
            fn = compile_scalar(
                item.expression, scope, self._params, self._resolver(scope)
            )
            values.append(fn(()))
            columns.append(item.alias or expression_label(item.expression, position))
        return columns, [tuple(values)]

    # -- FROM side of the plan ------------------------------------------------------

    def _build_table(
        self,
        node: logical.PlanNode,
        hint: Optional[ast.Expression] = None,
        allow_parallel: bool = False,
    ) -> VTable:
        """Materialise a from-subtree as a VTable.

        ``hint`` is a predicate that will be applied *above* this subtree
        (a Filter over a Join); scans use it for zone-map range extraction
        only — chunk skipping is conservative, so pruning by a predicate
        that is re-checked later preserves results while cutting
        rows_scanned.
        """
        scan, predicates = _peel_filters(node)
        if scan is not None:
            table = self._scan_pipeline(scan, predicates, hint, allow_parallel)
            if self._profile is not None and node is not scan:
                # Filters collapsed into the scan pipeline report the
                # pipeline's output as their own (marked fused).
                self._profile.mark_fused_filters(node, table.length)
            return table
        if isinstance(node, logical.Filter):
            child_hint = (
                node.predicate
                if hint is None
                else ast.BinaryOp(op="AND", left=hint, right=node.predicate)
            )
            table = self._build_table(node.child, hint=child_hint)
            with self._op_span("filter"):
                stats = self._stats(node)
                started = time.perf_counter() if stats is not None else 0.0
                result = self._filter_table(table, node.predicate)
                if stats is not None:
                    stats.observe(
                        result.length,
                        time.perf_counter() - started,
                        rows_in=table.length,
                    )
                return result
        if isinstance(node, logical.SubqueryBind):
            stats = self._stats(node)
            started = time.perf_counter() if stats is not None else 0.0
            with self._op_span("subquery", alias=node.alias):
                columns, rows = self._execute_plan(node.plan)
            scope = Scope([(node.alias, name) for name in columns])
            packed = [
                VColumn.from_objects([row[i] for row in rows])
                for i in range(len(columns))
            ]
            if not rows:
                packed = [VColumn(values=np.empty(0, dtype=object))] * len(columns)
            if stats is not None:
                stats.observe(len(rows), time.perf_counter() - started)
            return VTable(scope, packed, len(rows))
        if isinstance(node, logical.Join):
            stats = self._stats(node)
            if stats is None:
                return self._join(node, hint)
            started = time.perf_counter()
            table = self._join(node, hint)
            stats.observe(table.length, time.perf_counter() - started)
            return table
        raise ParseError(f"cannot execute plan node {type(node).__name__}")

    def _filter_table(self, table: VTable, predicate: ast.Expression) -> VTable:
        fn = self._compile_where(predicate, table.scope)
        result = fn(table.columns, table.length)
        mask = result.values.astype(bool)
        if result.mask is not None:
            mask &= ~result.mask
        return table.filter(mask)

    # -- scans (sequential and chunk-parallel) ---------------------------------------

    def _scan_pipeline(
        self,
        scan: logical.Scan,
        predicates: list[ast.Expression],
        hint: Optional[ast.Expression],
        allow_parallel: bool,
    ) -> VTable:
        stats = self._stats(scan)
        if stats is None:
            return self._scan_pipeline_impl(
                scan, predicates, hint, allow_parallel
            )
        chunks_fn = getattr(self._provider, "chunks_skipped_total", None)
        chunks_before = chunks_fn() if chunks_fn is not None else 0
        scanned_before = self.rows_scanned
        started = time.perf_counter()
        table = self._scan_pipeline_impl(scan, predicates, hint, allow_parallel)
        stats.observe(
            table.length,
            time.perf_counter() - started,
            rows_in=self.rows_scanned - scanned_before,
        )
        if chunks_fn is not None:
            stats.chunks_skipped += chunks_fn() - chunks_before
        return table

    def _scan_pipeline_impl(
        self,
        scan: logical.Scan,
        predicates: list[ast.Expression],
        hint: Optional[ast.Expression],
        allow_parallel: bool,
    ) -> VTable:
        self._checkpoint()
        schema = self._provider.table_schema(scan.table)
        cols = _pruned_schema_columns(scan, schema)
        scope = Scope([(scan.binding, c.name) for c in cols])
        binding_columns = {i: c.name for i, c in enumerate(cols)}
        parts = ([scan.predicate] if scan.predicate is not None else []) + list(
            reversed(predicates)
        )
        predicate_expr = _and_all(parts) if parts else None
        range_parts = parts + ([hint] if hint is not None else [])
        ranges = (
            extract_column_ranges(_and_all(range_parts), scope, binding_columns)
            if range_parts
            else {}
        )
        column_names = (
            [c.name for c in cols] if scan.columns is not None else None
        )
        if allow_parallel:
            table = self._parallel_scan(
                scan, cols, scope, predicate_expr, ranges, column_names
            )
            if table is not None:
                return table
        with self._op_span("scan", table=scan.table):
            columns, length = self._scan_columns(
                scan.table, ranges or None, column_names
            )
            self.rows_scanned += length
            ordered = [columns[c.name] for c in cols]
            table = VTable(scope, ordered, length)
            if predicate_expr is not None:
                table = self._filter_table(table, predicate_expr)
        return table

    def _scan_columns(
        self,
        name: str,
        ranges: Optional[dict],
        column_names: Optional[list[str]],
    ) -> tuple[dict[str, VColumn], int]:
        if column_names is None:
            return self._provider.scan_columns(name, ranges)
        try:
            return self._provider.scan_columns(name, ranges, columns=column_names)
        except TypeError:
            # Provider without column projection: scan all, subset here.
            columns, length = self._provider.scan_columns(name, ranges)
            return {n: columns[n] for n in column_names}, length

    def _partition_plan(
        self,
        scan: logical.Scan,
        predicate_expr: Optional[ast.Expression],
        ranges: dict,
        column_names: Optional[list[str]],
    ) -> Optional[ScanPartitions]:
        scan_partitions = getattr(self._provider, "scan_partitions", None)
        if scan_partitions is None:
            return None
        if predicate_expr is not None and _contains_subquery(predicate_expr):
            return None
        if column_names is None:
            return scan_partitions(scan.table, ranges or None)
        try:
            return scan_partitions(
                scan.table, ranges or None, columns=column_names
            )
        except TypeError:
            return scan_partitions(scan.table, ranges or None)

    def _run_partitions(
        self, scan: logical.Scan, plan: ScanPartitions, task: Callable
    ) -> list:
        results = ScanWorkerPool.run(plan.workers, task, plan.partitions)
        scanned = sum(r[2] for r in results)
        plan.finish(scanned)
        self.rows_scanned += scanned
        if self._profile is not None:
            stats = self._profile.stats_for(scan)
            if stats is not None:
                # The caller's observe() adds the final batch; with the
                # partitions this totals one batch per partition.
                stats.parallel = True
                stats.batches += len(plan.partitions) - 1
        self.parallel_scans.append(
            {
                "table": scan.table.upper(),
                "workers": plan.workers,
                "partitions": len(plan.partitions),
                "rows_scanned": scanned,
                "partition_rows": [r[2] for r in results],
                "partition_seconds": [r[4] for r in results],
            }
        )
        return results

    def _partition_task(
        self,
        cols: list[Column],
        predicate: Optional[Callable],
        partial_specs: Optional[list],
    ) -> Callable:
        """Per-partition worker: gather a chunk span, filter, maybe fold.

        Byte-identity with the sequential path holds by construction:
        compiled kernels are pure and elementwise, partitions are
        contiguous chunk spans in sequential scan order, so per-partition
        filter + ordered concatenation equals whole-table filter; the
        partial-aggregate path is restricted to order-independent
        aggregates (COUNT / COUNT DISTINCT / MIN / MAX).

        The statement budget is baked into the closure (contextvars do
        not cross into the shared pool's threads): every worker checks
        it before gathering its span, so one statement's timeout or
        cancellation stops all of its queued partitions.
        """
        budget = self._budget

        def task(gather):
            if budget is not None:
                budget.check()
            started = time.perf_counter()
            row_ids, columns = gather()
            ordered = [columns[c.name] for c in cols]
            length = len(row_ids)
            if predicate is not None and length:
                result = predicate(ordered, length)
                mask = result.values.astype(bool)
                if result.mask is not None:
                    mask &= ~result.mask
                kept = int(mask.sum())
                if kept != length:
                    ordered = [
                        VColumn(
                            values=col.values[mask],
                            mask=col.mask[mask]
                            if col.mask is not None
                            else None,
                        )
                        for col in ordered
                    ]
            else:
                kept = length
            partials = None
            if partial_specs is not None:
                partials = [
                    _partition_partial(spec, ordered, kept)
                    for spec in partial_specs
                ]
                ordered = None  # partials carry everything downstream
            return ordered, kept, length, partials, time.perf_counter() - started

        return task

    def _parallel_scan(
        self,
        scan: logical.Scan,
        cols: list[Column],
        scope: Scope,
        predicate_expr: Optional[ast.Expression],
        ranges: dict,
        column_names: Optional[list[str]],
    ) -> Optional[VTable]:
        """Fan a scan + filter across chunk partitions; None = sequential."""
        plan = self._partition_plan(scan, predicate_expr, ranges, column_names)
        if plan is None:
            return None
        if not plan.ordered:
            # Unordered (per-shard) partitions cannot be spliced back into
            # the sequential row order; the sequential scan path gathers
            # shards and reorders them via the placement layout instead.
            return None
        predicate = (
            self._compile_where(predicate_expr, scope)
            if predicate_expr is not None
            else None
        )
        with self._op_span("scan", table=scan.table, parallel="true"):
            results = self._run_partitions(
                scan, plan, self._partition_task(cols, predicate, None)
            )
            merged = _merge_partition_columns([r[0] for r in results], len(cols))
            total = sum(r[1] for r in results)
        return VTable(scope, merged, total)

    def _partial_aggregate(
        self, node: logical.Aggregate
    ) -> Optional[tuple[list[str], list[tuple]]]:
        """Whole-statement collapse to mergeable partial aggregates.

        Only fires for a whole-table (no GROUP BY / HAVING / ORDER BY)
        aggregation over a partitionable scan whose every select item is
        mergeable (see :meth:`_partial_aggregate_specs`).
        """
        scan, predicates = _peel_filters(node.child)
        if scan is None:
            return None
        schema = self._provider.table_schema(scan.table)
        cols = _pruned_schema_columns(scan, schema)
        scope = Scope([(scan.binding, c.name) for c in cols])
        specs = self._partial_aggregate_specs(node.select_items, scope)
        if specs is None:
            return None
        binding_columns = {i: c.name for i, c in enumerate(cols)}
        parts = ([scan.predicate] if scan.predicate is not None else []) + list(
            reversed(predicates)
        )
        predicate_expr = _and_all(parts) if parts else None
        ranges = (
            extract_column_ranges(_and_all(parts), scope, binding_columns)
            if parts
            else {}
        )
        column_names = (
            [c.name for c in cols] if scan.columns is not None else None
        )
        plan = self._partition_plan(scan, predicate_expr, ranges, column_names)
        if plan is None:
            return None
        predicate = (
            self._compile_where(predicate_expr, scope)
            if predicate_expr is not None
            else None
        )
        stats = self._stats(scan)
        chunks_fn = (
            getattr(self._provider, "chunks_skipped_total", None)
            if stats is not None
            else None
        )
        chunks_before = chunks_fn() if chunks_fn is not None else 0
        scanned_before = self.rows_scanned
        started = time.perf_counter() if stats is not None else 0.0
        with self._op_span("scan", table=scan.table, parallel="true"):
            results = self._run_partitions(
                scan, plan, self._partition_task(cols, predicate, specs)
            )
        if stats is not None:
            kept = sum(r[1] for r in results)
            stats.observe(
                kept,
                time.perf_counter() - started,
                rows_in=self.rows_scanned - scanned_before,
            )
            if chunks_fn is not None:
                stats.chunks_skipped += chunks_fn() - chunks_before
            # Filters between the Aggregate and the Scan were folded into
            # the partition predicate.
            self._profile.mark_fused_filters(node.child, kept)
        labels = [
            item.alias or expression_label(item.expression, i)
            for i, item in enumerate(node.select_items)
        ]
        row = tuple(
            _merge_partials(
                spec,
                [r[3][i] for r in results],
                cols[spec[1]].sql_type.numpy_dtype.kind
                if spec[1] is not None
                else None,
            )
            for i, spec in enumerate(specs)
        )
        return labels, [row]

    def _partial_aggregate_specs(
        self, select_items: Sequence[ast.SelectItem], scope: Scope
    ) -> Optional[list[tuple[str, Optional[int]]]]:
        """Partial-aggregate specs, or ``None`` when not safely mergeable.

        Only COUNT(*) / COUNT(col) / COUNT(DISTINCT col) / MIN(col) /
        MAX(col) over a plain column qualify: counts merge by addition,
        distincts by set union, extrema by comparison — all exactly
        order-independent. SUM/AVG/STDDEV are excluded because float
        accumulation order would change the low bits.
        """
        specs: list[tuple[str, Optional[int]]] = []
        for item in select_items:
            expr = item.expression
            if not (isinstance(expr, ast.FunctionCall) and expr.is_aggregate):
                return None
            if (
                expr.name == "COUNT"
                and expr.args
                and isinstance(expr.args[0], ast.Star)
                and not expr.distinct
            ):
                specs.append(("count_star", None))
                continue
            if len(expr.args) != 1 or not isinstance(
                expr.args[0], ast.ColumnRef
            ):
                return None
            arg = expr.args[0]
            try:
                index = scope.resolve(arg.name, arg.table)
            except ParseError:
                return None
            if expr.name == "COUNT":
                specs.append(
                    ("count_distinct" if expr.distinct else "count", index)
                )
            elif expr.name in ("MIN", "MAX"):
                # DISTINCT is a no-op for extrema (mirrors _compute_aggregate).
                specs.append((expr.name.lower(), index))
            else:
                return None
        return specs

    # -- joins -----------------------------------------------------------------------

    def _join(
        self, join: logical.Join, hint: Optional[ast.Expression]
    ) -> VTable:
        join_type = join.join_type
        left_node, right_node = join.left, join.right
        swap = join_type == "RIGHT"
        if swap:
            # RIGHT OUTER = LEFT OUTER with swapped inputs + column remap.
            left_node, right_node = right_node, left_node
            join_type = "LEFT"
        with self._op_span("join", join_type=join.join_type):
            left = self._build_table(left_node, hint=hint)
            right = self._build_table(right_node, hint=hint)
            estimates = (
                (self._estimates.get(id(left_node)), self._estimates.get(id(right_node)))
                if self._estimates
                else (None, None)
            )
            table = self._join_tables(
                left, right, join_type, join.condition, estimates=estimates
            )
        if not swap:
            return table
        cut = len(left.scope)  # width of the original right side
        entries = table.scope.entries[cut:] + table.scope.entries[:cut]
        columns = table.columns[cut:] + table.columns[:cut]
        return VTable(Scope(entries), columns, table.length)

    def _join_tables(
        self,
        left: VTable,
        right: VTable,
        join_type: str,
        condition: Optional[ast.Expression],
        estimates: tuple[Optional[int], Optional[int]] = (None, None),
    ) -> VTable:
        combined_scope = Scope(left.scope.entries + right.scope.entries)

        if join_type == "CROSS":
            left_idx = np.repeat(np.arange(left.length), right.length)
            right_idx = np.tile(np.arange(right.length), left.length)
            columns = left.gather(left_idx) + right.gather(right_idx)
            return VTable(combined_scope, columns, len(left_idx))

        if condition is None:
            raise ParseError(f"{join_type} JOIN requires ON")
        if join_type not in ("INNER", "LEFT"):
            raise ParseError(f"unsupported join type {join_type}")

        est_left, est_right = estimates
        if join_type == "INNER" and _COST_MODEL.prefer_nested_loop(est_left, est_right):
            # Tiny product: one vectorised cross-filter beats building a
            # hash table. Candidate pairs come out in the same
            # (left, right) lexicographic order as the equi paths.
            return self._nested_join(
                left, right, condition, combined_scope, join_type
            )

        left_keys, right_keys, residual = self._split_equi(
            condition, left.scope, right.scope
        )
        if not left_keys:
            return self._nested_join(
                left, right, condition, combined_scope, join_type
            )

        left_key_cols = [fn(left.columns, left.length) for fn in left_keys]
        right_key_cols = [fn(right.columns, right.length) for fn in right_keys]
        outer = join_type == "LEFT"

        # Phase 1: matching candidate pairs only (no padding yet).
        fast = _numeric_equi_pairs(left_key_cols, right_key_cols)
        if fast is not None:
            left_indexes, right_indexes = fast
        elif join_type == "INNER" and _COST_MODEL.prefer_build_left(
            est_left, est_right
        ):
            # Build on the (estimated smaller) left input, probe with the
            # right, then lexsort the pairs back into the (left, right)
            # order the build-right path produces — byte-identical output.
            build_l: dict[tuple, list[int]] = {}
            left_tuples = _key_tuples(left_key_cols, left.length)
            for index, key in enumerate(left_tuples):
                if key is None:
                    continue
                build_l.setdefault(key, []).append(index)
            right_tuples = _key_tuples(right_key_cols, right.length)
            left_idx: list[int] = []
            right_idx: list[int] = []
            for index, key in enumerate(right_tuples):
                matches = build_l.get(key) if key is not None else None
                if matches:
                    for match in matches:
                        left_idx.append(match)
                        right_idx.append(index)
            left_indexes = np.array(left_idx, dtype=np.int64)
            right_indexes = np.array(right_idx, dtype=np.int64)
            if len(left_indexes):
                order = np.lexsort((right_indexes, left_indexes))
                left_indexes = left_indexes[order]
                right_indexes = right_indexes[order]
        else:
            build: dict[tuple, list[int]] = {}
            right_tuples = _key_tuples(right_key_cols, right.length)
            for index, key in enumerate(right_tuples):
                if key is None:
                    continue
                build.setdefault(key, []).append(index)
            left_tuples = _key_tuples(left_key_cols, left.length)
            left_idx = []
            right_idx = []
            for index, key in enumerate(left_tuples):
                matches = build.get(key) if key is not None else None
                if matches:
                    for match in matches:
                        left_idx.append(index)
                        right_idx.append(match)
            left_indexes = np.array(left_idx, dtype=np.int64)
            right_indexes = np.array(right_idx, dtype=np.int64)
        columns = left.gather(left_indexes) + (
            right.gather(right_indexes)
            if right.length
            else _all_null_columns(right, len(right_indexes))
        )
        table = VTable(combined_scope, columns, len(left_indexes))

        # Phase 2: the residual is part of the join condition, so it
        # filters candidate pairs *before* outer padding is decided.
        if residual is not None and table.length:
            result = residual(table.columns, table.length)
            mask = result.values.astype(bool)
            if result.mask is not None:
                mask &= ~result.mask
            left_indexes = left_indexes[mask]
            table = table.filter(mask)

        if not outer:
            return table

        # Phase 3: null-extend left rows with no surviving match.
        matched_left = np.zeros(left.length, dtype=bool)
        if len(left_indexes):
            matched_left[left_indexes] = True
        missing = np.where(~matched_left)[0]
        if not len(missing):
            return table
        pad_cols = left.gather(missing) + _all_null_columns(right, len(missing))
        merged = [
            _concat_columns(a, b) for a, b in zip(table.columns, pad_cols)
        ]
        return VTable(combined_scope, merged, table.length + len(missing))

    def _split_equi(
        self,
        condition: ast.Expression,
        left_scope: Scope,
        right_scope: Scope,
    ):
        left_keys: list[Callable] = []
        right_keys: list[Callable] = []
        residual_parts: list[ast.Expression] = []
        for conjunct in split_conjuncts(condition):
            if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
                sides = (conjunct.left, conjunct.right)
                if references_only(sides[0], left_scope) and references_only(
                    sides[1], right_scope
                ):
                    left_keys.append(compile_vector(sides[0], left_scope, self._params))
                    right_keys.append(
                        compile_vector(sides[1], right_scope, self._params)
                    )
                    continue
                if references_only(sides[1], left_scope) and references_only(
                    sides[0], right_scope
                ):
                    left_keys.append(compile_vector(sides[1], left_scope, self._params))
                    right_keys.append(
                        compile_vector(sides[0], right_scope, self._params)
                    )
                    continue
            residual_parts.append(conjunct)
        residual = None
        if residual_parts:
            combined = Scope(left_scope.entries + right_scope.entries)
            residual = compile_vector(
                _and_all(residual_parts),
                combined,
                self._params,
                self._resolver(combined),
            )
        return left_keys, right_keys, residual

    def _nested_join(
        self,
        left: VTable,
        right: VTable,
        condition: ast.Expression,
        combined_scope: Scope,
        join_type: str,
    ) -> VTable:
        """Non-equi join: evaluate the predicate over the cross product."""
        left_idx = np.repeat(np.arange(left.length), right.length)
        right_idx = np.tile(np.arange(right.length), left.length)
        columns = left.gather(left_idx) + right.gather(right_idx)
        cross = VTable(combined_scope, columns, len(left_idx))
        predicate = compile_vector(
            condition, combined_scope, self._params, self._resolver(combined_scope)
        )
        result = predicate(cross.columns, cross.length)
        mask = result.values.astype(bool)
        if result.mask is not None:
            mask &= ~result.mask
        if join_type == "LEFT":
            matched_left = np.zeros(left.length, dtype=bool)
            if cross.length:
                np.logical_or.at(matched_left, left_idx[mask], True)
            inner = cross.filter(mask)
            missing = np.where(~matched_left)[0]
            if len(missing):
                pad_cols = left.gather(missing) + _all_null_columns(
                    right, len(missing)
                )
                merged = [
                    _concat_columns(a, b)
                    for a, b in zip(inner.columns, pad_cols)
                ]
                return VTable(combined_scope, merged, inner.length + len(missing))
            return inner
        return cross.filter(mask)

    # -- aggregation -----------------------------------------------------------------------

    def _aggregate(
        self,
        node: logical.Aggregate,
        order_by: Sequence[ast.OrderItem],
        table: VTable,
    ) -> tuple[list[str], list[tuple]]:
        scope = table.scope
        group_canon = [canonicalize(g, scope) for g in node.group_by]
        aggregates: list[ast.FunctionCall] = []

        def rewrite(expr: ast.Expression) -> ast.Expression:
            canon = None
            try:
                canon = canonicalize(expr, scope)
            except ParseError:
                pass
            if canon is not None:
                for index, group_expr in enumerate(group_canon):
                    if canon == group_expr:
                        return ast.ColumnRef(name=f"__G{index}")
            if isinstance(expr, ast.FunctionCall) and expr.is_aggregate:
                key = _aggregate_key(expr, scope)
                for index, existing in enumerate(aggregates):
                    if _aggregate_key(existing, scope) == key:
                        return ast.ColumnRef(name=f"__A{index}")
                aggregates.append(expr)
                return ast.ColumnRef(name=f"__A{len(aggregates) - 1}")
            return map_children(expr, rewrite)

        select_rewritten: list[tuple[ast.Expression, Optional[str]]] = []
        for item in node.select_items:
            if isinstance(item.expression, ast.Star):
                raise ParseError("'*' cannot be combined with GROUP BY")
            select_rewritten.append((rewrite(item.expression), item.alias))
        having_rewritten = (
            rewrite(node.having) if node.having is not None else None
        )
        alias_map = {
            alias: expr for expr, alias in select_rewritten if alias is not None
        }
        order_rewritten: list[ast.OrderItem] = []
        for order in order_by:
            expr = order.expression
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in alias_map
            ):
                new_expr = alias_map[expr.name]
            elif isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                new_expr = select_rewritten[
                    resolve_order_position(expr.value, len(select_rewritten))
                ][0]
            else:
                new_expr = rewrite(expr)
            order_rewritten.append(
                ast.OrderItem(expression=new_expr, ascending=order.ascending)
            )

        # Group keys.
        key_columns = [
            compile_vector(g, scope, self._params, self._resolver(scope))(
                table.columns, table.length
            )
            for g in node.group_by
        ]
        inverse, group_count, key_rows = _group_inverse(key_columns, table.length)
        if group_count == 0 and not node.group_by:
            group_count = 1
            inverse = np.zeros(0, dtype=np.int64)
            key_rows = [()]

        # Aggregates.
        agg_columns: list[VColumn] = []
        for call in aggregates:
            agg_columns.append(
                self._compute_aggregate(call, table, inverse, group_count)
            )

        post_entries = [(None, f"__G{i}") for i in range(len(node.group_by))]
        post_entries += [(None, f"__A{j}") for j in range(len(aggregates))]
        post_scope = Scope(post_entries)
        group_out_columns = [
            VColumn.from_objects([key_rows[g][i] for g in range(group_count)])
            for i in range(len(node.group_by))
        ]
        post_table = VTable(
            post_scope, group_out_columns + agg_columns, group_count
        )

        if having_rewritten is not None:
            predicate = compile_vector(
                having_rewritten, post_scope, self._params, self._resolver(post_scope)
            )
            result = predicate(post_table.columns, post_table.length)
            mask = result.values.astype(bool)
            if result.mask is not None:
                mask &= ~result.mask
            post_table = post_table.filter(mask)

        columns = [
            alias or expression_label(node.select_items[i].expression, i)
            for i, (_, alias) in enumerate(select_rewritten)
        ]
        projected = [
            compile_vector(expr, post_scope, self._params, self._resolver(post_scope))(
                post_table.columns, post_table.length
            )
            for expr, _ in select_rewritten
        ]
        rows = VTable(Scope([]), projected, post_table.length).to_rows()
        if not projected:
            rows = [()] * post_table.length

        if order_rewritten:
            key_fns = [
                compile_vector(
                    o.expression, post_scope, self._params, self._resolver(post_scope)
                )
                for o in order_rewritten
            ]
            key_cols = [
                fn(post_table.columns, post_table.length) for fn in key_fns
            ]
            key_lists = [col.to_objects() for col in key_cols]
            keys = [
                tuple(key_lists[k][i] for k in range(len(key_lists)))
                for i in range(post_table.length)
            ]
            rows = sort_rows_with_keys(
                rows, keys, [o.ascending for o in order_rewritten]
            )
        return columns, rows

    def _compute_aggregate(
        self,
        call: ast.FunctionCall,
        table: VTable,
        inverse: np.ndarray,
        group_count: int,
    ) -> VColumn:
        name = call.name
        if name == "COUNT" and call.args and isinstance(call.args[0], ast.Star):
            counts = np.bincount(inverse, minlength=group_count)
            return VColumn(values=counts.astype(np.int64))
        if not call.args:
            raise ParseError(f"aggregate {name} requires an argument")
        arg = compile_vector(
            call.args[0], table.scope, self._params, self._resolver(table.scope)
        )(table.columns, table.length)
        live = ~arg.null_mask()
        if name == "COUNT":
            if call.distinct:
                return _count_distinct(arg, inverse, group_count, live)
            counts = np.bincount(
                inverse[live], minlength=group_count
            )
            return VColumn(values=counts.astype(np.int64))
        if arg.values.dtype.kind not in "ifb":
            return _object_aggregate(name, arg, inverse, group_count, live)
        values = arg.values.astype(np.float64)
        counts = np.bincount(inverse[live], minlength=group_count)
        empty = counts == 0
        if name == "SUM":
            sums = np.bincount(
                inverse[live], weights=values[live], minlength=group_count
            )
            if arg.values.dtype.kind in "ib":
                out = sums.astype(np.int64)
            else:
                out = sums
            return VColumn(
                values=out, mask=empty.copy() if empty.any() else None
            )
        if name == "AVG":
            sums = np.bincount(
                inverse[live], weights=values[live], minlength=group_count
            )
            with np.errstate(invalid="ignore", divide="ignore"):
                avgs = sums / np.where(empty, 1, counts)
            return VColumn(
                values=avgs, mask=empty.copy() if empty.any() else None
            )
        if name in ("MIN", "MAX"):
            fill = math.inf if name == "MIN" else -math.inf
            out = np.full(group_count, fill, dtype=np.float64)
            ufunc = np.minimum if name == "MIN" else np.maximum
            ufunc.at(out, inverse[live], values[live])
            result = out
            if arg.values.dtype.kind in "ib":
                result = np.where(empty, 0, out).astype(np.int64)
                return VColumn(
                    values=result, mask=empty.copy() if empty.any() else None
                )
            return VColumn(
                values=np.where(empty, np.nan, out),
                mask=empty.copy() if empty.any() else None,
            )
        if name in ("STDDEV", "VARIANCE"):
            sums = np.bincount(
                inverse[live], weights=values[live], minlength=group_count
            )
            squares = np.bincount(
                inverse[live],
                weights=values[live] * values[live],
                minlength=group_count,
            )
            safe_counts = np.where(empty, 1, counts)
            means = sums / safe_counts
            variance = np.maximum(0.0, squares / safe_counts - means * means)
            out = np.sqrt(variance) if name == "STDDEV" else variance
            return VColumn(
                values=out, mask=empty.copy() if empty.any() else None
            )
        raise ParseError(f"unknown aggregate {name}")

    # -- projection --------------------------------------------------------------------------

    def _project(
        self,
        select_items: Sequence[ast.SelectItem],
        order_by: Sequence[ast.OrderItem],
        table: VTable,
    ) -> tuple[list[str], list[tuple]]:
        columns: list[str] = []
        out_cols: list[VColumn] = []
        position = 0
        for item in select_items:
            if isinstance(item.expression, ast.Star):
                for index in table.scope.star_indexes(item.expression.table):
                    columns.append(table.scope.entries[index][1])
                    out_cols.append(table.columns[index])
                    position += 1
                continue
            fn = compile_vector(
                item.expression, table.scope, self._params, self._resolver(table.scope)
            )
            out_cols.append(fn(table.columns, table.length))
            columns.append(item.alias or expression_label(item.expression, position))
            position += 1

        if not order_by:
            return columns, VTable(Scope([]), out_cols, table.length).to_rows()

        alias_map = {
            item.alias: item.expression
            for item in select_items
            if item.alias is not None
        }
        # Keys are either projected output columns (1-based positions)
        # or expressions over the input scope (incl. alias fallback).
        key_cols: list[VColumn] = []
        for order in order_by:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                key_cols.append(
                    out_cols[resolve_order_position(expr.value, len(out_cols))]
                )
                continue
            if (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name in alias_map
                and not _resolvable(expr, table.scope)
            ):
                expr = alias_map[expr.name]
            fn = compile_vector(
                expr, table.scope, self._params, self._resolver(table.scope)
            )
            key_cols.append(fn(table.columns, table.length))
        rows = VTable(Scope([]), out_cols, table.length).to_rows()
        key_lists = [col.to_objects() for col in key_cols]
        keys = [
            tuple(key_lists[k][i] for k in range(len(key_lists)))
            for i in range(table.length)
        ]
        rows = sort_rows_with_keys(
            rows, keys, [o.ascending for o in order_by]
        )
        return columns, rows


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _contains_subquery(expr: ast.Expression) -> bool:
    return any(
        isinstance(node, ast.SubqueryExpression) for node in expr.walk()
    )


def _and_all(conjuncts: Sequence[ast.Expression]) -> ast.Expression:
    combined = conjuncts[0]
    for part in conjuncts[1:]:
        combined = ast.BinaryOp(op="AND", left=combined, right=part)
    return combined


def _peel_filters(
    node: logical.PlanNode,
) -> tuple[Optional[logical.Scan], list[ast.Expression]]:
    """Decompose Filter*(Scan) chains; (None, []) for anything else."""
    predicates: list[ast.Expression] = []
    while isinstance(node, logical.Filter):
        predicates.append(node.predicate)
        node = node.child
    if isinstance(node, logical.Scan):
        return node, predicates
    return None, []


def _pruned_schema_columns(
    scan: logical.Scan, schema: TableSchema
) -> list[Column]:
    """The schema columns this scan materialises, in schema order."""
    if scan.columns is None:
        return list(schema.columns)
    wanted = set(scan.columns)
    cols = [c for c in schema.columns if c.name in wanted]
    if not cols:
        # Nothing referenced (e.g. COUNT(*)-only): keep one column so the
        # scan still carries a row count.
        cols = [schema.columns[0]]
    return cols


def _merge_partition_columns(
    parts: list[list[VColumn]], width: int
) -> list[VColumn]:
    """Concatenate per-partition filtered columns in partition order."""
    out: list[VColumn] = []
    for i in range(width):
        values = np.concatenate([part[i].values for part in parts])
        masks = [part[i].mask for part in parts]
        if any(mask is not None for mask in masks):
            merged = np.concatenate(
                [
                    mask
                    if mask is not None
                    else np.zeros(len(part[i].values), dtype=bool)
                    for mask, part in zip(masks, parts)
                ]
            )
            mask = merged if merged.any() else None
        else:
            mask = None
        out.append(VColumn(values=values, mask=mask))
    return out


def _partition_partial(
    spec: tuple[str, Optional[int]], columns: list[VColumn], length: int
):
    """One partition's contribution to a mergeable aggregate."""
    kind, index = spec
    if kind == "count_star":
        return length
    col = columns[index]
    live = ~col.null_mask()
    if kind == "count":
        return int(np.count_nonzero(live))
    if kind == "count_distinct":
        values = col.to_objects()
        return {values[i] for i in np.where(live)[0]}
    # MIN / MAX.
    if col.values.dtype.kind in "ifb":
        # Same float64 domain as _compute_aggregate, so the partial
        # extremum is bitwise the value the sequential kernel would pick.
        values = col.values.astype(np.float64)[live]
        if not len(values):
            return None
        return float(values.min() if kind == "min" else values.max())
    best = None
    values = col.to_objects()
    for i in np.where(live)[0]:
        value = values[i]
        if best is None or (value < best if kind == "min" else value > best):
            best = value
    return best


def _merge_partials(
    spec: tuple[str, Optional[int]],
    partials: list,
    dtype_kind: Optional[str],
):
    """Combine per-partition partials into the final aggregate value."""
    kind, __ = spec
    if kind in ("count_star", "count"):
        return int(sum(partials))
    if kind == "count_distinct":
        return len(set().union(*partials))
    merged = None
    for partial in partials:
        if partial is None:
            continue
        if merged is None:
            merged = partial
        elif dtype_kind in "ifb":
            # np.minimum/np.maximum propagate NaN exactly like the
            # sequential ufunc.at accumulation does.
            combine = np.minimum if kind == "min" else np.maximum
            merged = float(combine(merged, partial))
        elif (partial < merged) if kind == "min" else (partial > merged):
            merged = partial
    if merged is None:
        return None
    if dtype_kind in ("i", "b"):
        # Mirrors the sequential .astype(int64) truncation.
        return int(merged)
    if dtype_kind == "f":
        return float(merged)
    return merged


def _resolvable(expr: ast.Expression, scope: Scope) -> bool:
    try:
        canonicalize(expr, scope)
        return True
    except ParseError:
        return False


def _aggregate_key(call: ast.FunctionCall, scope: Scope):
    parts: list[object] = [call.name, call.distinct]
    for arg in call.args:
        if isinstance(arg, ast.Star):
            parts.append("*")
        else:
            parts.append(canonicalize(arg, scope))
    return tuple(parts)


def _numeric_equi_pairs(left_keys: list[VColumn], right_keys: list[VColumn]):
    """Vectorised sort-merge pairing for a single numeric, NULL-free key.

    Returns (left_indexes, right_indexes) of all matching pairs, or
    ``None`` when the keys do not qualify for the fast path.
    """
    if len(left_keys) != 1 or len(right_keys) != 1:
        return None
    left = left_keys[0]
    right = right_keys[0]
    if left.mask is not None or right.mask is not None:
        return None
    if left.values.dtype.kind not in "if" or right.values.dtype.kind not in "if":
        return None
    order = np.argsort(right.values, kind="stable")
    sorted_right = right.values[order]
    lo = np.searchsorted(sorted_right, left.values, side="left")
    hi = np.searchsorted(sorted_right, left.values, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    left_indexes = np.repeat(np.arange(len(left.values)), counts)
    starts = np.repeat(lo, counts)
    # Offset 0..count-1 within each left row's match run.
    run_starts = np.cumsum(counts) - counts
    offsets = np.arange(total) - np.repeat(run_starts, counts)
    right_indexes = order[starts + offsets]
    return left_indexes.astype(np.int64), right_indexes.astype(np.int64)


def _key_tuples(key_columns: list[VColumn], length: int):
    """Per-row join keys; ``None`` marks a NULL key (never matches)."""
    object_lists = [col.to_objects() for col in key_columns]
    out = []
    for i in range(length):
        key = tuple(values[i] for values in object_lists)
        out.append(None if any(part is None for part in key) else key)
    return out


def _group_inverse(
    key_columns: list[VColumn], length: int
) -> tuple[np.ndarray, int, list[tuple]]:
    """Map rows to dense group ids; returns (inverse, n_groups, keys)."""
    if not key_columns:
        if length == 0:
            return np.zeros(0, dtype=np.int64), 0, []
        return np.zeros(length, dtype=np.int64), 1, [()]
    numeric = all(
        col.values.dtype.kind in "ifb" and col.mask is None
        for col in key_columns
    )
    if numeric and length:
        stacked = np.stack([col.values.astype(np.float64) for col in key_columns])
        uniques, inverse = np.unique(stacked, axis=1, return_inverse=True)
        keys = [
            tuple(
                _restore_scalar(key_columns[k].values.dtype, uniques[k, g])
                for k in range(len(key_columns))
            )
            for g in range(uniques.shape[1])
        ]
        return inverse.astype(np.int64), uniques.shape[1], keys
    # Generic path via Python tuples (handles strings and NULL keys;
    # SQL groups NULLs together).
    object_lists = [col.to_objects() for col in key_columns]
    mapping: dict[tuple, int] = {}
    inverse = np.empty(length, dtype=np.int64)
    keys: list[tuple] = []
    for i in range(length):
        key = tuple(values[i] for values in object_lists)
        group = mapping.get(key)
        if group is None:
            group = len(keys)
            mapping[key] = group
            keys.append(key)
        inverse[i] = group
    return inverse, len(keys), keys


def _restore_scalar(dtype: np.dtype, value: float):
    if dtype.kind in "i":
        return int(value)
    if dtype.kind == "b":
        return bool(value)
    return float(value)


def _count_distinct(
    arg: VColumn, inverse: np.ndarray, group_count: int, live: np.ndarray
) -> VColumn:
    sets: list[set] = [set() for _ in range(group_count)]
    values = arg.to_objects()
    for i in np.where(live)[0]:
        sets[inverse[i]].add(values[i])
    return VColumn(values=np.array([len(s) for s in sets], dtype=np.int64))


def _object_aggregate(
    name: str,
    arg: VColumn,
    inverse: np.ndarray,
    group_count: int,
    live: np.ndarray,
) -> VColumn:
    """Aggregates over non-packed columns (strings, dates, decimals).

    MIN/MAX/SUM operate in the value domain; AVG/STDDEV/VARIANCE convert
    to float (matching the DB2 engine's accumulator semantics).
    """
    values = arg.to_objects()
    if name in ("AVG", "STDDEV", "VARIANCE"):
        counts = [0] * group_count
        totals = [0.0] * group_count
        squares = [0.0] * group_count
        for i in np.where(live)[0]:
            group = int(inverse[i])
            value = float(values[i])
            counts[group] += 1
            totals[group] += value
            squares[group] += value * value
        out: list[object] = []
        for group in range(group_count):
            if not counts[group]:
                out.append(None)
                continue
            mean = totals[group] / counts[group]
            if name == "AVG":
                out.append(mean)
                continue
            variance = max(0.0, squares[group] / counts[group] - mean * mean)
            out.append(math.sqrt(variance) if name == "STDDEV" else variance)
        return VColumn.from_objects(out)
    state: list[object] = [None] * group_count
    for i in np.where(live)[0]:
        group = int(inverse[i])
        value = values[i]
        current = state[group]
        if name == "MIN":
            state[group] = value if current is None or value < current else current
        elif name == "MAX":
            state[group] = value if current is None or value > current else current
        elif name == "SUM":
            state[group] = value if current is None else current + value
        else:
            raise ParseError(f"aggregate {name} not supported for this type")
    return VColumn.from_objects(state)


def _all_null_columns(table: VTable, count: int) -> list[VColumn]:
    """Columns of ``count`` all-NULL rows matching ``table``'s layout."""
    return [
        VColumn(
            values=np.zeros(count, dtype=col.values.dtype)
            if col.values.dtype.kind in "ifb"
            else np.empty(count, dtype=object),
            mask=np.ones(count, dtype=bool),
        )
        for col in table.columns
    ]


def _concat_columns(a: VColumn, b: VColumn) -> VColumn:
    if a.values.dtype == b.values.dtype:
        values = np.concatenate([a.values, b.values])
    else:
        values = np.concatenate([a.values.astype(object), b.values.astype(object)])
    merged = np.concatenate([a.null_mask(), b.null_mask()])
    return VColumn(values=values, mask=merged if merged.any() else None)

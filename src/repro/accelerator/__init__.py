"""The simulated accelerator (Netezza-style columnar OLAP engine).

Columnar storage with data slices and zone maps, vectorised query
execution over numpy, epoch-based MVCC snapshot isolation, and — the
paper's extension — transaction-scoped delta buffers that make a DB2
transaction's own uncommitted AOT changes visible to its queries.
"""

from repro.accelerator.engine import AcceleratorEngine
from repro.accelerator.deltas import DeltaBuffer
from repro.accelerator.vtable import VTable, columns_from_rows

__all__ = ["AcceleratorEngine", "DeltaBuffer", "VTable", "columns_from_rows"]

"""Interconnect cost model between DB2 and the accelerator.

The real deployment moves data over a private network between System z
and the appliance; what matters for the paper's experiments is *how many
bytes* cross and the simulated transfer time, not socket mechanics. Every
transfer in the federation is routed through this class so experiments
can snapshot/diff the counters around any operation.
"""

from __future__ import annotations

from repro.metrics.counters import MovementStats

__all__ = ["Interconnect"]


class Interconnect:
    """Byte/message/latency accounting for the DB2 ↔ accelerator link."""

    def __init__(
        self,
        bandwidth_bytes_per_second: float = 1e9,
        message_latency_seconds: float = 0.0005,
    ) -> None:
        self.bandwidth = bandwidth_bytes_per_second
        self.latency = message_latency_seconds
        self.bytes_to_accelerator = 0
        self.bytes_from_accelerator = 0
        self.messages = 0
        self.simulated_seconds = 0.0

    def send_to_accelerator(self, nbytes: int, messages: int = 1) -> None:
        """Account for data shipped DB2 → accelerator."""
        self.bytes_to_accelerator += int(nbytes)
        self._account(nbytes, messages)

    def send_to_db2(self, nbytes: int, messages: int = 1) -> None:
        """Account for data shipped accelerator → DB2 (query results,
        legacy stage materialisation)."""
        self.bytes_from_accelerator += int(nbytes)
        self._account(nbytes, messages)

    def _account(self, nbytes: int, messages: int) -> None:
        self.messages += messages
        self.simulated_seconds += messages * self.latency
        self.simulated_seconds += nbytes / self.bandwidth

    def snapshot(self) -> MovementStats:
        return MovementStats(
            bytes_to_accelerator=self.bytes_to_accelerator,
            bytes_from_accelerator=self.bytes_from_accelerator,
            messages=self.messages,
            simulated_seconds=self.simulated_seconds,
        )

    def since(self, snapshot: MovementStats) -> MovementStats:
        return self.snapshot() - snapshot

    def reset(self) -> None:
        self.bytes_to_accelerator = 0
        self.bytes_from_accelerator = 0
        self.messages = 0
        self.simulated_seconds = 0.0

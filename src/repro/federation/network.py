"""Interconnect cost model between DB2 and the accelerator.

The real deployment moves data over a private network between System z
and the appliance; what matters for the paper's experiments is *how many
bytes* cross and the simulated transfer time, not socket mechanics. Every
transfer in the federation is routed through this class so experiments
can snapshot/diff the counters around any operation.

The link is also the federation's first failure domain: when a
:class:`~repro.federation.faults.FaultInjector` is attached, every send
consults it first — an ``error``/``crash`` rule aborts the transfer
(nothing is accounted, mirroring a dropped frame), and a ``latency`` rule
inflates the simulated transfer time of an otherwise successful send.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.federation.faults import FaultInjector
from repro.metrics.counters import MovementStats
from repro.obs.trace import NULL_SPAN, Tracer

__all__ = ["Interconnect"]

#: Fault-injection site name for both link directions.
LINK_SITE = "interconnect"


class Interconnect:
    """Byte/message/latency accounting for the DB2 ↔ accelerator link."""

    def __init__(
        self,
        bandwidth_bytes_per_second: float = 1e9,
        message_latency_seconds: float = 0.0005,
        fault_injector: Optional[FaultInjector] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.bandwidth = bandwidth_bytes_per_second
        self.latency = message_latency_seconds
        self.faults = fault_injector
        #: Every send becomes an ``interconnect.send`` span (direction,
        #: bytes, messages) under the current statement trace.
        self.tracer = tracer
        self.bytes_to_accelerator = 0
        self.bytes_from_accelerator = 0
        self.messages = 0
        self.simulated_seconds = 0.0
        #: Injected latency-seconds and dropped sends observed (lifetime;
        #: not part of ``snapshot()`` because a failed send moved nothing).
        self.injected_latency_seconds = 0.0
        self.sends_failed = 0
        # Parallel scan workers and concurrent sessions account transfers
        # from many threads; the ``+=`` accumulation and snapshot/diff
        # reads need one lock so movement totals stay exact.
        self._lock = threading.Lock()

    def send_to_accelerator(self, nbytes: int, messages: int = 1) -> None:
        """Account for data shipped DB2 → accelerator."""
        with self._trace_send("to_accelerator", nbytes, messages):
            extra = self._check_fault()
            with self._lock:
                self.bytes_to_accelerator += int(nbytes)
                self._account(nbytes, messages, extra)

    def send_to_db2(self, nbytes: int, messages: int = 1) -> None:
        """Account for data shipped accelerator → DB2 (query results,
        legacy stage materialisation)."""
        with self._trace_send("to_db2", nbytes, messages):
            extra = self._check_fault()
            with self._lock:
                self.bytes_from_accelerator += int(nbytes)
                self._account(nbytes, messages, extra)

    def _trace_send(self, direction: str, nbytes: int, messages: int):
        """Span for one transfer; the shared no-op when tracing is off.

        An injected fault raising inside the span marks it ``ERROR``
        with the fault's text — that is the trace-level fault-injection
        annotation the monitoring views expose.
        """
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            return NULL_SPAN
        return tracer.span(
            "interconnect.send",
            direction=direction,
            bytes=int(nbytes),
            messages=messages,
        )

    def _check_fault(self) -> float:
        """Consult the injector; a raised fault counts as a failed send."""
        if self.faults is None:
            return 0.0
        try:
            return self.faults.check(LINK_SITE)
        except Exception:
            self.sends_failed += 1
            raise

    def _account(self, nbytes: int, messages: int, extra_latency: float) -> None:
        # Caller holds ``self._lock``.
        self.messages += messages
        self.simulated_seconds += messages * self.latency
        self.simulated_seconds += nbytes / self.bandwidth
        if extra_latency:
            self.simulated_seconds += extra_latency
            self.injected_latency_seconds += extra_latency

    def snapshot(self) -> MovementStats:
        with self._lock:
            return MovementStats(
                bytes_to_accelerator=self.bytes_to_accelerator,
                bytes_from_accelerator=self.bytes_from_accelerator,
                messages=self.messages,
                simulated_seconds=self.simulated_seconds,
            )

    def since(self, snapshot: MovementStats) -> MovementStats:
        return self.snapshot() - snapshot

    def reset(self) -> None:
        with self._lock:
            self.bytes_to_accelerator = 0
            self.bytes_from_accelerator = 0
            self.messages = 0
            self.simulated_seconds = 0.0
            self.injected_latency_seconds = 0.0
            self.sends_failed = 0

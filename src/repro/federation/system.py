"""The federated system facade: one SQL interface over both engines.

:class:`AcceleratedDatabase` owns the shared catalog, the DB2 engine, the
accelerator engine, the interconnect model, the replication service, the
query router, and the analytics procedure registry. Applications interact
through :class:`Connection` objects whose ``execute()`` accepts plain SQL
— routing, privilege checks, AOT delta buffering, and movement accounting
all happen behind that call, which is the transparency the paper insists
on ("completely transparent for user applications").
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import Optional, Sequence, Union

from repro.accelerator import AcceleratorEngine, DeltaBuffer
from repro.catalog import (
    Catalog,
    Column,
    Privilege,
    TableDescriptor,
    TableLocation,
    TableSchema,
    User,
)
from repro.analytics.framework import ProcedureRegistry
from repro.analytics.model_store import ModelStore
from repro.db2 import Db2Engine
from repro.db2.transaction import Transaction
from repro.errors import (
    AcceleratorCrashError,
    AcceleratorUnavailableError,
    AnalyticsError,
    AuthorizationError,
    DuplicateObjectError,
    LinkError,
    ShardUnavailableError,
    SqlError,
    StatementCancelledError,
    StatementTimeoutError,
    TransactionStateError,
    UnknownObjectError,
)
from repro.federation.faults import FaultInjector
from repro.federation.health import HealthMonitor
from repro.federation.network import Interconnect
from repro.federation.replication import ReplicationService
from repro.federation.router import (
    AccelerationMode,
    CachedPlan,
    PlanCache,
    QueryRouter,
)
from repro.federation.views import expand_views
from repro.metrics.counters import MovementStats, estimate_rows_bytes
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import execute_monitoring_query, monitoring_tables
from repro.recovery.manager import RecoveryManager
from repro.obs.profile import QueryProfiler, estimate_plan, plan_tree_lines
from repro.obs.trace import NULL_SPAN, Tracer
from repro.result import Result
from repro.sql import ast, parse_statement
from repro.sql.logical import plan_statement
from repro.sql.stats import (
    DEFAULT_HISTOGRAM_BINS,
    CostModel,
    StatisticsManager,
)
from repro.wlm import AdmissionTicket, WorkBudget, WorkloadManager, active_budget

__all__ = ["AcceleratedDatabase", "Connection"]

#: Fixed per-statement protocol overhead on the interconnect (bytes).
STATEMENT_OVERHEAD_BYTES = 256


def _render_plan_value(value) -> str:
    if isinstance(value, dict):
        return "; ".join(f"{k}={v}" for k, v in sorted(value.items()))
    return str(value)


def _collect_predict_nodes(stmt) -> list[ast.Predict]:
    """Every PREDICT node in a select, including subqueries and unions."""
    out: list[ast.Predict] = []
    _walk_predict_statement(stmt, out)
    return out


def _walk_predict_statement(stmt, out: list) -> None:
    if isinstance(stmt, ast.SetOperation):
        _walk_predict_statement(stmt.left, out)
        _walk_predict_statement(stmt.right, out)
        return
    for expr in stmt.iter_expressions():
        for node in expr.walk():
            if isinstance(node, ast.Predict):
                out.append(node)
            elif isinstance(node, ast.SubqueryExpression):
                _walk_predict_statement(node.query, out)
    _walk_predict_from(stmt.from_item, out)


def _walk_predict_from(item, out: list) -> None:
    if isinstance(item, ast.SubquerySource):
        _walk_predict_statement(item.query, out)
    elif isinstance(item, ast.Join):
        _walk_predict_from(item.left, out)
        _walk_predict_from(item.right, out)


@dataclass(frozen=True)
class StatementRecord:
    """One entry of the system's statement history (query monitoring)."""

    user: str
    statement_type: str
    engine: str
    elapsed_seconds: float
    rowcount: int
    #: Routing reason for queries — ``failback: ...`` marks statements
    #: that re-executed on DB2 because the accelerator was unavailable.
    reason: str = ""
    #: Links the record into the tracer ("" while tracing is disabled).
    trace_id: str = ""


class AcceleratedDatabase:
    """DB2 + accelerator behind a single connect/execute API."""

    def __init__(
        self,
        slice_count: int = 4,
        chunk_rows: int = 65536,
        auto_replicate: bool = True,
        offload_row_threshold: int = 2000,
        bandwidth_bytes_per_second: float = 1e9,
        message_latency_seconds: float = 0.0005,
        replication_batch_size: int = 1000,
        fault_seed: int = 0,
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.1,
        tracing_enabled: bool = True,
        trace_retention: int = 256,
        profiling_enabled: bool = True,
        profile_retention: int = 128,
        slow_query_threshold_seconds: float = 1.0,
        slow_query_capacity: int = 64,
        parallel_workers: int = 4,
        shards: Optional[int] = None,
        plan_cache_capacity: int = 512,
        wlm_enabled: bool = False,
        wlm_db2_slots: int = 8,
        wlm_accelerator_slots: int = 4,
        wlm_max_queue_seconds: float = 5.0,
        checkpoint_dir: Optional[str] = None,
        checkpoint_retain: int = 3,
    ) -> None:
        self.catalog = Catalog()
        self.db2 = Db2Engine(self.catalog)
        #: Statement tracer — every component below reports spans into it.
        self.tracer = Tracer(
            enabled=tracing_enabled, max_traces=trace_retention
        )
        #: Shared metrics registry (owned instruments + snapshot sources).
        self.metrics = MetricsRegistry()
        #: Per-operator execution profiler: EXPLAIN ANALYZE, the
        #: cardinality-feedback store (SYSACCEL.MON_QERROR), and the
        #: slow-query log. EXPLAIN ANALYZE forces a profile for its own
        #: statement even while disabled.
        self.profiler = QueryProfiler(
            enabled=profiling_enabled,
            retention=profile_retention,
            slow_threshold_seconds=slow_query_threshold_seconds,
            slow_capacity=slow_query_capacity,
        )
        #: Deterministic fault injector consulted by the interconnect and
        #: the accelerator engine (see repro.federation.faults).
        self.faults = FaultInjector(seed=fault_seed)
        #: Circuit breaker tracking accelerator availability.
        self.health = HealthMonitor(
            failure_threshold=failure_threshold,
            cooldown_seconds=cooldown_seconds,
        )
        #: How many accelerator shards serve this federation. One (the
        #: default, also the ``SHARDS`` environment override) keeps the
        #: paper's single-appliance deployment bit-for-bit; more builds
        #: an :class:`repro.shard.AcceleratorPool` behind the same
        #: engine interface.
        self.shards = (
            int(os.environ.get("SHARDS", "1"))
            if shards is None
            else int(shards)
        )
        if self.shards > 1:
            from repro.shard import AcceleratorPool

            self.accelerator = AcceleratorPool(
                self.catalog,
                shards=self.shards,
                slice_count=slice_count,
                chunk_rows=chunk_rows,
                fault_injector=self.faults,
                tracer=self.tracer,
                metrics=self.metrics,
                parallel_workers=parallel_workers,
                failure_threshold=failure_threshold,
                cooldown_seconds=cooldown_seconds,
                bandwidth_bytes_per_second=bandwidth_bytes_per_second,
                message_latency_seconds=message_latency_seconds,
            )
        else:
            self.accelerator = AcceleratorEngine(
                self.catalog,
                slice_count=slice_count,
                chunk_rows=chunk_rows,
                fault_injector=self.faults,
                tracer=self.tracer,
                metrics=self.metrics,
                parallel_workers=parallel_workers,
            )
        self.interconnect = Interconnect(
            bandwidth_bytes_per_second=bandwidth_bytes_per_second,
            message_latency_seconds=message_latency_seconds,
            fault_injector=self.faults,
            tracer=self.tracer,
        )
        self.replication = ReplicationService(
            self.db2.change_log,
            self.accelerator,
            self.interconnect,
            self.catalog,
            batch_size=replication_batch_size,
            health=self.health,
            tracer=self.tracer,
            metrics=self.metrics,
            faults=self.faults,
        )
        # The replication cursor is itself a retention guard: a trim may
        # never drop records the single log reader has not consumed.
        # (The recovery manager registers a second guard for the oldest
        # retained checkpoint's watermark.)
        self.db2.change_log.add_retention_guard(
            lambda: self.replication.cursor_lsn
        )
        self.router = QueryRouter(
            self.catalog,
            offload_row_threshold=offload_row_threshold,
            health=self.health,
        )
        #: Statement-plan cache: parsed/prepared SELECTs keyed by
        #: normalised SQL, invalidated by catalog generation bumps.
        self.plan_cache = PlanCache(capacity=plan_cache_capacity)
        #: Workload manager: service classes, per-engine admission gates,
        #: statement budgets, load shedding. Ships disabled (zero-cost
        #: fast path); SYSPROC.ACCEL_SET_WLM enables it at runtime.
        # Load shedding consults per-shard circuits through the pool
        # adapter: one failed shard must not shed statements that the
        # surviving shards can serve, but a pool with no usable shard
        # sheds exactly like a single offline appliance.
        if self.shards > 1:
            from repro.shard import PoolAdmissionHealth

            wlm_health = PoolAdmissionHealth(self.health, self.accelerator)
        else:
            wlm_health = self.health
        self.wlm = WorkloadManager(
            enabled=wlm_enabled,
            health=wlm_health,
            db2_slots=wlm_db2_slots,
            accelerator_slots=wlm_accelerator_slots,
            max_queue_seconds=wlm_max_queue_seconds,
        )
        if self.shards > 1:
            # Losing a shard shrinks the pool's concurrency; the WLM's
            # ACCELERATOR admission gate tracks the live capacity.
            base_slots = max(1, wlm_accelerator_slots)
            total_shards = self.shards

            def _shard_capacity(live: int) -> None:
                self.wlm.resize_gate(
                    "ACCELERATOR",
                    max(1, (base_slots * live) // total_shards),
                )

            self.accelerator.capacity_listener = _shard_capacity
        #: Durable checkpointing + restart resync (DB2-side machinery: it
        #: survives an accelerator crash and drives the rebuild). With no
        #: ``checkpoint_dir`` the checkpoints live in memory — same frame
        #: format, no files.
        self.recovery = RecoveryManager(
            self,
            checkpoint_dir=checkpoint_dir,
            retain=checkpoint_retain,
        )
        #: Per-table/per-column optimizer statistics: seeded from zone
        #: maps at accelerate time, upgraded by RUNSTATS full scans,
        #: maintained incrementally from the replication change feed.
        self.stats = StatisticsManager(row_probe=self._live_row_count)
        #: Cost model shared by engine routing, WLM weighting, and the
        #: executors' join-strategy choice.
        self.cost_model = CostModel()
        # Statistics maintenance hooks. Direct accelerator writes (AOT
        # DML, procedure output) mark the table's statistics dirty; the
        # write listener chains behind the recovery manager's lineage
        # journal, which claimed the slot above. Replicated change
        # batches fold into the statistics incrementally.
        recovery_listener = self.accelerator.write_listener

        def _stats_write_listener(table: str, epoch: int) -> None:
            if recovery_listener is not None:
                recovery_listener(table, epoch)
            self.stats.note_write(table)

        self.accelerator.write_listener = _stats_write_listener
        self.replication.change_listener = self.stats.apply_changes
        #: Queries transparently re-executed on DB2 (ENABLE WITH FAILBACK).
        self.failbacks = 0
        self.procedures = ProcedureRegistry()
        self.models = ModelStore()
        self.auto_replicate = auto_replicate
        #: Ring buffer of recently executed statements (monitoring).
        self.statement_history: deque[StatementRecord] = deque(maxlen=1000)
        self._register_metric_sources()
        # Prefetched so the per-statement path avoids registry lookups.
        self._latency_hist = self.metrics.histogram(
            "statement.latency_seconds"
        )
        self._rows_hist = self.metrics.histogram("statement.rows")
        self._register_builtin_procedures()

    def _register_metric_sources(self) -> None:
        """Expose the pre-existing stats structures through the registry.

        The dataclasses stay the system of record; ``collect()`` merely
        snapshots them under ``interconnect.*`` / ``replication.*`` /
        ``health.*`` / ``accelerator.*`` prefixes.
        """
        self.metrics.register_source(
            "interconnect", lambda: asdict(self.interconnect.snapshot())
        )
        self.metrics.register_source(
            "replication", lambda: asdict(self.replication.stats())
        )
        self.metrics.register_source("health", self._health_metrics)
        self.metrics.register_source("accelerator", self._accelerator_metrics)
        self.metrics.register_source(
            "plan_cache", lambda: self.plan_cache.snapshot()
        )
        self.metrics.register_source("wlm", lambda: self.wlm.snapshot())
        self.metrics.register_source(
            "profiler", lambda: self.profiler.snapshot()
        )
        self.metrics.register_source(
            "recovery", lambda: self.recovery.status()
        )
        self.metrics.register_source("stats", lambda: self.stats.snapshot())

    def _health_metrics(self) -> dict:
        health = self.health
        return {
            "state": health.state.value,
            "consecutive_failures": health.consecutive_failures,
            "failures_total": health.failures_total,
            "successes_total": health.successes_total,
            "times_opened": health.times_opened,
            "times_closed": health.times_closed,
            "probes_attempted": health.probes_attempted,
            "requests_rejected": health.requests_rejected,
        }

    def _accelerator_metrics(self) -> dict:
        accelerator = self.accelerator
        out = {
            "queries_executed": accelerator.queries_executed,
            "rows_scanned": accelerator.rows_scanned,
            "chunks_skipped": accelerator.chunks_skipped,
            "simulated_busy_seconds": accelerator.simulated_busy_seconds,
            "current_epoch": accelerator.current_epoch,
            "parallel_scans": accelerator.parallel_scans,
        }
        pool = self.accelerator_pool
        if pool is not None:
            out["shards"] = pool.shards
            out["live_shards"] = pool.live_shards
            out["critical_path_seconds"] = (
                pool.simulated_critical_path_seconds
            )
            out["shard_scans_pruned"] = pool.shard_scans_pruned
            out["shard_scans_total"] = pool.shard_scans_total
        return out

    @property
    def accelerator_pool(self):
        """The sharded pool, or None for a single-accelerator system."""
        from repro.shard.pool import AcceleratorPool

        if isinstance(self.accelerator, AcceleratorPool):
            return self.accelerator
        return None

    def _register_builtin_procedures(self) -> None:
        # Imported lazily to avoid a package cycle at import time.
        from repro.analytics.builtins import register_all
        from repro.federation.admin import register_admin_procedures

        register_all(self.procedures)
        register_admin_procedures(self.procedures)

    # -- sessions -----------------------------------------------------------------

    def _live_row_count(self, name: str) -> Optional[int]:
        """Current row count of a base table, or None when unknown.

        Used by the statistics manager to rescale stale histograms and
        by the optimizer as the base-cardinality source of truth.
        """
        key = name.upper()
        if self.accelerator.has_storage(key):
            return self.accelerator.storage_for(key).row_count
        if self.db2.has_storage(key):
            return self.db2.storage_for(key).row_count
        return None

    def run_statistics(
        self,
        tables: Optional[Sequence[str]] = None,
        bins: int = DEFAULT_HISTOGRAM_BINS,
    ) -> list[str]:
        """RUNSTATS analogue: full-scan statistics collection.

        Scans each named table (default: every catalogued base table
        with storage) and records row counts, per-column NDVs, null
        counts, min/max, and equi-width histograms. Returns the tables
        collected, in collection order.
        """
        if tables:
            descriptors = [self.catalog.table(name) for name in tables]
        else:
            descriptors = self.catalog.tables()
        collected: list[str] = []
        for descriptor in descriptors:
            name = descriptor.name
            if self.accelerator.has_storage(name):
                rows = self.accelerator.snapshot_rows(name)
            elif self.db2.has_storage(name):
                rows = [row for _, row in self.db2.storage_for(name).scan()]
            else:
                continue
            self.stats.collect_from_rows(
                name,
                descriptor.schema.column_names,
                rows,
                generation=self.catalog.generation,
                bins=bins,
            )
            collected.append(name)
        return collected

    def connect(self, user: str = "SYSADM") -> "Connection":
        return Connection(self, self.catalog.user(user))

    def create_user(self, name: str, is_admin: bool = False) -> User:
        return self.catalog.create_user(name, is_admin=is_admin)

    # -- acceleration management (ACCEL_ADD_TABLES analogue) -------------------------

    def add_table_to_accelerator(self, name: str) -> int:
        """Copy a DB2 table to the accelerator and start replication.

        Returns the number of rows in the initial copy. The full copy is
        charged to the interconnect — this is the bulk-load price the
        legacy flow pays again for every re-replicated stage table.
        """
        descriptor = self.catalog.table(name)
        if descriptor.location is not TableLocation.DB2_ONLY:
            raise DuplicateObjectError(
                f"table {descriptor.name} is already on the accelerator"
            )
        start_lsn = self.db2.change_log.head_lsn
        # set_location (not a bare attribute write) so cached plans
        # compiled against the old placement are invalidated.
        self.catalog.set_location(descriptor.name, TableLocation.ACCELERATED)
        self.accelerator.create_storage(descriptor)
        # Crash point: the placement moved and storage exists, but the
        # initial copy has not landed and replication is not registered —
        # recovery must finish the DDL's intent with a full reload.
        self.faults.crash_point("ddl.mid_accelerate")
        storage = self.db2.storage_for(descriptor.name)
        rows = [row for _, row in storage.scan()]
        self.interconnect.send_to_accelerator(storage.byte_count)
        if rows:
            self.accelerator.bulk_insert(descriptor.name, rows)
        self.replication.register_table(descriptor.name, start_lsn)
        # Seed optimizer statistics from the freshly built zone maps —
        # row count + per-column min/max for free; RUNSTATS upgrades
        # them to NDVs and histograms on demand.
        self.stats.seed_from_column_store(
            descriptor.name,
            self.accelerator.storage_for(descriptor.name),
            generation=self.catalog.generation,
        )
        return len(rows)

    def reload_accelerated_table(self, name: str) -> int:
        """Re-snapshot an accelerated copy (ACCEL_LOAD_TABLES semantics).

        Drops the copy, takes a fresh full copy, and restarts replication
        from the current log head. Returns the copied row count.
        """
        descriptor = self.catalog.table(name)
        if descriptor.location is not TableLocation.ACCELERATED:
            raise UnknownObjectError(
                f"table {descriptor.name} is not an accelerated copy"
            )
        self.accelerator.drop_storage(descriptor.name)
        self.accelerator.create_storage(descriptor)
        start_lsn = self.db2.change_log.head_lsn
        storage = self.db2.storage_for(descriptor.name)
        rows = [row for _, row in storage.scan()]
        self.interconnect.send_to_accelerator(storage.byte_count)
        if rows:
            self.accelerator.bulk_insert(descriptor.name, rows)
        self.replication.register_table(descriptor.name, start_lsn)
        self.stats.seed_from_column_store(
            descriptor.name,
            self.accelerator.storage_for(descriptor.name),
            generation=self.catalog.generation,
        )
        return len(rows)

    def remove_table_from_accelerator(self, name: str) -> None:
        descriptor = self.catalog.table(name)
        if descriptor.location is not TableLocation.ACCELERATED:
            raise UnknownObjectError(
                f"table {descriptor.name} is not an accelerated copy"
            )
        self.catalog.set_location(descriptor.name, TableLocation.DB2_ONLY)
        self.accelerator.drop_storage(descriptor.name)
        self.replication.unregister_table(descriptor.name)
        # The zone-map-seeded statistics described the accelerated copy;
        # DDL invalidates them (a later RUNSTATS re-collects DB2-side).
        self.stats.invalidate(descriptor.name)

    def rebuild_shard(self, shard_id: int) -> int:
        """Bring a killed pool shard back and reload what it lost.

        Revives the shard (fresh circuit, empty partitions) and
        re-snapshots every ACCELERATED copy that lost data on it — DB2
        is the system of record, so the reload is just
        :meth:`reload_accelerated_table` per affected table. Returns
        the number of tables reloaded. AOT partitions have no DB2 copy;
        a lost AOT needs ``SYSPROC.ACCEL_RECOVER`` (checkpoint restore)
        instead and keeps failing fast until then.
        """
        pool = self.accelerator_pool
        if pool is None:
            raise UnknownObjectError(
                "accelerator is not a sharded pool; nothing to rebuild"
            )
        pool.revive_shard(shard_id)
        reloaded = 0
        for descriptor in self.catalog.tables():
            if descriptor.location is not TableLocation.ACCELERATED:
                continue
            if not pool.has_storage(descriptor.name):
                continue
            storage = pool.storage_for(descriptor.name)
            if shard_id in getattr(storage, "lost_shards", ()):
                self.reload_accelerated_table(descriptor.name)
                reloaded += 1
        return reloaded

    # -- movement metrics ---------------------------------------------------------------

    def movement_snapshot(self) -> MovementStats:
        return self.interconnect.snapshot()

    def movement_since(self, snapshot: MovementStats) -> MovementStats:
        # Clamped: a snapshot taken before an ``interconnect.reset()``
        # must not yield negative movement deltas.
        return self.interconnect.since(snapshot).clamped()

    # -- procedure output hooks (used by ProcedureContext) --------------------------------

    def create_procedure_output_table(
        self,
        connection: "Connection",
        name: str,
        columns: Sequence[tuple[str, object]],
    ) -> None:
        """Create an AOT for procedure output, owned by the caller."""
        schema = TableSchema(
            [Column(col_name, sql_type) for col_name, sql_type in columns]
        )
        descriptor = self.catalog.create_table(
            name,
            schema,
            location=TableLocation.ACCELERATOR_ONLY,
            owner=connection.user.name,
        )
        self.accelerator.create_storage(descriptor)

    def insert_procedure_rows(
        self,
        connection: "Connection",
        name: str,
        rows: Sequence[tuple],
    ) -> int:
        """Procedure output lands on the accelerator without crossing the
        interconnect (the algorithm already runs there)."""
        key = name.upper()
        delta = connection.active_deltas().get(key)
        if connection.in_transaction and delta is None:
            delta = connection.delta_for(key)
        return self.accelerator.insert_into(key, rows, delta=delta)


class Connection:
    """One session: user identity, transaction state, special registers."""

    def __init__(self, system: AcceleratedDatabase, user: User) -> None:
        self._system = system
        self.user = user
        self._txn: Optional[Transaction] = None
        self._explicit = False
        self.acceleration = AccelerationMode.ENABLE
        self.last_decision: Optional[str] = None
        #: CURRENT SERVICE CLASS — which WLM tier this session's
        #: statements are admitted under.
        self.service_class = "SYSDEFAULT"
        #: CURRENT STATEMENT TIMEOUT in seconds (None = the service
        #: class default, which may itself be unbounded).
        self.statement_timeout: Optional[float] = None
        #: The in-flight statement's budget (read by :meth:`cancel`,
        #: which may run on another thread) and admission ticket.
        self._budget: Optional[WorkBudget] = None
        self._ticket: Optional[AdmissionTicket] = None
        self._statement_class = self.service_class
        #: EXPLAIN ANALYZE forces profiling for its inner statement even
        #: when the system profiler is disabled.
        self._profile_force = False
        #: Profiles produced by the current top-level query (two entries
        #: when a mid-statement failure re-executed the plan on DB2).
        self._last_profiles: list = []

    @property
    def system(self) -> AcceleratedDatabase:
        """The federation this connection belongs to."""
        return self._system

    # -- special registers --------------------------------------------------------

    def set_acceleration(self, mode: str) -> None:
        """Set CURRENT QUERY ACCELERATION (NONE / ENABLE / ALL)."""
        self.acceleration = AccelerationMode.from_name(mode)

    def set_service_class(self, name: str) -> None:
        """Set CURRENT SERVICE CLASS (validated against the registry)."""
        self.service_class = self._system.wlm.classes.get(name).name

    def set_statement_timeout(self, value: Union[str, float, None]) -> None:
        """Set CURRENT STATEMENT TIMEOUT (seconds; NONE/0 clears it)."""
        if value is None or (
            isinstance(value, str) and value.upper() in ("NONE", "NULL")
        ):
            self.statement_timeout = None
            return
        seconds = float(value)
        self.statement_timeout = seconds if seconds > 0 else None

    def cancel(self, reason: str = "cancelled by application") -> bool:
        """Cooperatively cancel the in-flight statement (thread-safe).

        Returns whether a cancellable statement was in flight. The
        statement notices at its next budget checkpoint (queue wakeup,
        chunk/row-batch boundary, lock wait) and aborts with
        :class:`~repro.errors.StatementCancelledError`, rolling back as
        any other statement failure would.
        """
        budget = self._budget
        if budget is None:
            return False
        budget.cancel(reason)
        return True

    # -- transaction control ---------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._explicit and self._txn is not None

    def begin(self) -> None:
        if self._explicit:
            raise TransactionStateError("transaction already open")
        self._txn = self._system.db2.txn_manager.begin()
        self._explicit = True

    def commit(self) -> None:
        if not self._explicit or self._txn is None:
            raise TransactionStateError("no open transaction")
        txn = self._txn
        # Apply AOT deltas on the accelerator, then commit the DB2 side
        # (which publishes captured change records for replication).
        for delta in txn.aot_deltas.values():
            if not delta.is_empty:
                self._system.interconnect.send_to_accelerator(
                    STATEMENT_OVERHEAD_BYTES
                )
            self._system.accelerator.apply_delta(delta)
        self._system.db2.commit(txn)
        self._txn = None
        self._explicit = False
        # Crash point: DB2 committed (changelog published) but the client
        # was not acked and the commit-time drain has not run — DB2 is
        # ahead of the accelerator by exactly this transaction.
        self._system.faults.crash_point("commit.post_commit_pre_ack")
        if self._system.auto_replicate:
            self._system.replication.drain()

    def rollback(self) -> None:
        if not self._explicit or self._txn is None:
            raise TransactionStateError("no open transaction")
        self._system.db2.rollback(self._txn)  # deltas are simply dropped
        self._txn = None
        self._explicit = False

    def close(self) -> None:
        if self._explicit and self._txn is not None:
            self.rollback()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- context used by the analytics framework -----------------------------------------

    def active_deltas(self) -> dict[str, DeltaBuffer]:
        if self._explicit and self._txn is not None:
            return self._txn.aot_deltas
        return {}

    def delta_for(self, table: str) -> DeltaBuffer:
        assert self._explicit and self._txn is not None
        return self._txn.aot_deltas.setdefault(
            table.upper(), DeltaBuffer(table.upper())
        )

    def snapshot_epoch_for_statement(self) -> int:
        """Pin (and return) the transaction's accelerator snapshot epoch."""
        if self._explicit and self._txn is not None:
            if self._txn.snapshot_epoch is None:
                self._txn.snapshot_epoch = self._system.accelerator.current_epoch
            return self._txn.snapshot_epoch
        return self._system.accelerator.current_epoch

    # -- execution ----------------------------------------------------------------------------

    def execute(
        self,
        sql: Union[str, ast.Statement],
        params: Sequence[object] = (),
        service_class: Optional[str] = None,
        timeout_seconds: Optional[float] = None,
    ) -> Result:
        """Execute one statement.

        ``service_class`` / ``timeout_seconds`` are per-statement
        attribute overrides of the session's CURRENT SERVICE CLASS and
        CURRENT STATEMENT TIMEOUT registers.
        """
        wlm = self._system.wlm
        self._statement_class = (
            service_class.upper() if service_class else self.service_class
        )
        override = (
            timeout_seconds
            if timeout_seconds is not None
            else self.statement_timeout
        )
        # Disabled WLM with no timeout set: budget stays None and the
        # statement path pays nothing beyond these two checks.
        budget = (
            wlm.budget_for(self._statement_class, override)
            if (wlm.enabled or override is not None)
            else None
        )
        self._budget = budget
        try:
            with active_budget(budget):
                return self._execute_budgeted(sql, params)
        except (StatementTimeoutError, StatementCancelledError) as exc:
            wlm.record_outcome(exc)
            raise
        finally:
            self._budget = None

    def _execute_budgeted(
        self,
        sql: Union[str, ast.Statement],
        params: Sequence[object],
    ) -> Result:
        tracer = self._system.tracer
        if not tracer.enabled:
            stmt, plan = self._resolve_statement(sql)
            return self._execute_parsed(stmt, params, NULL_SPAN, plan=plan)
        with tracer.span("statement", user=self.user.name) as span:
            with tracer.span("parse") as parse_span:
                stmt, plan = self._resolve_statement(sql)
                if plan is not None and plan.executions:
                    parse_span.annotate(plan_cache="hit")
            span.annotate(
                statement=type(stmt).__name__.replace("Statement", "")
            )
            return self._execute_parsed(stmt, params, span, plan=plan)

    def _resolve_statement(
        self, sql: Union[str, ast.Statement]
    ) -> tuple[ast.Statement, Optional[CachedPlan]]:
        """Parse ``sql``, consulting the statement-plan cache for queries.

        A hit returns the cached statement without re-parsing; a miss
        parses and (for SELECT/set-operation statements only — DML and
        DDL are not worth caching) stores a fresh plan. Pre-parsed AST
        inputs bypass the cache entirely.
        """
        if not isinstance(sql, str):
            return sql, None
        cache = self._system.plan_cache
        generation = self._system.catalog.generation
        plan = cache.lookup(sql, generation)
        if plan is not None:
            return plan.statement, plan
        stmt = parse_statement(sql)
        if isinstance(stmt, (ast.SelectStatement, ast.SetOperation)):
            plan = cache.store(sql, stmt, generation)
        return stmt, plan

    def _span(self, name: str, **attributes):
        """A span under the system tracer; the shared no-op when off."""
        tracer = self._system.tracer
        if not tracer.enabled:
            return NULL_SPAN
        return tracer.span(name, **attributes)

    def _execute_parsed(
        self,
        stmt: ast.Statement,
        params: Sequence[object],
        span,
        plan: Optional[CachedPlan] = None,
    ) -> Result:
        if isinstance(stmt, ast.BeginStatement):
            self.begin()
            span.annotate(engine="DB2")
            return Result(message="BEGIN", engine="DB2")
        if isinstance(stmt, ast.CommitStatement):
            span.annotate(engine="DB2")
            self.commit()
            return Result(message="COMMIT", engine="DB2")
        if isinstance(stmt, ast.RollbackStatement):
            self.rollback()
            span.annotate(engine="DB2")
            return Result(message="ROLLBACK", engine="DB2")

        autocommit = not self._explicit
        if autocommit:
            self._txn = self._system.db2.txn_manager.begin()
        txn = self._txn
        assert txn is not None
        savepoint = self._statement_savepoint(txn)
        self.last_decision = None
        started = time.perf_counter()
        try:
            try:
                result = self._dispatch(stmt, txn, params, plan=plan)
            except Exception:
                if autocommit:
                    self._system.db2.rollback(txn)
                    self._txn = None
                else:
                    self._restore_savepoint(txn, savepoint)
                raise
            finally:
                if self._txn is not None:
                    self._system.db2.txn_manager.end_statement(self._txn)
            if autocommit:
                self._explicit = True  # reuse commit() for the implicit txn
                try:
                    with self._span("commit"):
                        self.commit()
                finally:
                    self._explicit = False
        finally:
            # The admission ticket covers the whole statement including
            # its commit; releasing in a finally (and release() being
            # idempotent) means no path — timeout, cancel, fault,
            # rollback — can leak a slot.
            ticket, self._ticket = self._ticket, None
            if ticket is not None:
                self._system.wlm.release(ticket)
        elapsed = time.perf_counter() - started
        span.annotate(engine=result.engine, rows=result.rowcount)
        self._record_statement(stmt, result, elapsed, span)
        return result

    def _record_statement(
        self,
        stmt: ast.Statement,
        result: Result,
        elapsed: float,
        span,
    ) -> None:
        system = self._system
        system.statement_history.append(
            StatementRecord(
                user=self.user.name,
                statement_type=type(stmt).__name__.replace("Statement", ""),
                engine=result.engine,
                elapsed_seconds=elapsed,
                rowcount=result.rowcount,
                reason=self.last_decision or "",
                trace_id=span.trace_id or "",
            )
        )
        system._latency_hist.observe(elapsed)
        system._rows_hist.observe(result.rowcount)
        system.metrics.counter(
            f"statement.engine.{result.engine.lower()}"
        ).inc()

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a semicolon-separated script; returns all results."""
        from repro.sql import parse_script

        return [self.execute(stmt) for stmt in parse_script(sql)]

    def query(self, sql: str, params: Sequence[object] = ()) -> list[tuple]:
        """Convenience: execute and return rows."""
        return self.execute(sql, params).rows

    # -- statement-level atomicity inside explicit transactions -----------------------------

    @staticmethod
    def _statement_savepoint(txn: Transaction):
        deltas = {
            table: (len(delta.inserted), set(delta.deleted_base_ids))
            for table, delta in txn.aot_deltas.items()
        }
        return (len(txn.undo_log), len(txn.pending_changes), deltas)

    @staticmethod
    def _restore_savepoint(txn: Transaction, savepoint) -> None:
        undo_length, changes_length, deltas = savepoint
        while len(txn.undo_log) > undo_length:
            txn.undo_log.pop()()
        del txn.pending_changes[changes_length:]
        for table, delta in list(txn.aot_deltas.items()):
            saved = deltas.get(table)
            if saved is None:
                del txn.aot_deltas[table]
                continue
            inserted_length, deleted_ids = saved
            del delta.inserted[inserted_length:]
            delta.deleted_base_ids = deleted_ids

    # -- dispatch --------------------------------------------------------------------------------

    def _dispatch(
        self,
        stmt: ast.Statement,
        txn: Transaction,
        params: Sequence[object],
        plan: Optional[CachedPlan] = None,
    ) -> Result:
        if isinstance(stmt, (ast.SelectStatement, ast.SetOperation)):
            return self._execute_query(stmt, txn, params, plan=plan)
        if isinstance(stmt, ast.InsertStatement):
            return self._execute_insert(stmt, txn, params)
        if isinstance(stmt, ast.UpdateStatement):
            return self._execute_update(stmt, txn, params)
        if isinstance(stmt, ast.DeleteStatement):
            return self._execute_delete(stmt, txn, params)
        if isinstance(stmt, ast.CreateTableStatement):
            return self._execute_create_table(stmt, txn, params)
        if isinstance(stmt, ast.DropTableStatement):
            return self._execute_drop_table(stmt)
        if isinstance(stmt, ast.AlterTableDistribute):
            return self._execute_alter_distribute(stmt)
        if isinstance(stmt, ast.CreateViewStatement):
            return self._execute_create_view(stmt)
        if isinstance(stmt, ast.DropViewStatement):
            return self._execute_drop_view(stmt)
        if isinstance(stmt, (ast.GrantStatement, ast.RevokeStatement)):
            return self._execute_grant_revoke(stmt)
        if isinstance(stmt, ast.ExplainStatement):
            if stmt.analyze:
                return self._explain_analyze(stmt.statement, txn, params)
            info = self.explain(stmt.statement)
            rows = []
            for key, value in info.items():
                if isinstance(value, (list, tuple)):
                    # The rendered logical-plan tree: one row per line so
                    # the indentation survives the ITEM/VALUE grid.
                    rows.extend((key.upper(), str(line)) for line in value)
                else:
                    rows.append((key.upper(), _render_plan_value(value)))
            return Result(columns=["ITEM", "VALUE"], rows=rows, engine="DB2")
        if isinstance(stmt, ast.SetStatement):
            return self._execute_set(stmt)
        if isinstance(stmt, ast.CallStatement):
            # CALL runs on the accelerator; make it visible to repro.obs:
            # a proc.call span (linked to MON_STATEMENTS via the trace)
            # plus analytics.* counters covering every procedure call.
            procname = stmt.procedure.upper()
            metrics = self._system.metrics
            with self._span("proc.call", procedure=procname) as span:
                scanned_before = self._system.accelerator.rows_scanned
                self._system.interconnect.send_to_accelerator(
                    STATEMENT_OVERHEAD_BYTES
                )
                result = self._system.procedures.call(self._system, self, stmt)
                scanned = self._system.accelerator.rows_scanned - scanned_before
                metrics.counter("analytics.calls").inc()
                if scanned:
                    metrics.counter("analytics.rows_scanned").inc(scanned)
                span.annotate(rows_scanned=scanned)
            return result
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    def _execute_set(self, stmt: ast.SetStatement) -> Result:
        register = stmt.register.upper()
        if register == "CURRENT QUERY ACCELERATION":
            self.set_acceleration(stmt.value)
            return Result(
                message=f"CURRENT QUERY ACCELERATION = "
                f"{self.acceleration.value}",
                engine="DB2",
            )
        if register == "CURRENT SERVICE CLASS":
            self.set_service_class(stmt.value)
            return Result(
                message=f"CURRENT SERVICE CLASS = {self.service_class}",
                engine="DB2",
            )
        if register == "CURRENT STATEMENT TIMEOUT":
            try:
                self.set_statement_timeout(stmt.value)
            except ValueError:
                raise SqlError(
                    f"invalid CURRENT STATEMENT TIMEOUT value "
                    f"{stmt.value!r} (seconds or NONE)"
                ) from None
            rendered = (
                "NONE"
                if self.statement_timeout is None
                else f"{self.statement_timeout:g}"
            )
            return Result(
                message=f"CURRENT STATEMENT TIMEOUT = {rendered}",
                engine="DB2",
            )
        raise SqlError(f"unknown special register {stmt.register}")

    def explain(self, sql: Union[str, ast.Statement]) -> dict:
        """Where would this statement run, and why?

        Returns a dict with ``engine``, ``reason``, ``tables`` (and their
        placements), and the estimated input rows — without executing the
        statement.
        """
        stmt = parse_statement(sql) if isinstance(sql, str) else sql
        catalog = self._system.catalog
        if isinstance(stmt, (ast.SelectStatement, ast.SetOperation)):
            monitored = monitoring_tables(stmt.referenced_tables())
            if monitored:
                return {
                    "statement": "QUERY",
                    "engine": "DB2",
                    "reason": "monitoring views are served from the "
                    "observability structures on the DB2 side",
                    "acceleration": self.acceleration.value,
                    "estimated_rows": 0,
                    "tables": {
                        name: "MONITORING VIEW" for name in sorted(monitored)
                    },
                    "plan": plan_tree_lines(plan_statement(stmt)),
                }
            stmt, __views = self._expand_views(stmt)
            tables = frozenset(
                name.upper() for name in stmt.referenced_tables()
            )
            logical = plan_statement(
                stmt, table_rows=self._optimizer_table_rows
            )
            __, estimated_rows, cost_advice = self._estimate_rows(
                logical, tables, None, self._system.catalog.generation
            )
            decision = self._system.router.route_query(
                stmt,
                self.acceleration,
                estimated_rows=estimated_rows,
                cost_advice=cost_advice,
            )
            return {
                "statement": "QUERY",
                "engine": decision.engine,
                "reason": decision.reason,
                "acceleration": self.acceleration.value,
                "estimated_rows": (
                    0 if estimated_rows is None else estimated_rows
                ),
                "cost": (
                    None if cost_advice is None else cost_advice.describe()
                ),
                "tables": {
                    name: catalog.table(name).location.value
                    for name in sorted(tables)
                },
                # Rendered through the same formatter EXPLAIN ANALYZE
                # uses for its annotated OPERATOR column.
                "plan": plan_tree_lines(logical),
            }
        if isinstance(
            stmt, (ast.InsertStatement, ast.UpdateStatement, ast.DeleteStatement)
        ):
            decision = self._system.router.route_dml(stmt.table)
            return {
                "statement": type(stmt).__name__.replace(
                    "Statement", ""
                ).upper(),
                "engine": decision.engine,
                "reason": decision.reason,
                "tables": {
                    stmt.table.upper(): catalog.table(
                        stmt.table
                    ).location.value
                },
            }
        if isinstance(stmt, ast.CallStatement):
            return {
                "statement": "CALL",
                "engine": "ACCELERATOR",
                "reason": "procedures execute on the accelerator after "
                "DB2 authorisation",
                "tables": {},
            }
        return {
            "statement": type(stmt).__name__.replace("Statement", "").upper(),
            "engine": "DB2",
            "reason": "DDL and control statements run on DB2",
            "tables": {},
        }

    #: Columns of the EXPLAIN ANALYZE grid.
    EXPLAIN_ANALYZE_COLUMNS = [
        "OPERATOR",
        "ENGINE",
        "ACTUAL_ROWS",
        "ESTIMATED_ROWS",
        "Q_ERROR",
        "WALL_MS",
        "DETAIL",
    ]

    def _explain_analyze(
        self,
        stmt: ast.Statement,
        txn: Transaction,
        params: Sequence[object],
    ) -> Result:
        """Execute the statement with profiling forced on and render the
        annotated plan tree: per-operator actual vs. estimated rows,
        Q-error, and wall time. A mid-statement accelerator failure under
        FAILBACK yields two sections — the failed accelerator attempt and
        the DB2 re-execution."""
        if not isinstance(stmt, (ast.SelectStatement, ast.SetOperation)):
            raise SqlError(
                "EXPLAIN ANALYZE supports queries only "
                f"(got {type(stmt).__name__})"
            )
        self._profile_force = True
        try:
            result = self._execute_query(stmt, txn, params)
        finally:
            self._profile_force = False
        rows: list[tuple] = []
        for profile in self._last_profiles:
            header = (
                f"execution [{profile.profile_id}] engine={profile.engine}"
            )
            if profile.failback:
                header += " (failback re-execution)"
            if profile.error is not None:
                header += f" error={profile.error}"
            rows.append(
                (
                    header,
                    profile.engine,
                    None,
                    None,
                    None,
                    round(profile.elapsed_seconds * 1000.0, 3),
                    profile.fingerprint[:120],
                )
            )
            for op in profile.operators:
                flags = []
                if op.parallel:
                    flags.append("parallel")
                if op.fused:
                    flags.append("fused")
                if not op.executed:
                    flags.append("not-executed")
                if op.chunks_skipped:
                    flags.append(f"chunks_skipped={op.chunks_skipped}")
                if op.batches > 1:
                    flags.append(f"batches={op.batches}")
                if op.rows_in:
                    flags.append(f"rows_in={op.rows_in}")
                rows.append(
                    (
                        op.describe(),
                        op.engine,
                        op.actual_rows,
                        op.estimated_rows,
                        round(op.q_error, 4),
                        round(op.wall_seconds * 1000.0, 3),
                        " ".join(flags),
                    )
                )
        if not rows:
            rows.append(
                (
                    "(not profiled: monitoring views are served directly "
                    "from the observability structures)",
                    result.engine,
                    None,
                    None,
                    None,
                    None,
                    "",
                )
            )
        return Result(
            columns=list(self.EXPLAIN_ANALYZE_COLUMNS),
            rows=rows,
            engine=result.engine,
        )

    # -- workload management -------------------------------------------------------------

    def _admit(
        self,
        engine: str,
        stmt=None,
        estimated_rows: Optional[int] = None,
        estimated_cost: Optional[float] = None,
    ) -> None:
        """Pass the current statement through ``engine``'s admission gate.

        One ticket per statement: a nested select (INSERT ... SELECT,
        CTAS) reuses the ticket its statement already holds, so no
        statement ever waits on a second gate while holding slots on a
        first — admission cannot deadlock across engines. No-op while
        the WLM is disabled.
        """
        system = self._system
        wlm = system.wlm
        if not wlm.enabled or self._ticket is not None:
            return
        cheap = stmt is not None and system.router.is_cheap_statement(stmt)
        with self._span(
            "wlm.admit", engine=engine, service_class=self._statement_class
        ) as span:
            ticket = wlm.admit(
                engine,
                self._statement_class,
                estimated_rows=estimated_rows,
                estimated_cost=estimated_cost,
                cheap=cheap,
                budget=self._budget,
            )
            span.annotate(
                bypassed=ticket.bypassed,
                queued_ms=round(ticket.queued_seconds * 1000.0, 3),
            )
        self._ticket = ticket

    def _reject_view_target(self, name: str) -> None:
        if self._system.catalog.has_view(name):
            raise SqlError(f"{name.upper()} is a view; views are read-only")

    def _require_accelerator_for_dml(self, name: str) -> None:
        """AOT DML has no DB2 copy to fall back to: fail fast when OFFLINE."""
        if not self._system.health.allow_request():
            raise AcceleratorUnavailableError(
                f"accelerator is unavailable; cannot modify "
                f"accelerator-only table {name}"
            )

    # -- privileges ---------------------------------------------------------------------

    def _check_table_privilege(
        self, privilege: Privilege, descriptor: TableDescriptor
    ) -> None:
        if self.user.is_admin or descriptor.owner == self.user.name:
            return
        self._system.catalog.privileges.check(
            self.user.name, privilege, "TABLE", descriptor.name
        )

    # -- queries --------------------------------------------------------------------------

    def _execute_query(
        self,
        stmt: Union[ast.SelectStatement, ast.SetOperation],
        txn: Transaction,
        params: Sequence[object],
        plan: Optional[CachedPlan] = None,
    ) -> Result:
        """Top-level SELECT: route, run, and charge the result transfer.

        An accelerator or link failure *during* execution feeds the health
        monitor; under ``ENABLE WITH FAILBACK`` the statement then
        transparently re-executes on DB2 (results are identical — the copy
        is maintained from DB2's own change log), otherwise the failure
        surfaces as :class:`AcceleratorUnavailableError`.
        """
        self._last_profiles = []
        try:
            columns, rows, engine = self._attempt_query(
                stmt, txn, params, self.acceleration, plan=plan
            )
        except (AcceleratorCrashError, LinkError) as exc:
            # One shard failing is not an appliance failure: the shard's
            # own circuit already tripped inside the pool, and tripping
            # the global monitor here would take the surviving shards
            # out of offload with it.
            if not isinstance(exc, ShardUnavailableError):
                self._system.health.record_failure()
            if (
                not self.acceleration.allows_failback
                or self._references_aot(stmt)
            ):
                raise AcceleratorUnavailableError(
                    f"accelerator failed mid-statement: {exc}"
                ) from exc
            with self._span(
                "failback", reason=f"{type(exc).__name__}: {exc}"[:200]
            ):
                columns, rows, engine = self._attempt_query(
                    stmt, txn, params, AccelerationMode.NONE, plan=plan
                )
            if self._last_profiles:
                self._last_profiles[-1].failback = True
            self.last_decision = "failback: accelerator failed mid-statement"
            self._system.failbacks += 1
            self._system.metrics.counter("statement.failbacks").inc()
        return Result(columns=columns, rows=rows, engine=engine)

    def _attempt_query(
        self,
        stmt: Union[ast.SelectStatement, ast.SetOperation],
        txn: Transaction,
        params: Sequence[object],
        mode: AccelerationMode,
        plan: Optional[CachedPlan] = None,
    ) -> tuple[list[str], list[tuple], str]:
        columns, rows, engine = self._run_select(
            stmt, txn, params, mode, plan=plan
        )
        if engine == "ACCELERATOR":
            self._system.interconnect.send_to_accelerator(
                STATEMENT_OVERHEAD_BYTES
            )
            self._system.interconnect.send_to_db2(estimate_rows_bytes(rows))
            self._system.health.record_success()
        return columns, rows, engine

    def _references_aot(
        self, stmt: Union[ast.SelectStatement, ast.SetOperation]
    ) -> bool:
        expanded, __ = self._expand_views(stmt)
        catalog = self._system.catalog
        return any(
            catalog.table(name).location is TableLocation.ACCELERATOR_ONLY
            for name in {n.upper() for n in expanded.referenced_tables()}
        )

    def _run_select(
        self,
        stmt: Union[ast.SelectStatement, ast.SetOperation],
        txn: Transaction,
        params: Sequence[object],
        mode: AccelerationMode,
        plan: Optional[CachedPlan] = None,
    ) -> tuple[list[str], list[tuple], str]:
        """Authorise, route, and execute a SELECT. No movement charges —
        callers charge according to where the rows actually go.

        With a prepared ``plan``, view expansion, table classification,
        and the bound logical plan come from the cache; privilege checks
        and routing always re-run (grants, the special register, health
        state, and row estimates all change without bumping the catalog
        generation).
        """
        if plan is not None:
            plan.executions += 1
        if plan is not None and plan.prepared:
            monitored = plan.monitored
        else:
            # SYSACCEL.MON_* monitoring views never reach routing: they
            # are served DB2-side from the live observability structures
            # and are readable by every session (like ACCEL_GET_HEALTH).
            monitored = frozenset(
                monitoring_tables(stmt.referenced_tables())
            )
        if monitored:
            if plan is not None and not plan.prepared:
                plan.monitored = monitored
                plan.expanded = stmt
                plan.prepared = True
            with self._span(
                "monitor.query", views=",".join(sorted(monitored))
            ):
                columns, rows = execute_monitoring_query(
                    self._system, stmt, params
                )
            self.last_decision = "monitoring view"
            return columns, rows, "DB2"
        if plan is not None and plan.prepared:
            direct_tables = plan.direct_tables
            view_names = plan.view_names
            stmt = plan.expanded
            tables = plan.tables
        else:
            # Definer-rights views: the caller needs SELECT on each view
            # and on each base table referenced *directly* in the
            # statement — tables reached only through a view body are
            # covered by the view grant.
            direct_tables = frozenset(
                name.upper()
                for name in stmt.referenced_tables()
                if not self._system.catalog.has_view(name)
            )
            stmt, view_names = self._expand_views(stmt)
            tables = frozenset(
                name.upper() for name in stmt.referenced_tables()
            )
            if plan is not None:
                plan.monitored = monitored
                plan.direct_tables = direct_tables
                plan.view_names = tuple(view_names)
                plan.expanded = stmt
                plan.tables = tables
                plan.prepared = True
        for view_name in view_names:
            view = self._system.catalog.view(view_name)
            if not (self.user.is_admin or view.owner == self.user.name):
                self._system.catalog.privileges.check(
                    self.user.name, Privilege.SELECT, "TABLE", view.name
                )
        for name in direct_tables:
            self._check_table_privilege(
                Privilege.SELECT, self._system.catalog.table(name)
            )
        # Bind PREDICT nodes to the model store before planning: the
        # first plan build copies the nodes (dataclasses.replace keeps
        # the bound store), and per-execution re-binding enforces the
        # owner gate and catches dropped models even on plan-cache hits.
        for node in _collect_predict_nodes(stmt):
            model = self._system.models.get(node.model)
            self._system.models.check_access(
                model, self.user.name, self.user.is_admin
            )
            if len(node.args) != len(model.features):
                raise AnalyticsError(
                    f"PREDICT({model.name}, ...) expects "
                    f"{len(model.features)} feature(s), got {len(node.args)}"
                )
            node.store = self._system.models
        # Bind-and-rewrite once per cached plan — before routing, because
        # the cost-based route needs per-operator estimates over the
        # bound plan. Both engines lower the same logical plan, so a
        # statement that fails back to DB2 after running on the
        # accelerator reuses the identical plan object.
        if plan is not None:
            if plan.logical is None:
                plan.logical = plan_statement(
                    stmt, table_rows=self._optimizer_table_rows
                )
            logical = plan.logical
        else:
            logical = plan_statement(
                stmt, table_rows=self._optimizer_table_rows
            )
        fingerprint = plan.key if plan is not None else None
        generation = self._system.catalog.generation
        estimates, estimated_rows, cost_advice = self._estimate_rows(
            logical, tables, fingerprint, generation
        )
        with self._span("route", mode=mode.value) as route_span:
            decision = self._system.router.route_query(
                stmt,
                mode,
                estimated_rows=estimated_rows,
                cost_advice=cost_advice,
            )
            route_span.annotate(
                engine=decision.engine, reason=decision.reason
            )
        self.last_decision = decision.reason
        if decision.reason.startswith("failback"):
            self._system.failbacks += 1
            self._system.metrics.counter("statement.failbacks").inc()
        # Admission happens after routing: the gate is per-engine and
        # the cost weight comes from the plan's root estimate plus the
        # cost model's per-engine work estimate.
        estimated_cost = None
        if cost_advice is not None:
            estimated_cost = (
                cost_advice.accelerator
                if decision.engine == "ACCELERATOR"
                else cost_advice.db2
            )
        self._admit(decision.engine, stmt, estimated_rows, estimated_cost)
        profiler = self._system.profiler
        profile = None
        if profiler.enabled or self._profile_force:
            profile = profiler.begin(
                logical,
                self._table_row_count,
                engine=decision.engine,
                fingerprint=fingerprint,
                generation=generation,
                estimates=estimates,
            )
        if decision.engine == "ACCELERATOR":
            epoch = self.snapshot_epoch_for_statement()
            started = time.perf_counter()
            try:
                columns, rows = self._system.accelerator.execute_select(
                    stmt,
                    params=params,
                    snapshot_epoch=epoch,
                    deltas=self.active_deltas(),
                    kernel_cache=plan.kernels if plan is not None else None,
                    plan=logical,
                    profile=profile,
                    estimates=estimates,
                )
            except Exception as exc:
                self._profile_done(profile, started, error=exc)
                raise
            self._profile_done(profile, started)
            return columns, rows, "ACCELERATOR"
        with self._span("db2.execute") as db2_span:
            started = time.perf_counter()
            try:
                columns, rows = self._system.db2.execute_select(
                    txn,
                    stmt,
                    params,
                    plan=logical,
                    tracer=self._system.tracer,
                    profile=profile,
                    estimates=estimates,
                )
            except Exception as exc:
                self._profile_done(profile, started, error=exc)
                raise
            self._profile_done(profile, started)
            db2_span.annotate(rows=len(rows))
        return columns, rows, "DB2"

    def _expand_views(self, stmt):
        catalog = self._system.catalog

        def lookup(name: str):
            if catalog.has_view(name):
                return catalog.view(name).query
            return None

        return expand_views(stmt, lookup)

    def _profile_done(self, profile, started: float, error=None) -> None:
        """Finish an in-flight profile (errored executions are retained
        for EXPLAIN ANALYZE but never feed the cardinality store)."""
        if profile is None:
            return
        if error is not None:
            profile.error = f"{type(error).__name__}: {error}"[:200]
        self._system.profiler.finish(profile, time.perf_counter() - started)
        self._last_profiles.append(profile)

    def _table_row_count(self, name: str) -> int:
        """Base-table cardinality for the profiler's estimator."""
        system = self._system
        name = name.upper()
        if system.db2.has_storage(name):
            return system.db2.storage_for(name).row_count
        if system.accelerator.has_storage(name):
            return system.accelerator.storage_for(name).row_count
        return 0

    def _optimizer_table_rows(self, name: str) -> Optional[int]:
        """Base-table cardinality with unknown tables surfaced as None
        (never a silent 0) — used by join reordering and the cost model."""
        system = self._system
        rows = system._live_row_count(name)
        if rows is not None:
            return rows
        return system.stats.row_count(name)

    def _estimate_rows(
        self,
        logical,
        tables: frozenset,
        fingerprint: Optional[str],
        generation: int,
    ) -> tuple[Optional[dict], Optional[int], Optional[object]]:
        """(per-node estimates, root row estimate, PlanCost advice).

        The row estimate is the logical plan's *root* estimate — a
        ``LIMIT 5`` probe on a million-row table estimates 5 rows, not
        the sum of every referenced table's cardinality (which made the
        WLM admit such probes as heavy and the router offload them).
        When any referenced table is unknown to both engines and the
        statistics store, everything degrades to None so routing falls
        back to the shape heuristic instead of trusting a silent 0.
        """
        system = self._system
        if any(
            self._optimizer_table_rows(name) is None for name in tables
        ):
            return None, None, None
        feedback = None
        if fingerprint is not None:
            store = system.profiler.feedback

            def feedback(path, _fp=fingerprint, _gen=generation):
                return store.lookup(_fp, _gen, path)

        estimates = estimate_plan(
            logical,
            self._table_row_count,
            stats=system.stats,
            feedback=feedback,
        )
        estimated_rows = estimates.get(id(logical))
        cost_advice = system.cost_model.plan_costs(
            logical, estimates, base_rows=self._optimizer_table_rows
        )
        return estimates, estimated_rows, cost_advice

    # -- DML ------------------------------------------------------------------------------------

    def _execute_insert(
        self,
        stmt: ast.InsertStatement,
        txn: Transaction,
        params: Sequence[object],
    ) -> Result:
        self._reject_view_target(stmt.table)
        descriptor = self._system.catalog.table(stmt.table)
        self._check_table_privilege(Privilege.INSERT, descriptor)

        if stmt.values is not None:
            rows = self._evaluate_value_rows(stmt, descriptor, params)
            source_engine = "DB2"
            self._admit(
                "ACCELERATOR" if descriptor.is_aot else "DB2",
                estimated_rows=len(rows),
            )
        else:
            assert stmt.select is not None
            # An AOT target forces the sub-select onto the accelerator
            # whenever its sources are visible there (mode ALL semantics);
            # the whole INSERT ... SELECT then executes in place.
            mode = (
                AccelerationMode.ALL if descriptor.is_aot else self.acceleration
            )
            __, source_rows, source_engine = self._run_select(
                stmt.select, txn, params, mode
            )
            rows = [
                self._coerce_insert_row(descriptor, stmt.columns, row)
                for row in source_rows
            ]

        if descriptor.is_aot:
            self._require_accelerator_for_dml(descriptor.name)
            nbytes = sum(
                descriptor.schema.row_byte_size(row) for row in rows
            )
            if source_engine != "ACCELERATOR":
                # VALUES (or a DB2-side sub-select): rows cross the wire.
                self._system.interconnect.send_to_accelerator(
                    nbytes + STATEMENT_OVERHEAD_BYTES
                )
            else:
                # INSERT ... SELECT entirely on the accelerator: only the
                # statement travels. This is the paper's headline saving.
                self._system.interconnect.send_to_accelerator(
                    STATEMENT_OVERHEAD_BYTES
                )
            delta = self.delta_for(descriptor.name) if self.in_transaction else None
            count = self._system.accelerator.insert_into(
                descriptor.name, rows, delta=delta, already_coerced=True
            )
            return Result(engine="ACCELERATOR", rowcount=count)
        if source_engine == "ACCELERATOR":
            # Legacy-flow price: accelerator results materialised in DB2
            # cross the interconnect coming back...
            self._system.interconnect.send_to_db2(
                sum(descriptor.schema.row_byte_size(row) for row in rows)
            )
            # ...and, if the target is accelerated, replication ships them
            # to the accelerator again after commit.
        count = self._system.db2.insert_rows(
            txn, descriptor.name, rows, already_coerced=True
        )
        return Result(engine="DB2", rowcount=count)

    def _evaluate_value_rows(
        self,
        stmt: ast.InsertStatement,
        descriptor: TableDescriptor,
        params: Sequence[object],
    ) -> list[tuple]:
        from repro.sql.expressions import Scope, compile_scalar

        scope = Scope([])
        rows: list[tuple] = []
        for value_row in stmt.values or []:
            values = [
                compile_scalar(expr, scope, params)(()) for expr in value_row
            ]
            rows.append(
                self._coerce_insert_row(descriptor, stmt.columns, values)
            )
        return rows

    @staticmethod
    def _coerce_insert_row(
        descriptor: TableDescriptor,
        columns: Optional[list[str]],
        values: Sequence[object],
    ) -> tuple:
        if columns is None:
            return descriptor.schema.coerce_row(values)
        return descriptor.schema.coerce_partial(columns, values)

    def _execute_update(
        self,
        stmt: ast.UpdateStatement,
        txn: Transaction,
        params: Sequence[object],
    ) -> Result:
        self._reject_view_target(stmt.table)
        descriptor = self._system.catalog.table(stmt.table)
        self._check_table_privilege(Privilege.UPDATE, descriptor)
        self._admit(
            "ACCELERATOR" if descriptor.is_aot else "DB2",
            estimated_rows=self._table_row_count(descriptor.name),
        )
        if descriptor.is_aot:
            self._require_accelerator_for_dml(descriptor.name)
            self._system.interconnect.send_to_accelerator(
                STATEMENT_OVERHEAD_BYTES
            )
            delta = self.delta_for(descriptor.name) if self.in_transaction else None
            epoch = self.snapshot_epoch_for_statement() if self.in_transaction else None
            count = self._system.accelerator.update_where(
                stmt, params=params, snapshot_epoch=epoch, delta=delta
            )
            return Result(engine="ACCELERATOR", rowcount=count)
        count = self._system.db2.update_where(txn, stmt, params)
        return Result(engine="DB2", rowcount=count)

    def _execute_delete(
        self,
        stmt: ast.DeleteStatement,
        txn: Transaction,
        params: Sequence[object],
    ) -> Result:
        self._reject_view_target(stmt.table)
        descriptor = self._system.catalog.table(stmt.table)
        self._check_table_privilege(Privilege.DELETE, descriptor)
        self._admit(
            "ACCELERATOR" if descriptor.is_aot else "DB2",
            estimated_rows=self._table_row_count(descriptor.name),
        )
        if descriptor.is_aot:
            self._require_accelerator_for_dml(descriptor.name)
            self._system.interconnect.send_to_accelerator(
                STATEMENT_OVERHEAD_BYTES
            )
            delta = self.delta_for(descriptor.name) if self.in_transaction else None
            epoch = self.snapshot_epoch_for_statement() if self.in_transaction else None
            count = self._system.accelerator.delete_where(
                stmt, params=params, snapshot_epoch=epoch, delta=delta
            )
            return Result(engine="ACCELERATOR", rowcount=count)
        count = self._system.db2.delete_where(txn, stmt, params)
        return Result(engine="DB2", rowcount=count)

    # -- DDL --------------------------------------------------------------------------------------

    def _execute_create_table(
        self,
        stmt: ast.CreateTableStatement,
        txn: Transaction,
        params: Sequence[object],
    ) -> Result:
        if stmt.if_not_exists and self._system.catalog.has_table(stmt.name):
            return Result(message="TABLE EXISTS", engine="DB2")

        if stmt.as_select is not None:
            mode = (
                AccelerationMode.ALL
                if stmt.in_accelerator
                else self.acceleration
            )
            source_columns, source_rows, source_engine = self._run_select(
                stmt.as_select, txn, params, mode
            )
            schema = self._schema_from_rows(source_columns, source_rows)
        else:
            schema = TableSchema(
                [
                    Column(
                        column.name,
                        column.sql_type,
                        nullable=column.nullable,
                        primary_key=column.primary_key,
                    )
                    for column in stmt.columns
                ]
            )
        location = (
            TableLocation.ACCELERATOR_ONLY
            if stmt.in_accelerator
            else TableLocation.DB2_ONLY
        )
        descriptor = self._system.catalog.create_table(
            stmt.name,
            schema,
            location=location,
            distribute_on=stmt.distribute_on,
            owner=self.user.name,
        )
        if stmt.in_accelerator:
            # The nickname/proxy stays in the DB2 catalog; the data lives
            # only on the accelerator (paper Sec. 2, Fig. 1).
            self._system.accelerator.create_storage(descriptor)
            self._system.interconnect.send_to_accelerator(
                STATEMENT_OVERHEAD_BYTES
            )
        else:
            self._system.db2.create_storage(descriptor)

        count = 0
        if stmt.as_select is not None:
            rows = [schema.coerce_row(row) for row in source_rows]
            nbytes = sum(schema.row_byte_size(row) for row in rows)
            if descriptor.is_aot:
                if source_engine != "ACCELERATOR":
                    # DB2-resident source: rows cross to the accelerator.
                    self._system.interconnect.send_to_accelerator(nbytes)
                delta = (
                    self.delta_for(descriptor.name)
                    if self.in_transaction
                    else None
                )
                count = self._system.accelerator.insert_into(
                    descriptor.name, rows, delta=delta, already_coerced=True
                )
            else:
                if source_engine == "ACCELERATOR":
                    # Legacy-flow price: materialising accelerator results
                    # in DB2 ships them back over the interconnect.
                    self._system.interconnect.send_to_db2(nbytes)
                count = self._system.db2.insert_rows(
                    txn, descriptor.name, rows, already_coerced=True
                )
        return Result(
            message=f"TABLE {descriptor.name} CREATED",
            engine="ACCELERATOR" if stmt.in_accelerator else "DB2",
            rowcount=count,
        )

    @staticmethod
    def _schema_from_rows(
        names: list[str], rows: list[tuple]
    ) -> TableSchema:
        from repro.sql.types import infer_type, DOUBLE

        columns: list[Column] = []
        for index, name in enumerate(names):
            sample = next(
                (row[index] for row in rows if row[index] is not None),
                None,
            )
            sql_type = infer_type(sample) if sample is not None else DOUBLE
            columns.append(Column(name, sql_type))
        return TableSchema(columns)

    def _execute_drop_table(self, stmt: ast.DropTableStatement) -> Result:
        if stmt.if_exists and not self._system.catalog.has_table(stmt.name):
            return Result(message="NO TABLE", engine="DB2")
        descriptor = self._system.catalog.table(stmt.name)
        if not (self.user.is_admin or descriptor.owner == self.user.name):
            raise AuthorizationError(
                f"user {self.user.name} cannot drop {descriptor.name}"
            )
        self._system.catalog.drop_table(descriptor.name)
        self._system.db2.drop_storage(descriptor.name)
        self._system.accelerator.drop_storage(descriptor.name)
        self._system.replication.unregister_table(descriptor.name)
        self._system.stats.invalidate(descriptor.name)
        return Result(message=f"TABLE {descriptor.name} DROPPED", engine="DB2")

    def _execute_alter_distribute(
        self, stmt: ast.AlterTableDistribute
    ) -> Result:
        """ALTER TABLE … ACCELERATE DISTRIBUTE BY HASH/RANGE/RANDOM.

        Records the placement spec in the shared catalog (DB2-side
        metadata: it survives accelerator crashes and drives rebuilt
        placement) and, on a sharded pool, redistributes the live rows
        immediately. RANGE boundaries are computed from the current
        data's quantiles at ALTER time.
        """
        from repro.shard.placement import PartitionSpec, range_boundaries

        descriptor = self._system.catalog.table(stmt.table)
        if not (self.user.is_admin or descriptor.owner == self.user.name):
            raise AuthorizationError(
                f"user {self.user.name} cannot alter {descriptor.name}"
            )
        if not descriptor.is_accelerated:
            raise SqlError(
                f"table {descriptor.name} is not accelerator-resident; "
                "DISTRIBUTE BY governs accelerator placement"
            )
        columns = tuple(c.upper() for c in stmt.columns)
        for name in columns:
            if name not in descriptor.schema.column_names:
                raise UnknownObjectError(
                    f"table {descriptor.name} has no column {name}"
                )
        pool = self._system.accelerator_pool
        if stmt.method == "RANGE":
            values = (
                pool.range_key_values(descriptor.name, columns[0])
                if pool is not None
                else []
            )
            spec = PartitionSpec(
                "RANGE",
                columns,
                range_boundaries(values, pool.shards if pool else 1),
            )
        elif stmt.method == "HASH":
            spec = PartitionSpec("HASH", columns)
        else:
            spec = PartitionSpec("RANDOM")
        self._system.catalog.set_partition_spec(descriptor.name, spec)
        moved = 0
        if pool is not None:
            self._system.interconnect.send_to_accelerator(
                STATEMENT_OVERHEAD_BYTES
            )
            moved = pool.redistribute(descriptor.name, spec)
        rendered = stmt.method
        if columns:
            rendered += f" ({', '.join(columns)})"
        return Result(
            message=f"TABLE {descriptor.name} DISTRIBUTE BY {rendered}",
            engine="ACCELERATOR",
            rowcount=moved,
        )

    def _execute_create_view(self, stmt: ast.CreateViewStatement) -> Result:
        # Validate eagerly: expansion catches unknown views; execution of
        # the definition would catch unknown tables, but a cheap catalog
        # check keeps CREATE VIEW errors early and clear.
        expanded, __ = self._expand_views(stmt.query)
        for name in expanded.referenced_tables():
            self._system.catalog.table(name)  # raises if unknown
        descriptor = self._system.catalog.create_view(
            stmt.name, stmt.query, owner=self.user.name
        )
        return Result(
            message=f"VIEW {descriptor.name} CREATED", engine="DB2"
        )

    def _execute_drop_view(self, stmt: ast.DropViewStatement) -> Result:
        if stmt.if_exists and not self._system.catalog.has_view(stmt.name):
            return Result(message="NO VIEW", engine="DB2")
        descriptor = self._system.catalog.view(stmt.name)
        if not (self.user.is_admin or descriptor.owner == self.user.name):
            raise AuthorizationError(
                f"user {self.user.name} cannot drop view {descriptor.name}"
            )
        self._system.catalog.drop_view(descriptor.name)
        return Result(message=f"VIEW {descriptor.name} DROPPED", engine="DB2")

    # -- GRANT / REVOKE ------------------------------------------------------------------------------

    def _execute_grant_revoke(
        self, stmt: Union[ast.GrantStatement, ast.RevokeStatement]
    ) -> Result:
        is_grant = isinstance(stmt, ast.GrantStatement)
        object_name = stmt.object_name.upper()
        if stmt.object_type == "TABLE":
            catalog = self._system.catalog
            descriptor = (
                catalog.view(object_name)
                if catalog.has_view(object_name)
                else catalog.table(object_name)
            )
            if not (self.user.is_admin or descriptor.owner == self.user.name):
                raise AuthorizationError(
                    f"user {self.user.name} cannot "
                    f"{'grant' if is_grant else 'revoke'} on {object_name}"
                )
            object_name = descriptor.name
        elif not self.user.is_admin:
            raise AuthorizationError(
                "only administrators manage procedure privileges"
            )
        grantee = self._system.catalog.user(stmt.grantee).name
        privileges = self._resolve_privileges(stmt.privileges, stmt.object_type)
        manager = self._system.catalog.privileges
        if is_grant:
            manager.grant(grantee, privileges, stmt.object_type, object_name)
        else:
            manager.revoke(grantee, privileges, stmt.object_type, object_name)
        return Result(
            message=f"{'GRANT' if is_grant else 'REVOKE'} OK", engine="DB2"
        )

    @staticmethod
    def _resolve_privileges(
        names: list[str], object_type: str
    ) -> list[Privilege]:
        if "ALL" in names:
            if object_type == "PROCEDURE":
                return [Privilege.EXECUTE]
            return [
                Privilege.SELECT,
                Privilege.INSERT,
                Privilege.UPDATE,
                Privilege.DELETE,
                Privilege.LOAD,
            ]
        return [Privilege.from_name(name) for name in names]

"""Deterministic fault injection for the federation layer.

The real IDAA federation has to survive a misbehaving appliance and a
flaky private network; this module lets experiments *cause* those
conditions on demand. A single :class:`FaultInjector` is owned by the
:class:`~repro.federation.system.AcceleratedDatabase` and consulted from
the instrumented entry points (``Interconnect.send_*`` and the
``AcceleratorEngine`` read/write paths). Faults fire

* by **probability** (seeded RNG, so a fixed seed gives a fixed fault
  sequence),
* by **call-count schedule** (e.g. "calls 5 through 9 fail" — an exact,
  reproducible outage window), or
* unconditionally inside a scoped **context manager**
  (:meth:`FaultInjector.forced`).

Three fault kinds exist: ``error`` raises :class:`~repro.errors.LinkError`
(a transient drop), ``crash`` raises
:class:`~repro.errors.AcceleratorCrashError` (the appliance is gone until
the rule is cleared), and ``latency`` silently inflates the simulated
transfer time instead of raising.

**Crash points** (recovery testing) are named code locations that the
federation consults via :meth:`FaultInjector.crash_point` at the moments
where a real appliance crash would be most damaging: mid replication
batch, mid checkpoint write, mid DDL, mid AOT build, and after a commit
but before the client is acked. Arming one
(:meth:`FaultInjector.arm_crash_point`) installs a ``crash`` rule at the
site ``crashpoint.<name>`` that raises
:class:`~repro.errors.InjectedCrashError`; the recovery harness uses the
raise as its cue to kill and restart the accelerator.
"""

from __future__ import annotations

import itertools
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import AcceleratorCrashError, InjectedCrashError, LinkError

__all__ = [
    "FaultInjector",
    "FaultRule",
    "FAULT_KINDS",
    "CRASH_POINTS",
]

FAULT_KINDS = ("error", "crash", "latency")

#: Named crash points consulted by the federation's recovery-critical
#: code paths. Each maps to fault site ``crashpoint.<name>``.
CRASH_POINTS = (
    # Between shipping a table sub-batch over the interconnect and
    # acknowledging it — the classic partially-applied-batch crash.
    "replication.mid_batch",
    # While the checkpoint frame is being written — exercises torn-write
    # detection on restore.
    "checkpoint.mid_write",
    # During ADD TABLE TO ACCELERATOR, after accelerator storage exists
    # but before the initial copy finished.
    "ddl.mid_accelerate",
    # During an accelerator-only CTAS populate — the AOT is lost and must
    # be rebuilt from its registered source query.
    "aot.mid_build",
    # After DB2 committed but before the commit-time auto-drain ran: DB2
    # is ahead of the accelerator by exactly one transaction.
    "commit.post_commit_pre_ack",
)

_DEFAULT_ERRORS: dict[str, Callable[[str], Exception]] = {
    "error": lambda site: LinkError(f"injected link error at {site}"),
    "crash": lambda site: AcceleratorCrashError(
        f"injected accelerator crash at {site}"
    ),
}

_rule_ids = itertools.count(1)


@dataclass
class FaultRule:
    """One armed fault. Inactive rules are skipped and can be re-armed."""

    site: str
    kind: str = "error"
    #: Fire with this probability per call (None = fire on every call
    #: unless a schedule is given).
    probability: Optional[float] = None
    #: Fire only on these 1-based call indexes of the site.
    schedule: Optional[frozenset[int]] = None
    #: Fire at most this many times, then deactivate (None = unlimited).
    remaining: Optional[int] = None
    #: For ``latency`` rules: simulated seconds added per firing.
    latency_seconds: float = 0.0
    #: Override the raised exception (receives the site name).
    error_factory: Optional[Callable[[str], Exception]] = None
    active: bool = True
    fired: int = 0
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{', '.join(FAULT_KINDS)})"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be within [0, 1]")

    def make_error(self) -> Exception:
        if self.error_factory is not None:
            return self.error_factory(self.site)
        return _DEFAULT_ERRORS[self.kind](self.site)


class FaultInjector:
    """Seeded registry of fault rules, consulted per instrumented call.

    ``check(site)`` increments the site's call counter, evaluates every
    active rule for that site in registration order, and either raises
    (``error``/``crash`` rules) or returns the extra simulated latency to
    charge (``latency`` rules). With a fixed seed and a fixed call
    sequence the injected faults are fully deterministic.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[FaultRule] = []
        #: Per-site number of ``check`` calls (1-based indexes for rules).
        self.calls: dict[str, int] = {}
        #: Per-site number of faults that actually fired.
        self.injected: dict[str, int] = {}

    # -- rule management ---------------------------------------------------------

    def add(
        self,
        site: str,
        kind: str = "error",
        probability: Optional[float] = None,
        schedule: Optional[Iterator[int]] = None,
        count: Optional[int] = None,
        latency_seconds: float = 0.0,
        error_factory: Optional[Callable[[str], Exception]] = None,
    ) -> FaultRule:
        """Arm a fault rule and return it (keep it to remove it later)."""
        rule = FaultRule(
            site=site,
            kind=kind,
            probability=probability,
            schedule=frozenset(schedule) if schedule is not None else None,
            remaining=count,
            latency_seconds=latency_seconds,
            error_factory=error_factory,
        )
        self._rules.append(rule)
        return rule

    def remove(self, rule: FaultRule) -> None:
        self._rules = [r for r in self._rules if r.rule_id != rule.rule_id]

    def clear(self, site: Optional[str] = None) -> None:
        """Disarm every rule (or every rule for one site)."""
        if site is None:
            self._rules = []
        else:
            self._rules = [r for r in self._rules if r.site != site]

    @contextmanager
    def forced(self, site: str, kind: str = "error", **kwargs):
        """Scoped outage: the rule fires on every call inside the block."""
        rule = self.add(site, kind=kind, **kwargs)
        try:
            yield rule
        finally:
            self.remove(rule)

    def rules(self, site: Optional[str] = None) -> list[FaultRule]:
        if site is None:
            return list(self._rules)
        return [r for r in self._rules if r.site == site]

    # -- crash points ------------------------------------------------------------

    @staticmethod
    def crash_site(name: str) -> str:
        if name not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {name!r} (expected one of "
                f"{', '.join(CRASH_POINTS)})"
            )
        return f"crashpoint.{name}"

    def arm_crash_point(
        self,
        name: str,
        schedule: Optional[Iterator[int]] = None,
        count: Optional[int] = None,
    ) -> FaultRule:
        """Arm a named crash point; the rule raises ``InjectedCrashError``.

        By default the rule stays armed (every hit crashes) until cleared
        by :meth:`clear_crash_points` — matching a dead appliance, which
        keeps failing retries until it is restarted. ``schedule``/``count``
        narrow the firing window for precise scenarios.
        """
        return self.add(
            self.crash_site(name),
            kind="crash",
            schedule=schedule,
            count=count,
            error_factory=lambda site: InjectedCrashError(
                f"injected crash at {site}"
            ),
        )

    def crash_point(self, name: str) -> None:
        """Consult a named crash point (no-op unless armed)."""
        self.check(self.crash_site(name))

    def clear_crash_points(self) -> None:
        """Disarm every crash-point rule (the kill step of kill/restart)."""
        prefix = "crashpoint."
        self._rules = [
            r for r in self._rules if not r.site.startswith(prefix)
        ]

    def armed_crash_points(self) -> list[str]:
        prefix = "crashpoint."
        return sorted(
            {
                r.site[len(prefix):]
                for r in self._rules
                if r.active and r.site.startswith(prefix)
            }
        )

    # -- evaluation --------------------------------------------------------------

    def check(self, site: str) -> float:
        """Evaluate ``site``'s rules; raise on a hit, return extra latency."""
        call_index = self.calls.get(site, 0) + 1
        self.calls[site] = call_index
        extra_latency = 0.0
        for rule in self._rules:
            if not rule.active or rule.site != site:
                continue
            if rule.schedule is not None:
                if call_index not in rule.schedule:
                    continue
            elif rule.probability is not None:
                if self._rng.random() >= rule.probability:
                    continue
            rule.fired += 1
            if rule.remaining is not None:
                rule.remaining -= 1
                if rule.remaining <= 0:
                    rule.active = False
            self.injected[site] = self.injected.get(site, 0) + 1
            if rule.kind == "latency":
                extra_latency += rule.latency_seconds
                continue
            raise rule.make_error()
        return extra_latency

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset_counters(self) -> None:
        self.calls = {}
        self.injected = {}

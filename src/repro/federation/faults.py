"""Deterministic fault injection for the federation layer.

The real IDAA federation has to survive a misbehaving appliance and a
flaky private network; this module lets experiments *cause* those
conditions on demand. A single :class:`FaultInjector` is owned by the
:class:`~repro.federation.system.AcceleratedDatabase` and consulted from
the instrumented entry points (``Interconnect.send_*`` and the
``AcceleratorEngine`` read/write paths). Faults fire

* by **probability** (seeded RNG, so a fixed seed gives a fixed fault
  sequence),
* by **call-count schedule** (e.g. "calls 5 through 9 fail" — an exact,
  reproducible outage window), or
* unconditionally inside a scoped **context manager**
  (:meth:`FaultInjector.forced`).

Three fault kinds exist: ``error`` raises :class:`~repro.errors.LinkError`
(a transient drop), ``crash`` raises
:class:`~repro.errors.AcceleratorCrashError` (the appliance is gone until
the rule is cleared), and ``latency`` silently inflates the simulated
transfer time instead of raising.
"""

from __future__ import annotations

import itertools
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import AcceleratorCrashError, LinkError

__all__ = ["FaultInjector", "FaultRule", "FAULT_KINDS"]

FAULT_KINDS = ("error", "crash", "latency")

_DEFAULT_ERRORS: dict[str, Callable[[str], Exception]] = {
    "error": lambda site: LinkError(f"injected link error at {site}"),
    "crash": lambda site: AcceleratorCrashError(
        f"injected accelerator crash at {site}"
    ),
}

_rule_ids = itertools.count(1)


@dataclass
class FaultRule:
    """One armed fault. Inactive rules are skipped and can be re-armed."""

    site: str
    kind: str = "error"
    #: Fire with this probability per call (None = fire on every call
    #: unless a schedule is given).
    probability: Optional[float] = None
    #: Fire only on these 1-based call indexes of the site.
    schedule: Optional[frozenset[int]] = None
    #: Fire at most this many times, then deactivate (None = unlimited).
    remaining: Optional[int] = None
    #: For ``latency`` rules: simulated seconds added per firing.
    latency_seconds: float = 0.0
    #: Override the raised exception (receives the site name).
    error_factory: Optional[Callable[[str], Exception]] = None
    active: bool = True
    fired: int = 0
    rule_id: int = field(default_factory=lambda: next(_rule_ids))

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{', '.join(FAULT_KINDS)})"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be within [0, 1]")

    def make_error(self) -> Exception:
        if self.error_factory is not None:
            return self.error_factory(self.site)
        return _DEFAULT_ERRORS[self.kind](self.site)


class FaultInjector:
    """Seeded registry of fault rules, consulted per instrumented call.

    ``check(site)`` increments the site's call counter, evaluates every
    active rule for that site in registration order, and either raises
    (``error``/``crash`` rules) or returns the extra simulated latency to
    charge (``latency`` rules). With a fixed seed and a fixed call
    sequence the injected faults are fully deterministic.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: list[FaultRule] = []
        #: Per-site number of ``check`` calls (1-based indexes for rules).
        self.calls: dict[str, int] = {}
        #: Per-site number of faults that actually fired.
        self.injected: dict[str, int] = {}

    # -- rule management ---------------------------------------------------------

    def add(
        self,
        site: str,
        kind: str = "error",
        probability: Optional[float] = None,
        schedule: Optional[Iterator[int]] = None,
        count: Optional[int] = None,
        latency_seconds: float = 0.0,
        error_factory: Optional[Callable[[str], Exception]] = None,
    ) -> FaultRule:
        """Arm a fault rule and return it (keep it to remove it later)."""
        rule = FaultRule(
            site=site,
            kind=kind,
            probability=probability,
            schedule=frozenset(schedule) if schedule is not None else None,
            remaining=count,
            latency_seconds=latency_seconds,
            error_factory=error_factory,
        )
        self._rules.append(rule)
        return rule

    def remove(self, rule: FaultRule) -> None:
        self._rules = [r for r in self._rules if r.rule_id != rule.rule_id]

    def clear(self, site: Optional[str] = None) -> None:
        """Disarm every rule (or every rule for one site)."""
        if site is None:
            self._rules = []
        else:
            self._rules = [r for r in self._rules if r.site != site]

    @contextmanager
    def forced(self, site: str, kind: str = "error", **kwargs):
        """Scoped outage: the rule fires on every call inside the block."""
        rule = self.add(site, kind=kind, **kwargs)
        try:
            yield rule
        finally:
            self.remove(rule)

    def rules(self, site: Optional[str] = None) -> list[FaultRule]:
        if site is None:
            return list(self._rules)
        return [r for r in self._rules if r.site == site]

    # -- evaluation --------------------------------------------------------------

    def check(self, site: str) -> float:
        """Evaluate ``site``'s rules; raise on a hit, return extra latency."""
        call_index = self.calls.get(site, 0) + 1
        self.calls[site] = call_index
        extra_latency = 0.0
        for rule in self._rules:
            if not rule.active or rule.site != site:
                continue
            if rule.schedule is not None:
                if call_index not in rule.schedule:
                    continue
            elif rule.probability is not None:
                if self._rng.random() >= rule.probability:
                    continue
            rule.fired += 1
            if rule.remaining is not None:
                rule.remaining -= 1
                if rule.remaining <= 0:
                    rule.active = False
            self.injected[site] = self.injected.get(site, 0) + 1
            if rule.kind == "latency":
                extra_latency += rule.latency_seconds
                continue
            raise rule.make_error()
        return extra_latency

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def reset_counters(self) -> None:
        self.calls = {}
        self.injected = {}

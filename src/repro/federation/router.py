"""Transparent query routing — which engine runs a statement.

The router reproduces IDAA's offload model with the paper's AOT
extension:

* a query touching any **accelerator-only table** *must* run on the
  accelerator (DB2 only has the nickname); combining an AOT with a
  non-accelerated DB2 table is a routing error because no engine can see
  both — the paper's motivation for loading enrichment data directly into
  the accelerator;
* otherwise offload is controlled by the session's
  ``CURRENT QUERY ACCELERATION`` special register:
  ``NONE`` (never offload), ``ENABLE`` (offload eligible analytical
  queries), ``ENABLE WITH FAILBACK`` (like ENABLE, but offloadable
  queries over accelerated *copies* silently run on DB2 while the
  accelerator is OFFLINE), ``ALL`` (offload everything that can run
  there);
* under ``ENABLE``, OLTP-shaped statements stay on DB2: primary-key point
  lookups and tiny scans are faster on the row store than the
  round-trip + columnar scan would be (experiment E3);
* when a health monitor is attached and reports the accelerator OFFLINE,
  a decision that would offload is re-examined: accelerated-copy queries
  fail back to DB2 under ``ENABLE WITH FAILBACK``; everything else —
  AOT queries (no DB2 copy exists) and plain ``ENABLE``/``ALL`` sessions
  — fails fast with :class:`~repro.errors.AcceleratorUnavailableError`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union

from repro.catalog import Catalog, TableLocation
from repro.errors import (
    AcceleratorUnavailableError,
    RoutingError,
    UnknownObjectError,
)
from repro.federation.health import HealthMonitor
from repro.sql import ast
from repro.sql.expressions import Scope
from repro.sql.planning import split_conjuncts, references_only

__all__ = [
    "AccelerationMode",
    "RoutingDecision",
    "QueryRouter",
    "CachedPlan",
    "KernelCache",
    "PlanCache",
    "normalize_sql",
]


class AccelerationMode(Enum):
    """Values of the CURRENT QUERY ACCELERATION special register."""

    NONE = "NONE"
    ENABLE = "ENABLE"
    ENABLE_WITH_FAILBACK = "ENABLE WITH FAILBACK"
    ALL = "ALL"

    @property
    def allows_failback(self) -> bool:
        return self is AccelerationMode.ENABLE_WITH_FAILBACK

    @staticmethod
    def from_name(name: str) -> "AccelerationMode":
        try:
            return AccelerationMode(" ".join(name.upper().split()))
        except ValueError:
            raise UnknownObjectError(
                f"unknown acceleration mode {name}"
            ) from None


@dataclass(frozen=True)
class RoutingDecision:
    engine: str  # 'DB2' or 'ACCELERATOR'
    reason: str


class QueryRouter:
    """Stateless routing policy over the shared catalog."""

    def __init__(
        self,
        catalog: Catalog,
        offload_row_threshold: int = 2000,
        health: Optional[HealthMonitor] = None,
    ) -> None:
        self.catalog = catalog
        #: Minimum estimated scanned rows before a plain scan is offloaded
        #: under ENABLE (analytical queries offload regardless of size).
        self.offload_row_threshold = offload_row_threshold
        #: When set, ACCELERATOR decisions are gated on circuit state.
        self.health = health

    # -- queries ---------------------------------------------------------------

    def route_query(
        self,
        stmt: Union[ast.SelectStatement, ast.SetOperation],
        mode: AccelerationMode,
        estimated_rows: Optional[int] = None,
        cost_advice=None,
    ) -> RoutingDecision:
        """Route a query; ``cost_advice`` is an optional
        :class:`repro.sql.stats.PlanCost` from the cost-based optimizer.
        When present it replaces the ENABLE-mode row-threshold heuristic;
        AOT constraints, mode semantics, point lookups, and health
        failback always take precedence over it.
        """
        decision, has_aot = self._nominal_route(
            stmt, mode, estimated_rows, cost_advice
        )
        if decision.engine != "ACCELERATOR" or self.health is None:
            return decision
        if self.health.allow_request():
            return decision
        return self.failback_decision(mode, has_aot=has_aot)

    def failback_decision(
        self, mode: AccelerationMode, has_aot: bool
    ) -> RoutingDecision:
        """DB2 fallback for an offload decision the accelerator can't take.

        Raises :class:`AcceleratorUnavailableError` unless the session runs
        ``ENABLE WITH FAILBACK`` and every referenced table has a DB2 copy.
        """
        if mode.allows_failback and not has_aot:
            return RoutingDecision("DB2", "failback: accelerator offline")
        if has_aot:
            raise AcceleratorUnavailableError(
                "accelerator is unavailable and the query references an "
                "accelerator-only table (no DB2 copy exists to fail back to)"
            )
        raise AcceleratorUnavailableError(
            "accelerator is unavailable; set CURRENT QUERY ACCELERATION = "
            "ENABLE WITH FAILBACK to let eligible queries run on DB2"
        )

    def _nominal_route(
        self,
        stmt: Union[ast.SelectStatement, ast.SetOperation],
        mode: AccelerationMode,
        estimated_rows: Optional[int] = None,
        cost_advice=None,
    ) -> tuple[RoutingDecision, bool]:
        """Health-blind routing; returns (decision, references-an-AOT)."""
        tables = [name.upper() for name in stmt.referenced_tables()]
        has_aot = False
        has_plain_db2 = False
        all_on_accelerator = bool(tables)
        for name in tables:
            descriptor = self.catalog.table(name)
            if descriptor.location is TableLocation.ACCELERATOR_ONLY:
                has_aot = True
            elif descriptor.location is TableLocation.DB2_ONLY:
                has_plain_db2 = True
                all_on_accelerator = False

        if has_aot:
            if has_plain_db2:
                raise RoutingError(
                    "query combines an accelerator-only table with a "
                    "non-accelerated DB2 table; no engine can see both "
                    "(accelerate the DB2 table or load its data into "
                    "the accelerator)"
                )
            if mode is AccelerationMode.NONE:
                raise RoutingError(
                    "query references an accelerator-only table but "
                    "CURRENT QUERY ACCELERATION is NONE"
                )
            return RoutingDecision("ACCELERATOR", "references an AOT"), True

        if mode is AccelerationMode.NONE or not all_on_accelerator:
            reason = (
                "acceleration disabled"
                if mode is AccelerationMode.NONE
                else "references non-accelerated tables"
            )
            return RoutingDecision("DB2", reason), False

        if mode is AccelerationMode.ALL:
            return RoutingDecision("ACCELERATOR", "acceleration mode ALL"), False

        # ENABLE (with or without FAILBACK): cost-based offload when the
        # optimizer produced advice, heuristic offload otherwise.
        if self._is_point_lookup(stmt):
            return RoutingDecision("DB2", "primary-key point lookup"), False
        if cost_advice is not None:
            return (
                RoutingDecision(cost_advice.engine, cost_advice.describe()),
                False,
            )
        if self._is_analytical(stmt):
            return (
                RoutingDecision("ACCELERATOR", "analytical query shape"),
                False,
            )
        if (
            estimated_rows is not None
            and estimated_rows >= self.offload_row_threshold
        ):
            return RoutingDecision("ACCELERATOR", "large estimated scan"), False
        return RoutingDecision("DB2", "small non-analytical query"), False

    def _is_analytical(
        self, stmt: Union[ast.SelectStatement, ast.SetOperation]
    ) -> bool:
        if isinstance(stmt, ast.SetOperation):
            return True
        if stmt.group_by or stmt.is_aggregate_query or stmt.distinct:
            return True
        return isinstance(stmt.from_item, ast.Join) or isinstance(
            stmt.from_item, ast.SubquerySource
        )

    def _is_point_lookup(
        self, stmt: Union[ast.SelectStatement, ast.SetOperation]
    ) -> bool:
        if not isinstance(stmt, ast.SelectStatement):
            return False
        if not isinstance(stmt.from_item, ast.TableRef) or stmt.where is None:
            return False
        if stmt.group_by or stmt.is_aggregate_query:
            return False
        try:
            descriptor = self.catalog.table(stmt.from_item.name)
        except UnknownObjectError as exc:
            # A name that resolves to nothing (or to a view that should
            # have been expanded before routing) must surface as a clean
            # routing failure, not an internal catalog error mid-route.
            raise RoutingError(
                f"cannot route query: {stmt.from_item.name} is not a "
                f"routable table ({exc})"
            ) from exc
        pk = descriptor.schema.primary_key_columns
        if not pk:
            return False
        binding = stmt.from_item.binding
        scope = Scope([(binding, c.name) for c in descriptor.schema.columns])
        empty = Scope([])
        bound: set[str] = set()
        for conjunct in split_conjuncts(stmt.where):
            if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
                continue
            for column_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if isinstance(column_side, ast.ColumnRef) and references_only(
                    value_side, empty
                ):
                    try:
                        index = scope.resolve(
                            column_side.name, column_side.table
                        )
                    except Exception:
                        continue
                    bound.add(descriptor.schema.columns[index].name)
                    break
        return all(column in bound for column in pk)

    def is_cheap_statement(
        self, stmt: Union[ast.SelectStatement, ast.SetOperation]
    ) -> bool:
        """WLM bypass hint: should this query skip admission queueing?

        A primary-key point lookup finishes in microseconds on either
        engine; parking it behind queued analytics would invert the
        latency goal, so the admission controller lets it through
        without consuming a slot. (Tiny scans are bypassed separately,
        by the workload manager's row-estimate threshold.)
        """
        try:
            return self._is_point_lookup(stmt)
        except (RoutingError, UnknownObjectError):
            return False

    # -- DML -----------------------------------------------------------------------

    def route_dml(self, table: str) -> RoutingDecision:
        """INSERT/UPDATE/DELETE target placement decides the engine."""
        descriptor = self.catalog.table(table)
        if descriptor.location is TableLocation.ACCELERATOR_ONLY:
            if self.health is not None and not self.health.allow_request():
                # AOT data exists nowhere else — DML cannot fail back.
                raise AcceleratorUnavailableError(
                    f"accelerator is unavailable; cannot modify "
                    f"accelerator-only table {descriptor.name}"
                )
            return RoutingDecision("ACCELERATOR", "target is an AOT")
        return RoutingDecision("DB2", "target is DB2-resident")


# -- statement plan cache ----------------------------------------------------------


def normalize_sql(sql: str) -> str:
    """Whitespace/case-insensitive cache key for a statement's text.

    Collapses whitespace runs and upper-cases characters *outside*
    single-quoted string literals only — ``'a  b'`` and ``'A  B'`` are
    different values and must not collide. A doubled quote inside a
    literal (``'it''s'``) toggles out and straight back in, which
    preserves it verbatim.
    """
    out: list[str] = []
    in_string = False
    pending_space = False
    for ch in sql:
        if in_string:
            out.append(ch)
            if ch == "'":
                in_string = False
            continue
        if ch.isspace():
            pending_space = True
            continue
        if pending_space and out:
            out.append(" ")
        pending_space = False
        out.append(ch.upper())
        if ch == "'":
            in_string = True
    return "".join(out)


class KernelCache:
    """Compiled-predicate cache attached to one cached plan.

    Maps ``(id(expr), scope entries, params)`` to ``(expr, kernel)`` so
    repeated executions of the same statement skip ``compile_vector``.
    Keys use ``id(expr)``, which is only sound because every entry pins
    the expression it was compiled from: a live pin means no other
    object can ever be allocated at that id, so an id-keyed hit is
    guaranteed to be the same expression node. (Callers still verify
    ``entry[0] is expr`` — predicates of ephemeral bound-subquery ASTs
    would otherwise be able to collide with recycled addresses.)
    Subquery-bearing expressions are never cached (their resolvers
    capture one execution's snapshot).
    """

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0

    def get(self, key):
        fn = self._entries.get(key)
        if fn is None:
            self.misses += 1
        else:
            self.hits += 1
        return fn

    def put(self, key, fn) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.clear()
        self._entries[key] = fn


@dataclass
class CachedPlan:
    """A parsed (and, after first execution, prepared) statement.

    ``statement`` is the parse result; the remaining analysis fields are
    filled lazily by the first execution (``prepared`` flips to True) so
    later executions skip view expansion and table classification.
    ``logical`` holds the bound-and-rewritten :mod:`repro.sql.logical`
    plan of the expanded statement — built once, then handed to whichever
    engine the router picks (both executors lower the same plan). Caching
    the plan also pins its expression nodes, which is what makes the
    id-keyed :class:`KernelCache` sound across executions.
    Authorisation is deliberately NOT cached — privilege checks run on
    every execution, which is why GRANT/REVOKE need not invalidate.
    """

    statement: object  # ast.SelectStatement | ast.SetOperation
    generation: int
    #: The normalised-SQL cache key — doubles (with ``generation``) as
    #: the profiler's plan fingerprint for the cardinality-feedback
    #: store, so feedback survives plan-cache eviction and re-parse.
    key: str = ""
    kernels: KernelCache = field(default_factory=KernelCache)
    prepared: bool = False
    monitored: frozenset = frozenset()
    expanded: object = None  # statement after view expansion
    logical: object = None  # bound logical plan (repro.sql.logical.PlanNode)
    view_names: tuple = ()
    direct_tables: frozenset = frozenset()
    tables: frozenset = frozenset()
    executions: int = 0


class PlanCache:
    """LRU statement-plan cache keyed by normalised SQL text.

    Entries record the catalog generation they were compiled under;
    a lookup after any DDL (create/drop table or view, placement move)
    sees a stale generation and discards the entry, so plans can never
    resolve names against a catalog that has changed shape.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(self, sql: str, generation: int) -> Optional[CachedPlan]:
        # Misses are counted in store(), not here: lookup() also runs for
        # statements that turn out to be DML/DDL (unknown before parsing),
        # and those must not drag the query hit rate down.
        key = normalize_sql(sql)
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                return None
            if plan.generation != generation:
                del self._entries[key]
                self.invalidations += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def store(self, sql: str, statement, generation: int) -> CachedPlan:
        key = normalize_sql(sql)
        plan = CachedPlan(statement=statement, generation=generation, key=key)
        with self._lock:
            self.misses += 1
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return plan

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict:
        """Metrics-source view (see MON_PLAN_CACHE / metrics registry)."""
        with self._lock:
            kernel_hits = sum(p.kernels.hits for p in self._entries.values())
            kernel_misses = sum(
                p.kernels.misses for p in self._entries.values()
            )
            return {
                "size": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 6),
                "kernel_hits": kernel_hits,
                "kernel_misses": kernel_misses,
            }

"""View expansion.

Views are DB2 catalog objects (like nicknames, they carry no data); the
federation expands every view reference into a derived table *before*
routing, so a query over a view of accelerated tables offloads exactly
like the underlying query would. Views are definer-rights: querying a
view needs SELECT on the view itself, not on its base tables.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Union

from repro.errors import SqlError
from repro.sql import ast

__all__ = ["expand_views"]

#: Returns the view's stored query, or None when the name is not a view.
ViewLookup = Callable[[str], Optional[ast.SelectStatement]]

_MAX_DEPTH = 16


def expand_views(
    stmt: Union[ast.SelectStatement, ast.SetOperation],
    lookup: ViewLookup,
) -> tuple[Union[ast.SelectStatement, ast.SetOperation], set[str]]:
    """Replace view references with derived tables, recursively.

    Returns the rewritten statement and the set of view names used
    anywhere in it. Cyclic or overly deep view nests raise
    :class:`~repro.errors.SqlError`.
    """
    used: set[str] = set()
    expanded = _expand_statement(stmt, lookup, used, depth=0)
    return expanded, used


def _expand_statement(stmt, lookup, used, depth):
    if isinstance(stmt, ast.SetOperation):
        return dataclasses.replace(
            stmt,
            left=_expand_statement(stmt.left, lookup, used, depth),
            right=_expand_statement(stmt.right, lookup, used, depth),
        )
    return _expand_select(stmt, lookup, used, depth)


def _expand_select(
    query: ast.SelectStatement, lookup, used, depth
) -> ast.SelectStatement:
    if depth > _MAX_DEPTH:
        raise SqlError("view nesting too deep (cycle?)")
    new_from = _expand_from(query.from_item, lookup, used, depth)
    new_items = [
        ast.SelectItem(
            expression=_expand_expr(item.expression, lookup, used, depth),
            alias=item.alias,
        )
        for item in query.select_items
    ]
    return dataclasses.replace(
        query,
        select_items=new_items,
        from_item=new_from,
        where=_expand_expr(query.where, lookup, used, depth)
        if query.where is not None
        else None,
        group_by=[
            _expand_expr(g, lookup, used, depth) for g in query.group_by
        ],
        having=_expand_expr(query.having, lookup, used, depth)
        if query.having is not None
        else None,
        order_by=[
            ast.OrderItem(
                expression=_expand_expr(o.expression, lookup, used, depth),
                ascending=o.ascending,
            )
            for o in query.order_by
        ],
    )


def _expand_from(item, lookup, used, depth):
    if item is None:
        return None
    if isinstance(item, ast.TableRef):
        view_query = lookup(item.name)
        if view_query is None:
            return item
        used.add(item.name.upper())
        inner = _expand_select(view_query, lookup, used, depth + 1)
        return ast.SubquerySource(query=inner, alias=item.binding)
    if isinstance(item, ast.SubquerySource):
        return dataclasses.replace(
            item, query=_expand_select(item.query, lookup, used, depth)
        )
    if isinstance(item, ast.Join):
        return dataclasses.replace(
            item,
            left=_expand_from(item.left, lookup, used, depth),
            right=_expand_from(item.right, lookup, used, depth),
            condition=_expand_expr(item.condition, lookup, used, depth)
            if item.condition is not None
            else None,
        )
    return item


def _expand_expr(expr, lookup, used, depth):
    from repro.sql.planning import map_children

    if isinstance(expr, ast.SubqueryExpression):
        new = dataclasses.replace(
            expr, query=_expand_select(expr.query, lookup, used, depth)
        )
        if new.operand is not None:
            new = dataclasses.replace(
                new, operand=_expand_expr(new.operand, lookup, used, depth)
            )
        return new
    return map_children(
        expr, lambda child: _expand_expr(child, lookup, used, depth)
    )

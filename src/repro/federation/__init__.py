"""The federation layer: one SQL interface over DB2 + accelerator.

This package implements the paper's architecture: the transparent query
router, the replication service that maintains accelerated snapshot
copies, the interconnect byte-accounting model, and the
:class:`AcceleratedDatabase` facade applications connect to. AOT DDL/DML
routing — the paper's core extension — lives in the facade.
"""

from repro.federation.network import Interconnect
from repro.federation.replication import ReplicationService
from repro.federation.router import QueryRouter, RoutingDecision
from repro.federation.system import AcceleratedDatabase, Connection

__all__ = [
    "Interconnect",
    "ReplicationService",
    "QueryRouter",
    "RoutingDecision",
    "AcceleratedDatabase",
    "Connection",
]

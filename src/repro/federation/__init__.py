"""The federation layer: one SQL interface over DB2 + accelerator.

This package implements the paper's architecture: the transparent query
router, the replication service that maintains accelerated snapshot
copies, the interconnect byte-accounting model, and the
:class:`AcceleratedDatabase` facade applications connect to. AOT DDL/DML
routing — the paper's core extension — lives in the facade.

Fault tolerance lives here too: a deterministic fault injector
(:mod:`repro.federation.faults`), a circuit-breaker health monitor
(:mod:`repro.federation.health`), ``ENABLE WITH FAILBACK`` routing, and
resilient (retrying, exactly-once) replication.
"""

from repro.federation.faults import FaultInjector, FaultRule
from repro.federation.health import AcceleratorHealthState, HealthMonitor
from repro.federation.network import Interconnect
from repro.federation.replication import ReplicationService
from repro.federation.router import (
    AccelerationMode,
    QueryRouter,
    RoutingDecision,
)
from repro.federation.system import AcceleratedDatabase, Connection

__all__ = [
    "AcceleratorHealthState",
    "AccelerationMode",
    "FaultInjector",
    "FaultRule",
    "HealthMonitor",
    "Interconnect",
    "ReplicationService",
    "QueryRouter",
    "RoutingDecision",
    "AcceleratedDatabase",
    "Connection",
]

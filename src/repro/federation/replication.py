"""Incremental update: drain the DB2 change log into accelerator copies.

Accelerated tables keep a snapshot copy on the accelerator; committed DB2
changes are captured in the change log and applied here in batches. The
batch size trades apply throughput against copy staleness (experiment
E8), and every shipped record is charged to the interconnect — which is
exactly the recurring price the paper's legacy ELT flow pays when a
pipeline stage is materialised in DB2 and then re-replicated.

Resilience (experiment E11): a batch that fails — an injected link fault,
an accelerator crash, or a :class:`~repro.errors.ReplicationError` from
the apply path — is retried with bounded exponential backoff and jitter.
The LSN cursor only advances after the *whole* batch applied, and
partial-batch progress is remembered per table so a retry (even from a
later ``drain()`` call, even with a different batch size) never
double-applies a record: exactly-once apply. When a health monitor is
attached, drains are skipped outright while the circuit is open (the
backlog simply accumulates) and each drain outcome feeds the breaker —
so a successful drain doubles as the half-open probe that brings the
accelerator back ONLINE.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.accelerator.engine import AcceleratorEngine
from repro.catalog import Catalog
from repro.db2.changelog import ChangeLog, ChangeRecord
from repro.errors import AcceleratorCrashError, LinkError, ReplicationError
from repro.federation.health import HealthMonitor
from repro.federation.network import Interconnect
from repro.metrics.counters import ReplicationStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer

__all__ = ["DrainRecord", "ReplicationService"]

#: Exceptions the drain loop treats as retryable.
RETRYABLE_ERRORS = (ReplicationError, LinkError, AcceleratorCrashError)


@dataclass
class _PartialBatch:
    """Progress of a batch that failed mid-apply (exactly-once bookkeeping).

    ``start_lsn``/``record_count`` pin the exact batch extent so a later
    retry re-reads the *same* records even if the caller changed the batch
    size; ``applied_tables`` lists the per-table sub-batches that already
    made it to the accelerator and must not be shipped again.
    """

    start_lsn: int
    record_count: int
    applied_tables: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class DrainRecord:
    """Monitoring row for one ``drain()`` call (SYSACCEL.MON_REPLICATION)."""

    drain_id: int
    #: ``ok``, ``idle`` (nothing pending), ``failed`` (batch abandoned),
    #: or ``skipped_offline`` (circuit open).
    outcome: str
    records_applied: int
    batches: int
    backlog_before: int
    backlog_after: int
    retries: int
    abandoned: int
    reason: str = ""


class ReplicationService:
    """Single-cursor log reader applying per-table batches."""

    def __init__(
        self,
        change_log: ChangeLog,
        accelerator: AcceleratorEngine,
        interconnect: Interconnect,
        catalog: Catalog,
        batch_size: int = 1000,
        max_retries: int = 4,
        backoff_base_seconds: float = 0.01,
        backoff_cap_seconds: float = 1.0,
        retry_seed: int = 0,
        health: Optional[HealthMonitor] = None,
        sleep: Optional[Callable[[float], None]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        drain_history_limit: int = 256,
        faults=None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self._change_log = change_log
        self._accelerator = accelerator
        self._interconnect = interconnect
        self._catalog = catalog
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self._retry_rng = random.Random(retry_seed)
        self._health = health
        #: Optional fault injector; the apply path consults the
        #: ``replication.mid_batch`` crash point between shipping a table
        #: sub-batch and applying it (recovery testing).
        self._faults = faults
        #: Called with each backoff delay; None keeps backoff simulated
        #: (accounted in ``simulated_backoff_seconds``) without real sleeps.
        self._sleep = sleep
        self._cursor = change_log.head_lsn
        self._partial: Optional[_PartialBatch] = None
        #: Per-table LSN from which this table's changes are relevant
        #: (records older than the initial copy are skipped).
        self._table_start: dict[str, int] = {}
        self.records_applied = 0
        self.batches_applied = 0
        self.records_skipped = 0
        self.retries = 0
        self.batches_abandoned = 0
        self.drains_skipped_offline = 0
        self.simulated_backoff_seconds = 0.0
        self.last_error: Optional[Exception] = None
        self._tracer = tracer
        self._metrics = metrics
        #: Ring of per-drain monitoring rows (SYSACCEL.MON_REPLICATION).
        self.drain_history: deque[DrainRecord] = deque(
            maxlen=drain_history_limit
        )
        self._drain_seq = 0
        #: Optional hook called with (table, records) after a table
        #: sub-batch is successfully applied to the accelerator — the
        #: statistics manager folds the change feed incrementally.
        self.change_listener: Optional[
            Callable[[str, list[ChangeRecord]], None]
        ] = None

    def register_table(self, name: str, start_lsn: int) -> None:
        """Start replicating ``name`` for records with LSN >= start_lsn."""
        self._table_start[name.upper()] = start_lsn

    def unregister_table(self, name: str) -> None:
        self._table_start.pop(name.upper(), None)

    def table_starts(self) -> dict[str, int]:
        """Per-table replication start LSNs (checkpointed for restart)."""
        return dict(self._table_start)

    def reset(self) -> None:
        """Crash simulation: registrations, cursor and partial-batch
        progress are accelerator-side state and die with the appliance.

        Lifetime counters survive (they are DB2-side monitoring)."""
        self._table_start.clear()
        self._partial = None
        self._cursor = self._change_log.head_lsn

    def restore_cursor(self, lsn: int) -> None:
        """Restart replication from a checkpointed cursor position."""
        self._partial = None
        self._cursor = lsn

    @property
    def backlog(self) -> int:
        """Committed records not yet applied (copy staleness in records)."""
        return self._change_log.backlog(self._cursor)

    @property
    def cursor_lsn(self) -> int:
        return self._cursor

    def stats(self) -> ReplicationStats:
        """Backlog/staleness and retry counters for monitoring."""
        return ReplicationStats(
            backlog=self.backlog,
            cursor_lsn=self._cursor,
            head_lsn=self._change_log.head_lsn,
            records_applied=self.records_applied,
            batches_applied=self.batches_applied,
            records_skipped=self.records_skipped,
            retries=self.retries,
            batches_abandoned=self.batches_abandoned,
            drains_skipped_offline=self.drains_skipped_offline,
            simulated_backoff_seconds=self.simulated_backoff_seconds,
        )

    def drain(
        self,
        batch_size: Optional[int] = None,
        max_batches: Optional[int] = None,
        raise_on_failure: bool = False,
    ) -> int:
        """Apply pending changes; returns how many records were applied.

        A batch that still fails after ``max_retries`` retries stops the
        drain without advancing the cursor; by default the error is kept
        in ``last_error`` (commit-time auto-drains must not fail the
        already-committed DB2 transaction) — pass ``raise_on_failure=True``
        to surface it instead. While the health monitor reports the
        accelerator OFFLINE the drain returns immediately.
        """
        if batch_size is None:
            size = self.batch_size
        else:
            if batch_size <= 0:
                raise ValueError(
                    f"batch_size must be positive, got {batch_size}"
                )
            size = batch_size
        backlog_before = self.backlog
        retries_before = self.retries
        abandoned_before = self.batches_abandoned
        span = (
            self._tracer.span(
                "replication.drain",
                batch_size=size,
                backlog=backlog_before,
            )
            if self._tracer is not None and self._tracer.enabled
            else NULL_SPAN
        )
        with span:
            if self._health is not None and not self._health.available:
                self.drains_skipped_offline += 1
                span.annotate(outcome="skipped_offline")
                self._record_drain(
                    "skipped_offline", 0, 0, backlog_before,
                    reason="circuit open: accelerator OFFLINE",
                )
                return 0
            applied = 0
            batches = 0
            failed = False
            while max_batches is None or batches < max_batches:
                limit = size
                partial = self._partial
                if partial is not None and partial.start_lsn == self._cursor:
                    # Resume the abandoned batch at its original extent so the
                    # per-table skip set lines up with the same records.
                    limit = partial.record_count
                elif partial is not None:
                    self._partial = None  # stale (cursor moved past it)
                    partial = None
                records = self._change_log.read_from(self._cursor, limit=limit)
                if not records:
                    break
                ok, batch_applied = self._apply_with_retry(records, partial)
                applied += batch_applied
                if not ok:
                    failed = True
                    break
                self._cursor = records[-1].lsn + 1
                batches += 1
                if len(records) < limit:
                    break
            if failed:
                outcome = "failed"
            elif applied or batches:
                outcome = "ok"
            else:
                outcome = "idle"
            span.annotate(
                outcome=outcome,
                applied=applied,
                batches=batches,
                retries=self.retries - retries_before,
            )
            self._record_drain(
                outcome,
                applied,
                batches,
                backlog_before,
                retries=self.retries - retries_before,
                abandoned=self.batches_abandoned - abandoned_before,
                reason=str(self.last_error) if failed else "",
            )
            if failed and raise_on_failure and self.last_error is not None:
                raise self.last_error
            return applied

    def _record_drain(
        self,
        outcome: str,
        applied: int,
        batches: int,
        backlog_before: int,
        retries: int = 0,
        abandoned: int = 0,
        reason: str = "",
    ) -> None:
        self._drain_seq += 1
        self.drain_history.append(
            DrainRecord(
                drain_id=self._drain_seq,
                outcome=outcome,
                records_applied=applied,
                batches=batches,
                backlog_before=backlog_before,
                backlog_after=self.backlog,
                retries=retries,
                abandoned=abandoned,
                reason=reason[:512],
            )
        )
        if self._metrics is not None:
            self._metrics.gauge("replication.backlog").set(self.backlog)
            self._metrics.counter(f"replication.drains.{outcome}").inc()

    def _apply_with_retry(
        self,
        records: list[ChangeRecord],
        partial: Optional[_PartialBatch],
    ) -> tuple[bool, int]:
        """Apply one batch with bounded retry; returns (ok, records applied)."""
        if partial is None:
            partial = _PartialBatch(
                start_lsn=records[0].lsn, record_count=len(records)
            )
        # A failure can land mid-batch, after some tables already applied;
        # measure progress from the counter so those records are reported.
        start_applied = self.records_applied
        for attempt in range(self.max_retries + 1):
            try:
                self._apply_batch(records, partial.applied_tables)
            except RETRYABLE_ERRORS as exc:
                self.last_error = exc
                if self._health is not None:
                    self._health.record_failure()
                if attempt == self.max_retries:
                    self.batches_abandoned += 1
                    self._partial = partial
                    return False, self.records_applied - start_applied
                self.retries += 1
                self._backoff(attempt)
            else:
                self.last_error = None
                self._partial = None
                if self._health is not None:
                    self._health.record_success()
                return True, self.records_applied - start_applied
        raise AssertionError("unreachable")  # pragma: no cover

    def _backoff(self, attempt: int) -> None:
        """Exponential backoff with deterministic (seeded) jitter."""
        base = min(
            self.backoff_cap_seconds,
            self.backoff_base_seconds * (2.0 ** attempt),
        )
        delay = base * (0.5 + self._retry_rng.random() / 2.0)
        self.simulated_backoff_seconds += delay
        if self._sleep is not None:
            self._sleep(delay)

    def _apply_batch(
        self,
        records: list[ChangeRecord],
        applied_tables: set[str],
    ) -> int:
        per_table: dict[str, list[ChangeRecord]] = {}
        skipped_now = 0
        for record in records:
            start = self._table_start.get(record.table)
            if start is None or record.lsn < start:
                if record.table not in applied_tables:
                    skipped_now += 1
                continue
            per_table.setdefault(record.table, []).append(record)
        # Irrelevant records are "skipped" once per batch, not per retry;
        # they ride under a sentinel so a retry does not recount them.
        if "\0skips" not in applied_tables:
            self.records_skipped += skipped_now
            applied_tables.add("\0skips")
        applied = 0
        for table, table_records in per_table.items():
            if table in applied_tables:
                continue  # already on the accelerator from a prior attempt
            schema = self._catalog.table(table).schema
            nbytes = sum(r.byte_size(schema) for r in table_records)
            self._interconnect.send_to_accelerator(nbytes)
            # Crash point: the sub-batch is on the wire but not applied —
            # the canonical partially-delivered-batch crash. The engine's
            # applied-LSN watermark makes the post-restart redelivery a
            # no-op for anything that did land.
            if self._faults is not None:
                self._faults.crash_point("replication.mid_batch")
            applied_now = self._accelerator.apply_changes(
                table, table_records
            )
            applied_tables.add(table)
            applied += applied_now
            self.records_applied += applied_now
            if self.change_listener is not None and applied_now:
                # Incremental statistics maintenance: the change feed is
                # the same stream the accelerator just applied, so the
                # optimizer's row counts / min-max / histograms track
                # replicated DML without rescanning.
                self.change_listener(table, table_records)
        if applied:
            self.batches_applied += 1
        return applied

"""Incremental update: drain the DB2 change log into accelerator copies.

Accelerated tables keep a snapshot copy on the accelerator; committed DB2
changes are captured in the change log and applied here in batches. The
batch size trades apply throughput against copy staleness (experiment
E8), and every shipped record is charged to the interconnect — which is
exactly the recurring price the paper's legacy ELT flow pays when a
pipeline stage is materialised in DB2 and then re-replicated.
"""

from __future__ import annotations

from typing import Optional

from repro.accelerator.engine import AcceleratorEngine
from repro.catalog import Catalog
from repro.db2.changelog import ChangeLog, ChangeRecord
from repro.federation.network import Interconnect

__all__ = ["ReplicationService"]


class ReplicationService:
    """Single-cursor log reader applying per-table batches."""

    def __init__(
        self,
        change_log: ChangeLog,
        accelerator: AcceleratorEngine,
        interconnect: Interconnect,
        catalog: Catalog,
        batch_size: int = 1000,
    ) -> None:
        self._change_log = change_log
        self._accelerator = accelerator
        self._interconnect = interconnect
        self._catalog = catalog
        self.batch_size = batch_size
        self._cursor = change_log.head_lsn
        #: Per-table LSN from which this table's changes are relevant
        #: (records older than the initial copy are skipped).
        self._table_start: dict[str, int] = {}
        self.records_applied = 0
        self.batches_applied = 0
        self.records_skipped = 0

    def register_table(self, name: str, start_lsn: int) -> None:
        """Start replicating ``name`` for records with LSN >= start_lsn."""
        self._table_start[name.upper()] = start_lsn

    def unregister_table(self, name: str) -> None:
        self._table_start.pop(name.upper(), None)

    @property
    def backlog(self) -> int:
        """Committed records not yet applied (copy staleness in records)."""
        return self._change_log.backlog(self._cursor)

    def drain(
        self,
        batch_size: Optional[int] = None,
        max_batches: Optional[int] = None,
    ) -> int:
        """Apply pending changes; returns how many records were applied."""
        size = batch_size or self.batch_size
        applied = 0
        batches = 0
        while max_batches is None or batches < max_batches:
            records = self._change_log.read_from(self._cursor, limit=size)
            if not records:
                break
            applied += self._apply_batch(records)
            self._cursor = records[-1].lsn + 1
            batches += 1
            if len(records) < size:
                break
        return applied

    def _apply_batch(self, records: list[ChangeRecord]) -> int:
        per_table: dict[str, list[ChangeRecord]] = {}
        for record in records:
            start = self._table_start.get(record.table)
            if start is None or record.lsn < start:
                self.records_skipped += 1
                continue
            per_table.setdefault(record.table, []).append(record)
        applied = 0
        for table, table_records in per_table.items():
            schema = self._catalog.table(table).schema
            nbytes = sum(r.byte_size(schema) for r in table_records)
            self._interconnect.send_to_accelerator(nbytes)
            self._accelerator.apply_changes(table, table_records)
            applied += len(table_records)
        self.records_applied += applied
        self.batches_applied += 1 if records else 0
        return applied

"""Accelerator health tracking — a circuit breaker for the federation.

DB2 needs a local, cheap answer to "is the accelerator worth trying right
now?". The :class:`HealthMonitor` keeps that answer as three states:

* **ONLINE** — recent operations succeeded; route normally.
* **DEGRADED** — failures are being observed but the consecutive-failure
  threshold has not been reached; the accelerator is still used.
* **OFFLINE** — the circuit is *open*: the threshold was crossed, and
  requests are rejected locally (no doomed round-trips). After
  ``cooldown_seconds`` the breaker goes *half-open* and admits probe
  requests; the first success closes the circuit, the first failure
  re-opens it and restarts the cooldown.

The monitor is deliberately passive: the router/session/replication code
calls :meth:`record_success` / :meth:`record_failure` around accelerator
operations and :meth:`allow_request` before them. ``clock`` is injectable
so tests can drive the cooldown deterministically.
"""

from __future__ import annotations

import threading
import time
from enum import Enum
from typing import Callable, Optional

__all__ = ["AcceleratorHealthState", "HealthMonitor"]


class AcceleratorHealthState(Enum):
    ONLINE = "ONLINE"
    DEGRADED = "DEGRADED"
    OFFLINE = "OFFLINE"


class HealthMonitor:
    """Consecutive-failure circuit breaker with half-open probes."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        #: Concurrent sessions report outcomes from their own threads.
        self._guard = threading.Lock()
        self._open = False
        self._half_open = False
        self._opened_at: Optional[float] = None
        self.consecutive_failures = 0
        # Lifetime counters (surfaced by SYSPROC.ACCEL_GET_HEALTH).
        self.failures_total = 0
        self.successes_total = 0
        self.times_opened = 0
        self.times_closed = 0
        self.probes_attempted = 0
        self.requests_rejected = 0

    # -- state -------------------------------------------------------------------

    @property
    def state(self) -> AcceleratorHealthState:
        if self._open:
            return AcceleratorHealthState.OFFLINE
        if self.consecutive_failures > 0:
            return AcceleratorHealthState.DEGRADED
        return AcceleratorHealthState.ONLINE

    @property
    def available(self) -> bool:
        """Non-mutating: would a request be admitted right now?"""
        if not self._open:
            return True
        return self._cooldown_elapsed()

    def _cooldown_elapsed(self) -> bool:
        assert self._opened_at is not None
        return self.clock() - self._opened_at >= self.cooldown_seconds

    # -- admission ---------------------------------------------------------------

    def allow_request(self) -> bool:
        """Admit or reject a request; may transition OFFLINE → half-open."""
        with self._guard:
            if not self._open:
                return True
            if self._cooldown_elapsed():
                if not self._half_open:
                    self._half_open = True
                self.probes_attempted += 1
                return True
            self.requests_rejected += 1
            return False

    # -- outcome reporting -------------------------------------------------------

    def record_success(self) -> None:
        with self._guard:
            self.successes_total += 1
            self.consecutive_failures = 0
            if self._open:
                self._open = False
                self._half_open = False
                self._opened_at = None
                self.times_closed += 1

    def record_failure(self) -> None:
        with self._guard:
            self.failures_total += 1
            self.consecutive_failures += 1
            if self._open:
                if self._half_open:
                    # Failed probe: re-open and restart the cooldown.
                    self._half_open = False
                    self._opened_at = self.clock()
                return
            if self.consecutive_failures >= self.failure_threshold:
                self._trip()

    def _trip(self) -> None:
        self._open = True
        self._half_open = False
        self._opened_at = self.clock()
        self.times_opened += 1

    # -- manual control ----------------------------------------------------------

    def force_offline(self) -> None:
        """Administratively open the circuit (maintenance window)."""
        with self._guard:
            if not self._open:
                self._trip()

    def reset(self) -> None:
        """Close the circuit and forget the failure run (not the totals)."""
        with self._guard:
            if self._open:
                self.times_closed += 1
            self._open = False
            self._half_open = False
            self._opened_at = None
            self.consecutive_failures = 0

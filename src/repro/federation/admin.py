"""SYSPROC administration procedures.

The real IDAA is administered through DB2 stored procedures
(ACCEL_ADD_TABLES, ACCEL_REMOVE_TABLES, ACCEL_LOAD_TABLES, ...); data
studio tooling just CALLs them. This module registers the equivalents so
the simulation is managed the same way:

* ``SYSPROC.ACCEL_ADD_TABLES('tables=T1;T2')`` — start acceleration
  (initial copy + replication registration);
* ``SYSPROC.ACCEL_REMOVE_TABLES('tables=T1')`` — stop acceleration;
* ``SYSPROC.ACCEL_LOAD_TABLES('tables=T1')`` — re-snapshot a stale copy
  (full reload, resetting the replication cursor for the table);
* ``SYSPROC.ACCEL_GET_TABLES_INFO('')`` — one log line per table with
  placement and row counts;
* ``SYSPROC.ACCEL_GROOM_TABLES('tables=T1')`` — reclaim deleted rows in
  accelerator storage (Netezza GROOM);
* ``SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=replicate')`` — drain the
  replication backlog on demand;
* ``SYSPROC.ACCEL_GET_HEALTH('')`` — accelerator health state, circuit
  breaker counters, replication backlog/staleness and retry totals;
* ``SYSPROC.ACCEL_GET_TRACE('trace=T000042')`` — retained statement
  traces rendered as indented span trees;
* ``SYSPROC.ACCEL_GET_METRICS('prefix=statement.')`` — the metrics
  registry flattened to ``name = value`` lines.

All of them require administrator authority (SYSADM), mirroring the
production requirement that accelerator administration is a privileged
operation.
"""

from __future__ import annotations

from repro.analytics.framework import Procedure, ProcedureContext, ProcedureRegistry
from repro.errors import AuthorizationError, ProcedureError

__all__ = ["register_admin_procedures"]


def _require_admin(ctx: ProcedureContext) -> None:
    if not ctx.connection.user.is_admin:
        raise AuthorizationError(
            "accelerator administration requires SYSADM authority"
        )


def _table_list(ctx: ProcedureContext) -> list[str]:
    tables = ctx.column_list("tables")
    if not tables:
        raise ProcedureError("missing required parameter 'tables'")
    return tables


def _accel_add_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    copied = 0
    for table in _table_list(ctx):
        rows = ctx.system.add_table_to_accelerator(table)
        ctx.log(f"{table}: {rows} rows copied")
        copied += rows
    return f"ACCEL_ADD_TABLES ok: {copied} rows copied"


def _accel_remove_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    for table in _table_list(ctx):
        ctx.system.remove_table_from_accelerator(table)
        ctx.log(f"{table}: acceleration removed")
    return "ACCEL_REMOVE_TABLES ok"


def _accel_load_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    reloaded = 0
    for table in _table_list(ctx):
        rows = ctx.system.reload_accelerated_table(table)
        ctx.log(f"{table}: reloaded {rows} rows")
        reloaded += rows
    return f"ACCEL_LOAD_TABLES ok: {reloaded} rows"


def _accel_get_tables_info(ctx: ProcedureContext) -> str:
    system = ctx.system
    count = 0
    for descriptor in system.catalog.tables():
        db2_rows = (
            system.db2.storage_for(descriptor.name).row_count
            if system.db2.has_storage(descriptor.name)
            else None
        )
        accel_rows = (
            system.accelerator.storage_for(descriptor.name).row_count
            if system.accelerator.has_storage(descriptor.name)
            else None
        )
        ctx.log(
            f"{descriptor.name}: location={descriptor.location.value} "
            f"owner={descriptor.owner} db2_rows={db2_rows} "
            f"accel_rows={accel_rows}"
        )
        count += 1
    return f"ACCEL_GET_TABLES_INFO: {count} tables"


def _accel_groom_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    reclaimed = 0
    for table in _table_list(ctx):
        stats = ctx.system.accelerator.groom(table)
        ctx.log(
            f"{table}: reclaimed {stats.rows_reclaimed} rows, "
            f"{stats.chunks_before} -> {stats.chunks_after} chunks"
        )
        reclaimed += stats.rows_reclaimed
    return f"ACCEL_GROOM_TABLES ok: {reclaimed} rows reclaimed"


def _accel_control(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    action = (ctx.get("action") or "").lower()
    if action == "replicate":
        applied = ctx.system.replication.drain()
        return f"ACCEL_CONTROL_ACCELERATOR ok: {applied} changes applied"
    if action == "status":
        backlog = ctx.system.replication.backlog
        stats = ctx.system.movement_snapshot()
        ctx.log(f"replication backlog: {backlog} records")
        ctx.log(
            f"interconnect: {stats.bytes_to_accelerator} bytes out, "
            f"{stats.bytes_from_accelerator} bytes back"
        )
        return "ACCEL_CONTROL_ACCELERATOR ok: status reported"
    raise ProcedureError(
        f"unknown action {action!r} (expected replicate or status)"
    )


def _accel_get_health(ctx: ProcedureContext) -> str:
    """Accelerator availability, circuit-breaker and replication health.

    Read-only (like ACCEL_GET_TABLES_INFO): monitoring must work for
    non-admin sessions too.
    """
    system = ctx.system
    health = system.health
    ctx.log(
        f"accelerator: state={health.state.value} "
        f"consecutive_failures={health.consecutive_failures} "
        f"failures_total={health.failures_total} "
        f"successes_total={health.successes_total}"
    )
    ctx.log(
        f"circuit: opened={health.times_opened} closed={health.times_closed} "
        f"probes={health.probes_attempted} "
        f"rejected={health.requests_rejected} "
        f"cooldown={health.cooldown_seconds}s"
    )
    stats = system.replication.stats()
    ctx.log(
        f"replication: backlog={stats.backlog} records "
        f"(cursor_lsn={stats.cursor_lsn} head_lsn={stats.head_lsn}) "
        f"applied={stats.records_applied} retries={stats.retries} "
        f"abandoned={stats.batches_abandoned} "
        f"skipped_drains={stats.drains_skipped_offline} "
        f"backoff={stats.simulated_backoff_seconds * 1000:.1f}ms"
    )
    ctx.log(
        f"failbacks={system.failbacks} "
        f"faults_injected={system.faults.total_injected} "
        f"link_sends_failed={system.interconnect.sends_failed}"
    )
    return f"ACCEL_GET_HEALTH: {health.state.value}"


def _accel_get_trace(ctx: ProcedureContext) -> str:
    """Render retained statement traces as indented span trees.

    ``trace=T000042`` selects one trace by id; otherwise the newest
    ``limit`` (default 5) traces are rendered. Read-only, like
    ACCEL_GET_HEALTH — tracing must be inspectable from any session.
    """
    tracer = ctx.system.tracer
    if not tracer.enabled:
        ctx.log("tracing is disabled")
    trace_id = ctx.get("trace")
    if trace_id:
        trace = tracer.find(trace_id)
        if trace is None:
            raise ProcedureError(f"no retained trace {trace_id!r}")
        traces = [trace]
    else:
        limit = ctx.get_int("limit", 5)
        traces = tracer.traces()[-limit:]
    for trace in traces:
        ctx.log(
            f"{trace.trace_id} {trace.name} "
            f"{trace.elapsed_seconds * 1000:.3f}ms "
            f"({len(trace.spans)} spans)"
        )
        for line in trace.render():
            ctx.log(f"  {line}")
    return f"ACCEL_GET_TRACE: {len(traces)} traces"


def _accel_get_metrics(ctx: ProcedureContext) -> str:
    """Dump the metrics registry (optionally ``prefix=``-filtered).

    One ``name = value`` log line per metric, flattened across owned
    instruments and registered sources. Read-only.
    """
    prefix = ctx.get("prefix") or ""
    metrics = ctx.system.metrics.collect()
    matched = 0
    for name, value in sorted(metrics.items()):
        if prefix and not name.startswith(prefix):
            continue
        if isinstance(value, float):
            ctx.log(f"{name} = {value:.6f}")
        else:
            ctx.log(f"{name} = {value}")
        matched += 1
    return f"ACCEL_GET_METRICS: {matched} metrics"


def _accel_get_query_history(ctx: ProcedureContext) -> str:
    limit = ctx.get_int("limit", 20)
    history = list(ctx.system.statement_history)[-limit:]
    for record in history:
        ctx.log(
            f"{record.user} {record.statement_type:<12} "
            f"{record.engine:<12} {record.elapsed_seconds * 1000:9.2f}ms "
            f"rows={record.rowcount}"
        )
    return f"ACCEL_GET_QUERY_HISTORY: {len(history)} statements"


def register_admin_procedures(registry: ProcedureRegistry) -> None:
    for name, handler, description in (
        ("SYSPROC.ACCEL_ADD_TABLES", _accel_add_tables,
         "start accelerating DB2 tables"),
        ("SYSPROC.ACCEL_REMOVE_TABLES", _accel_remove_tables,
         "stop accelerating tables"),
        ("SYSPROC.ACCEL_LOAD_TABLES", _accel_load_tables,
         "re-snapshot accelerated copies"),
        ("SYSPROC.ACCEL_GET_TABLES_INFO", _accel_get_tables_info,
         "list table placement and sizes"),
        ("SYSPROC.ACCEL_GROOM_TABLES", _accel_groom_tables,
         "reclaim deleted rows in accelerator storage"),
        ("SYSPROC.ACCEL_CONTROL_ACCELERATOR", _accel_control,
         "replication drain / status"),
        ("SYSPROC.ACCEL_GET_HEALTH", _accel_get_health,
         "accelerator health, circuit breaker, and replication backlog"),
        ("SYSPROC.ACCEL_GET_QUERY_HISTORY", _accel_get_query_history,
         "recent statements with engine and latency"),
        ("SYSPROC.ACCEL_GET_TRACE", _accel_get_trace,
         "render retained statement traces as span trees"),
        ("SYSPROC.ACCEL_GET_METRICS", _accel_get_metrics,
         "dump the metrics registry (counters/gauges/histograms/sources)"),
    ):
        registry.register(
            Procedure(
                name=name,
                handler=handler,
                description=description,
                input_params=(),
                output_params=(),
            )
        )

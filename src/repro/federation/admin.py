"""SYSPROC administration procedures.

The real IDAA is administered through DB2 stored procedures
(ACCEL_ADD_TABLES, ACCEL_REMOVE_TABLES, ACCEL_LOAD_TABLES, ...); data
studio tooling just CALLs them. This module registers the equivalents so
the simulation is managed the same way:

* ``SYSPROC.ACCEL_ADD_TABLES('tables=T1;T2')`` — start acceleration
  (initial copy + replication registration);
* ``SYSPROC.ACCEL_REMOVE_TABLES('tables=T1')`` — stop acceleration;
* ``SYSPROC.ACCEL_LOAD_TABLES('tables=T1')`` — re-snapshot a stale copy
  (full reload, resetting the replication cursor for the table);
* ``SYSPROC.ACCEL_GET_TABLES_INFO('')`` — one log line per table with
  placement and row counts;
* ``SYSPROC.ACCEL_GROOM_TABLES('tables=T1')`` — reclaim deleted rows in
  accelerator storage (Netezza GROOM);
* ``SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=replicate')`` — drain the
  replication backlog on demand; ``action=configure`` reconfigures the
  observability stack at runtime (trace retention, profiler on/off and
  retention, slow-query log threshold/capacity); on a sharded pool,
  ``action=kill_shard`` / ``action=rebuild_shard`` (with ``shard=N``)
  fail and rebuild one accelerator instance and ``action=rebalance``
  re-places every accelerated table under its current partition spec;
* ``SYSPROC.ACCEL_GET_HEALTH('')`` — accelerator health state, circuit
  breaker counters, replication backlog/staleness and retry totals;
  on a sharded pool, one additional line per shard with its own
  circuit state and traffic counters;
* ``SYSPROC.ACCEL_GET_TRACE('trace=T000042')`` — retained statement
  traces rendered as indented span trees;
* ``SYSPROC.ACCEL_GET_PROFILE('profile=P000042')`` — retained
  per-operator execution profiles (``worst=N`` renders the worst
  mis-estimated operators from the cardinality-feedback store);
* ``SYSPROC.ACCEL_GET_METRICS('prefix=statement.')`` — the metrics
  registry flattened to ``name = value`` lines;
* ``SYSPROC.ACCEL_SET_WLM('enabled=on')`` — workload-manager runtime
  configuration: enable/disable, gate slot counts, queue wait bound,
  and service-class policy (priority/slots/queue depth/timeout/
  sheddability);
* ``SYSPROC.ACCEL_GET_WLM('')`` — the live WLM state: gates with
  slots-in-use and queue lengths, per-class admission counters, and
  statement-outcome totals (read-only, like ACCEL_GET_HEALTH);
* ``SYSPROC.ACCEL_GET_MODELS('')`` — one log line per trained model
  with kind, owner, training volume, and quality metrics (read-only);
* ``SYSPROC.ACCEL_CHECKPOINT('')`` — write a durable replication
  checkpoint (cursor, table images, watermarks, lineage epochs);
* ``SYSPROC.ACCEL_RECOVER('')`` — restart resync: restore the newest
  valid checkpoint, replay the changelog suffix, full-reload what the
  checkpoint cannot cover, rebuild stale AOTs.

All of them require administrator authority (SYSADM), mirroring the
production requirement that accelerator administration is a privileged
operation.
"""

from __future__ import annotations

from repro.analytics.framework import Procedure, ProcedureContext, ProcedureRegistry
from repro.errors import AuthorizationError, ProcedureError, UnknownObjectError
from repro.sql.stats import DEFAULT_HISTOGRAM_BINS
from repro.wlm import ServiceClass

__all__ = ["register_admin_procedures"]


def _require_admin(ctx: ProcedureContext) -> None:
    if not ctx.connection.user.is_admin:
        raise AuthorizationError(
            "accelerator administration requires SYSADM authority"
        )


def _table_list(ctx: ProcedureContext) -> list[str]:
    tables = ctx.column_list("tables")
    if not tables:
        raise ProcedureError("missing required parameter 'tables'")
    return tables


def _accel_add_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    copied = 0
    for table in _table_list(ctx):
        rows = ctx.system.add_table_to_accelerator(table)
        ctx.log(f"{table}: {rows} rows copied")
        copied += rows
    return f"ACCEL_ADD_TABLES ok: {copied} rows copied"


def _accel_remove_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    for table in _table_list(ctx):
        ctx.system.remove_table_from_accelerator(table)
        ctx.log(f"{table}: acceleration removed")
    return "ACCEL_REMOVE_TABLES ok"


def _accel_load_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    reloaded = 0
    for table in _table_list(ctx):
        rows = ctx.system.reload_accelerated_table(table)
        ctx.log(f"{table}: reloaded {rows} rows")
        reloaded += rows
    return f"ACCEL_LOAD_TABLES ok: {reloaded} rows"


def _accel_get_tables_info(ctx: ProcedureContext) -> str:
    system = ctx.system
    count = 0
    for descriptor in system.catalog.tables():
        db2_rows = (
            system.db2.storage_for(descriptor.name).row_count
            if system.db2.has_storage(descriptor.name)
            else None
        )
        accel_rows = (
            system.accelerator.storage_for(descriptor.name).row_count
            if system.accelerator.has_storage(descriptor.name)
            else None
        )
        ctx.log(
            f"{descriptor.name}: location={descriptor.location.value} "
            f"owner={descriptor.owner} db2_rows={db2_rows} "
            f"accel_rows={accel_rows}"
        )
        count += 1
    return f"ACCEL_GET_TABLES_INFO: {count} tables"


def _accel_groom_tables(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    reclaimed = 0
    for table in _table_list(ctx):
        stats = ctx.system.accelerator.groom(table)
        ctx.log(
            f"{table}: reclaimed {stats.rows_reclaimed} rows, "
            f"{stats.chunks_before} -> {stats.chunks_after} chunks"
        )
        reclaimed += stats.rows_reclaimed
    return f"ACCEL_GROOM_TABLES ok: {reclaimed} rows reclaimed"


def _accel_runstats(ctx: ProcedureContext) -> str:
    """RUNSTATS analogue: full-scan statistics for the cost-based
    optimizer. ``tables=`` limits collection (default: every stored
    table); ``bins=`` sets the equi-width histogram resolution."""
    _require_admin(ctx)
    tables = ctx.column_list("tables")
    bins = ctx.get_int("bins", DEFAULT_HISTOGRAM_BINS)
    if bins < 1:
        raise ProcedureError("'bins' must be >= 1")
    try:
        collected = ctx.system.run_statistics(tables, bins=bins)
    except UnknownObjectError as exc:
        raise ProcedureError(str(exc)) from None
    for name in collected:
        stats = ctx.system.stats.table(name)
        columns = len(stats.columns) if stats is not None else 0
        rows = stats.row_count if stats is not None else 0
        ctx.log(f"{name}: {rows} rows, {columns} columns profiled")
    return f"ACCEL_RUNSTATS ok: {len(collected)} tables"


def _accel_control_configure(ctx: ProcedureContext) -> str:
    """``action=configure`` — observability runtime configuration.

    Accepted parameters (combine freely):

    * ``trace_retention=N`` — resize the trace ring buffer (>= 1);
    * ``profiling=on|off`` — enable/disable the per-operator profiler;
    * ``profile_retention=N`` — resize the retained-profile ring (>= 1);
    * ``slow_threshold=SECONDS`` — slow-query log threshold (>= 0;
      0 captures every statement);
    * ``slow_capacity=N`` — slow-query log ring size (>= 1).
    """
    system = ctx.system
    changed: list[str] = []

    trace_retention = ctx.get_int("trace_retention")
    if trace_retention is not None:
        try:
            system.tracer.set_retention(trace_retention)
        except ValueError as exc:
            raise ProcedureError(str(exc)) from None
        changed.append(f"trace_retention={trace_retention}")

    profiling = ctx.get("profiling")
    if profiling is not None:
        system.profiler.enabled = _parse_flag(profiling, "profiling")
        changed.append(
            f"profiling={'on' if system.profiler.enabled else 'off'}"
        )

    profile_retention = ctx.get_int("profile_retention")
    if profile_retention is not None:
        try:
            system.profiler.set_retention(profile_retention)
        except ValueError as exc:
            raise ProcedureError(str(exc)) from None
        changed.append(f"profile_retention={profile_retention}")

    slow_threshold = ctx.get_float("slow_threshold")
    if slow_threshold is not None:
        try:
            system.profiler.slow_log.set_threshold(slow_threshold)
        except ValueError as exc:
            raise ProcedureError(str(exc)) from None
        changed.append(f"slow_threshold={slow_threshold:g}s")

    slow_capacity = ctx.get_int("slow_capacity")
    if slow_capacity is not None:
        try:
            system.profiler.slow_log.set_capacity(slow_capacity)
        except ValueError as exc:
            raise ProcedureError(str(exc)) from None
        changed.append(f"slow_capacity={slow_capacity}")

    if not changed:
        raise ProcedureError(
            "action=configure requires at least one of trace_retention=, "
            "profiling=, profile_retention=, slow_threshold=, slow_capacity="
        )
    for entry in changed:
        ctx.log(entry)
    return f"ACCEL_CONTROL_ACCELERATOR ok: {len(changed)} settings changed"


def _accel_control(ctx: ProcedureContext) -> str:
    _require_admin(ctx)
    action = (ctx.get("action") or "").lower()
    if action == "replicate":
        applied = ctx.system.replication.drain()
        return f"ACCEL_CONTROL_ACCELERATOR ok: {applied} changes applied"
    if action == "trim":
        dropped = ctx.system.recovery.trim_changelog()
        oldest = ctx.system.db2.change_log.oldest_lsn
        ctx.log(f"changelog trimmed: {dropped} records, oldest_lsn={oldest}")
        return f"ACCEL_CONTROL_ACCELERATOR ok: {dropped} records trimmed"
    if action == "status":
        backlog = ctx.system.replication.backlog
        stats = ctx.system.movement_snapshot()
        ctx.log(f"replication backlog: {backlog} records")
        ctx.log(
            f"interconnect: {stats.bytes_to_accelerator} bytes out, "
            f"{stats.bytes_from_accelerator} bytes back"
        )
        return "ACCEL_CONTROL_ACCELERATOR ok: status reported"
    if action == "configure":
        return _accel_control_configure(ctx)
    if action in ("kill_shard", "rebuild_shard", "rebalance"):
        return _accel_control_shards(ctx, action)
    raise ProcedureError(
        f"unknown action {action!r} "
        "(expected replicate, trim, status, configure, kill_shard, "
        "rebuild_shard, or rebalance)"
    )


def _accel_control_shards(ctx: ProcedureContext, action: str) -> str:
    """Pool shard lifecycle: fail one instance, rebuild it, rebalance."""
    pool = ctx.system.accelerator_pool
    if pool is None:
        raise ProcedureError(
            f"action={action} needs a sharded pool (SHARDS > 1); "
            "this system runs a single accelerator"
        )
    if action == "rebalance":
        moved = 0
        tables = 0
        for descriptor in ctx.system.catalog.tables():
            if not descriptor.is_accelerated:
                continue
            if not pool.has_storage(descriptor.name):
                continue
            spec = pool.storage_for(descriptor.name).map.spec
            moved += pool.redistribute(descriptor.name, spec)
            tables += 1
            ctx.log(f"{descriptor.name}: rebalanced under {spec.method}")
        return (
            f"ACCEL_CONTROL_ACCELERATOR ok: {tables} tables rebalanced "
            f"({moved} rows placed)"
        )
    shard_id = ctx.get_int("shard")
    if shard_id is None:
        raise ProcedureError(f"action={action} requires 'shard='")
    if action == "kill_shard":
        lost = pool.kill_shard(shard_id)
        ctx.log(f"shard {shard_id} down: {lost} resident rows lost")
        return f"ACCEL_CONTROL_ACCELERATOR ok: shard {shard_id} killed"
    reloaded = ctx.system.rebuild_shard(shard_id)
    ctx.log(f"shard {shard_id} rebuilt: {reloaded} tables reloaded")
    return (
        f"ACCEL_CONTROL_ACCELERATOR ok: shard {shard_id} rebuilt "
        f"({reloaded} tables reloaded)"
    )


def _accel_get_health(ctx: ProcedureContext) -> str:
    """Accelerator availability, circuit-breaker and replication health.

    Read-only (like ACCEL_GET_TABLES_INFO): monitoring must work for
    non-admin sessions too.
    """
    system = ctx.system
    health = system.health
    ctx.log(
        f"accelerator: state={health.state.value} "
        f"consecutive_failures={health.consecutive_failures} "
        f"failures_total={health.failures_total} "
        f"successes_total={health.successes_total}"
    )
    ctx.log(
        f"circuit: opened={health.times_opened} closed={health.times_closed} "
        f"probes={health.probes_attempted} "
        f"rejected={health.requests_rejected} "
        f"cooldown={health.cooldown_seconds}s"
    )
    pool = system.accelerator_pool
    if pool is not None:
        for shard in pool.shard_list:
            circuit = shard.health
            state = circuit.state.value if shard.alive else "DOWN"
            link = shard.interconnect.snapshot()
            ctx.log(
                f"shard{shard.shard_id}: state={state} "
                f"rows={shard.row_count} scans={shard.scans} "
                f"rows_scanned={shard.rows_scanned} "
                f"rows_written={shard.rows_written} "
                f"failures={circuit.failures_total} "
                f"opened={circuit.times_opened} "
                f"rejected={circuit.requests_rejected} "
                f"bytes_out={link.bytes_to_accelerator} "
                f"bytes_back={link.bytes_from_accelerator}"
            )
    stats = system.replication.stats()
    ctx.log(
        f"replication: backlog={stats.backlog} records "
        f"(cursor_lsn={stats.cursor_lsn} head_lsn={stats.head_lsn}) "
        f"applied={stats.records_applied} retries={stats.retries} "
        f"abandoned={stats.batches_abandoned} "
        f"skipped_drains={stats.drains_skipped_offline} "
        f"backoff={stats.simulated_backoff_seconds * 1000:.1f}ms"
    )
    recovery = system.recovery
    age = recovery.last_checkpoint_age_seconds()
    ctx.log(
        "recovery: last_checkpoint="
        + (
            f"#{recovery.last_checkpoint_id} age={age:.1f}s"
            if recovery.last_checkpoint_id is not None
            else "none"
        )
        + f" retained={len(recovery.checkpoint_ids())}"
        + f" replay_lag={recovery.replay_lag_records()} records"
        + f" recoveries={recovery.recoveries}"
    )
    ctx.log(
        f"failbacks={system.failbacks} "
        f"faults_injected={system.faults.total_injected} "
        f"link_sends_failed={system.interconnect.sends_failed}"
    )
    return f"ACCEL_GET_HEALTH: {health.state.value}"


def _accel_get_trace(ctx: ProcedureContext) -> str:
    """Render retained statement traces as indented span trees.

    ``trace=T000042`` selects one trace by id; otherwise the newest
    ``limit`` (default 5) traces are rendered. Read-only, like
    ACCEL_GET_HEALTH — tracing must be inspectable from any session.
    """
    tracer = ctx.system.tracer
    if not tracer.enabled:
        ctx.log("tracing is disabled")
    trace_id = ctx.get("trace")
    if trace_id:
        trace = tracer.find(trace_id)
        if trace is None:
            raise ProcedureError(f"no retained trace {trace_id!r}")
        traces = [trace]
    else:
        limit = ctx.get_int("limit", 5)
        traces = tracer.traces()[-limit:]
    for trace in traces:
        ctx.log(
            f"{trace.trace_id} {trace.name} "
            f"{trace.elapsed_seconds * 1000:.3f}ms "
            f"({len(trace.spans)} spans)"
        )
        for line in trace.render():
            ctx.log(f"  {line}")
    return f"ACCEL_GET_TRACE: {len(traces)} traces"


def _accel_get_profile(ctx: ProcedureContext) -> str:
    """Render retained per-operator execution profiles.

    ``profile=P000042`` selects one profile by id; ``worst=N`` instead
    renders the N worst mis-estimated operators from the
    cardinality-feedback store; otherwise the newest ``limit`` (default
    5) profiles are rendered. Read-only, like ACCEL_GET_TRACE.
    """
    profiler = ctx.system.profiler
    if not profiler.enabled:
        ctx.log("profiling is disabled")
    worst = ctx.get_int("worst")
    if worst is not None:
        if worst < 1:
            raise ProcedureError("'worst' must be >= 1")
        entries = profiler.feedback.worst(worst)
        for entry in entries:
            ctx.log(
                f"{entry.operator} [{entry.detail}] path={entry.path} "
                f"engine={entry.engine} mean_q={entry.mean_q_error:.2f} "
                f"max_q={entry.q_error_max:.2f} "
                f"executions={entry.executions} "
                f"last est={entry.last_estimated} act={entry.last_actual}"
            )
        return f"ACCEL_GET_PROFILE: {len(entries)} feedback entries"
    profile_id = ctx.get("profile")
    if profile_id:
        profile = profiler.find(profile_id)
        if profile is None:
            raise ProcedureError(f"no retained profile {profile_id!r}")
        profiles = [profile]
    else:
        limit = ctx.get_int("limit", 5)
        profiles = profiler.profiles()[-limit:]
    for profile in profiles:
        for line in profile.render():
            ctx.log(line)
    return f"ACCEL_GET_PROFILE: {len(profiles)} profiles"


def _accel_get_metrics(ctx: ProcedureContext) -> str:
    """Dump the metrics registry (optionally ``prefix=``-filtered).

    One ``name = value`` log line per metric, flattened across owned
    instruments and registered sources. Read-only.
    """
    prefix = ctx.get("prefix") or ""
    metrics = ctx.system.metrics.collect()
    matched = 0
    for name, value in sorted(metrics.items()):
        if prefix and not name.startswith(prefix):
            continue
        if isinstance(value, float):
            ctx.log(f"{name} = {value:.6f}")
        else:
            ctx.log(f"{name} = {value}")
        matched += 1
    return f"ACCEL_GET_METRICS: {matched} metrics"


_FLAGS_TRUE = ("on", "true", "1", "y", "yes")
_FLAGS_FALSE = ("off", "false", "0", "n", "no")


def _parse_flag(value: str, param: str) -> bool:
    flag = value.strip().lower()
    if flag in _FLAGS_TRUE:
        return True
    if flag in _FLAGS_FALSE:
        return False
    raise ProcedureError(f"parameter '{param}' must be on or off, got {value!r}")


def _accel_set_wlm(ctx: ProcedureContext) -> str:
    """Reconfigure the workload manager at runtime (SYSADM only).

    Accepted parameters (combine freely, class and engine changes are
    independent):

    * ``enabled=on|off`` — master switch;
    * ``engine=DB2|ACCELERATOR, slots=N`` — resize that gate's slot pool
      (queued waiters are re-examined immediately);
    * ``max_wait=SECONDS`` — bound on admission queueing for both gates;
    * ``class=NAME`` plus any of ``priority=``, ``class_slots=``,
      ``queue_depth=``, ``timeout=`` (seconds, ``none`` clears),
      ``sheddable=on|off`` — update (or, with enough fields, define)
      a service class.
    """
    _require_admin(ctx)
    wlm = ctx.system.wlm
    changed: list[str] = []

    enabled = ctx.get("enabled")
    if enabled is not None:
        wlm.set_enabled(_parse_flag(enabled, "enabled"))
        changed.append(f"enabled={'on' if wlm.enabled else 'off'}")

    engine = ctx.get("engine")
    if engine is not None:
        slots = ctx.get_int("slots")
        if slots is None:
            raise ProcedureError("'engine=' requires 'slots='")
        try:
            wlm.resize_gate(engine, slots)
        except KeyError:
            raise ProcedureError(
                f"unknown engine {engine!r} (expected DB2 or ACCELERATOR)"
            ) from None
        except ValueError as exc:
            raise ProcedureError(str(exc)) from None
        changed.append(f"{engine.upper()} gate slots={slots}")

    max_wait = ctx.get_float("max_wait")
    if max_wait is not None:
        if max_wait <= 0:
            raise ProcedureError("'max_wait' must be positive seconds")
        for gate in wlm.gates.values():
            gate.max_wait_seconds = max_wait
        changed.append(f"max_wait={max_wait:g}s")

    class_name = ctx.get("class")
    if class_name is not None:
        changes: dict = {}
        if ctx.get("priority") is not None:
            changes["priority"] = ctx.get_int("priority")
        if ctx.get("class_slots") is not None:
            changes["concurrency_slots"] = ctx.get_int("class_slots")
        if ctx.get("queue_depth") is not None:
            changes["queue_depth"] = ctx.get_int("queue_depth")
        timeout = ctx.get("timeout")
        if timeout is not None:
            if timeout.strip().lower() in ("none", "null", "0"):
                changes["default_timeout_seconds"] = None
            else:
                changes["default_timeout_seconds"] = ctx.get_float("timeout")
        sheddable = ctx.get("sheddable")
        if sheddable is not None:
            changes["sheddable"] = _parse_flag(sheddable, "sheddable")
        if not changes:
            raise ProcedureError(
                "'class=' requires at least one of priority/class_slots/"
                "queue_depth/timeout/sheddable"
            )
        try:
            if wlm.classes.has(class_name):
                cls = wlm.classes.update(class_name, **changes)
            else:
                cls = wlm.classes.define(
                    ServiceClass(
                        name=class_name,
                        priority=changes.get("priority", 9),
                        concurrency_slots=changes.get("concurrency_slots", 2),
                        queue_depth=changes.get("queue_depth", 16),
                        default_timeout_seconds=changes.get(
                            "default_timeout_seconds"
                        ),
                        sheddable=changes.get("sheddable", False),
                    )
                )
        except ValueError as exc:
            raise ProcedureError(str(exc)) from None
        changed.append(
            f"class {cls.name}: priority={cls.priority} "
            f"slots={cls.concurrency_slots} queue_depth={cls.queue_depth} "
            f"timeout={cls.default_timeout_seconds} "
            f"sheddable={'Y' if cls.sheddable else 'N'}"
        )

    if not changed:
        raise ProcedureError(
            "nothing to change: pass enabled=, engine=+slots=, max_wait=, "
            "or class=..."
        )
    for entry in changed:
        ctx.log(entry)
    return f"ACCEL_SET_WLM ok: {len(changed)} changes"


def _accel_get_wlm(ctx: ProcedureContext) -> str:
    """Live workload-manager state. Read-only: monitoring must work for
    non-admin sessions even while their own statements are being shed.
    """
    wlm = ctx.system.wlm
    ctx.log(
        f"wlm: enabled={'on' if wlm.enabled else 'off'} "
        f"cheap_rows={wlm.cheap_rows} heavy_rows={wlm.heavy_rows} "
        f"timed_out={wlm.statements_timed_out} "
        f"cancelled={wlm.statements_cancelled} shed={wlm.statements_shed}"
    )
    for engine, gate in sorted(wlm.gates.items()):
        snap = gate.snapshot()
        ctx.log(
            f"{engine}: slots={snap['slots_in_use']}/{snap['slots_total']} "
            f"queued={snap['queued']} admitted={snap['admitted']} "
            f"bypassed={snap['bypassed']} shed={snap['shed']} "
            f"queue_timeouts={snap['queue_timeouts']} "
            f"max_wait={gate.max_wait_seconds:g}s"
        )
        stats_by_class = gate.class_stats()
        for cls in wlm.classes:
            stats = stats_by_class.get(cls.name)
            if stats is None:
                continue
            ctx.log(
                f"{engine}.{cls.name}: running={stats.running} "
                f"queued={stats.queued} admitted={stats.admitted} "
                f"bypassed={stats.bypassed} shed={stats.shed} "
                f"wait_ms={stats.wait_seconds_total * 1000:.1f}"
            )
    shed = wlm.shedder.snapshot()
    ctx.log(
        f"shedder: queue_pressure={shed['shed_queue_pressure']} "
        f"circuit_open={shed['shed_circuit_open']} "
        f"high_water={wlm.shedder.queue_high_water:g}x"
    )
    return f"ACCEL_GET_WLM: enabled={'on' if wlm.enabled else 'off'}"


def _accel_get_models(ctx: ProcedureContext) -> str:
    """Inventory of trained models. Read-only: monitoring must work for
    any session, so no SYSADM check (mirrors ACCEL_GET_WLM).
    """
    store = ctx.system.models
    names = store.names()
    for name in names:
        model = store.get(name)
        target = model.target if model.target else "-"
        metrics = "; ".join(
            f"{key}={value}" for key, value in sorted(model.metrics.items())
        )
        ctx.log(
            f"{model.name}: kind={model.kind} owner={model.owner} "
            f"target={target} features={','.join(model.features)} "
            f"rows={model.rows_trained} epochs={model.epochs_trained} "
            f"generation={model.generation} "
            f"trained_generation={model.trained_generation}"
            + (f" metrics[{metrics}]" if metrics else "")
        )
    return f"ACCEL_GET_MODELS: {len(names)} models"


def _accel_checkpoint(ctx: ProcedureContext) -> str:
    """Write a durable replication checkpoint (SYSADM only)."""
    _require_admin(ctx)
    result = ctx.system.recovery.checkpoint()
    ctx.log(
        f"checkpoint #{result.checkpoint_id}: cursor_lsn={result.cursor_lsn} "
        f"tables={result.tables} rows={result.rows} "
        f"bytes={result.bytes_written}"
    )
    return f"ACCEL_CHECKPOINT ok: #{result.checkpoint_id}"


def _accel_recover(ctx: ProcedureContext) -> str:
    """Restart resync from the newest valid checkpoint (SYSADM only).

    Meant for a freshly restarted (empty) accelerator; running it against
    a healthy one is wasteful but safe — restores are idempotent and the
    replay is deduplicated by the applied-LSN watermarks.
    """
    _require_admin(ctx)
    result = ctx.system.recovery.recover()
    source = (
        f"checkpoint #{result.checkpoint_id}"
        if result.checkpoint_id is not None
        else "no checkpoint (full reloads)"
    )
    ctx.log(
        f"recovered from {source}: tables_restored={result.tables_restored} "
        f"rows_restored={result.rows_restored} "
        f"records_replayed={result.records_replayed} "
        f"full_reloads={result.full_reloads} "
        f"aots_rebuilt={result.aots_rebuilt} aots_lost={result.aots_lost} "
        f"resync_bytes_saved={result.resync_bytes_saved} "
        f"corrupt_skipped={result.corrupt_skipped}"
    )
    return f"ACCEL_RECOVER ok: {source}"


def _accel_get_query_history(ctx: ProcedureContext) -> str:
    limit = ctx.get_int("limit", 20)
    history = list(ctx.system.statement_history)[-limit:]
    for record in history:
        ctx.log(
            f"{record.user} {record.statement_type:<12} "
            f"{record.engine:<12} {record.elapsed_seconds * 1000:9.2f}ms "
            f"rows={record.rowcount}"
        )
    return f"ACCEL_GET_QUERY_HISTORY: {len(history)} statements"


def register_admin_procedures(registry: ProcedureRegistry) -> None:
    for name, handler, description in (
        ("SYSPROC.ACCEL_ADD_TABLES", _accel_add_tables,
         "start accelerating DB2 tables"),
        ("SYSPROC.ACCEL_REMOVE_TABLES", _accel_remove_tables,
         "stop accelerating tables"),
        ("SYSPROC.ACCEL_LOAD_TABLES", _accel_load_tables,
         "re-snapshot accelerated copies"),
        ("SYSPROC.ACCEL_GET_TABLES_INFO", _accel_get_tables_info,
         "list table placement and sizes"),
        ("SYSPROC.ACCEL_GROOM_TABLES", _accel_groom_tables,
         "reclaim deleted rows in accelerator storage"),
        ("SYSPROC.ACCEL_RUNSTATS", _accel_runstats,
         "collect table/column statistics for the cost-based optimizer"),
        ("SYSPROC.ACCEL_CONTROL_ACCELERATOR", _accel_control,
         "replication drain / status"),
        ("SYSPROC.ACCEL_GET_HEALTH", _accel_get_health,
         "accelerator health, circuit breaker, and replication backlog"),
        ("SYSPROC.ACCEL_GET_QUERY_HISTORY", _accel_get_query_history,
         "recent statements with engine and latency"),
        ("SYSPROC.ACCEL_GET_TRACE", _accel_get_trace,
         "render retained statement traces as span trees"),
        ("SYSPROC.ACCEL_GET_PROFILE", _accel_get_profile,
         "render retained per-operator execution profiles"),
        ("SYSPROC.ACCEL_GET_METRICS", _accel_get_metrics,
         "dump the metrics registry (counters/gauges/histograms/sources)"),
        ("SYSPROC.ACCEL_SET_WLM", _accel_set_wlm,
         "configure the workload manager (enable, slots, service classes)"),
        ("SYSPROC.ACCEL_GET_WLM", _accel_get_wlm,
         "live workload-manager gates, classes, and shed counters"),
        ("SYSPROC.ACCEL_GET_MODELS", _accel_get_models,
         "inventory of trained models with training volume and metrics"),
        ("SYSPROC.ACCEL_CHECKPOINT", _accel_checkpoint,
         "write a durable replication checkpoint"),
        ("SYSPROC.ACCEL_RECOVER", _accel_recover,
         "restart resync from the newest valid checkpoint"),
    ):
        registry.register(
            Procedure(
                name=name,
                handler=handler,
                description=description,
                input_params=(),
                output_params=(),
            )
        )

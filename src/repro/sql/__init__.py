"""SQL front end shared by both engines of the federation.

The dialect is a pragmatic subset of DB2 SQL extended with the paper's
``CREATE TABLE ... IN ACCELERATOR`` clause and ``CALL`` for the analytics
framework. Both the row-oriented DB2 engine and the columnar accelerator
compile statements through this package, so a query is parsed once and can
be routed to either engine.
"""

from repro.sql.lexer import tokenize
from repro.sql.parser import parse_statement, parse_script
from repro.sql import ast
from repro.sql import types

__all__ = ["tokenize", "parse_statement", "parse_script", "ast", "types"]

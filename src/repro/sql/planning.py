"""Planner utilities shared by the DB2 and accelerator executors.

Both engines compile the same AST; this module holds the engine-neutral
analyses: canonicalisation for GROUP BY matching, conjunct splitting,
scope-containment tests, ORDER BY alias/position resolution, and the SQL
NULLs-high sort helper.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Union

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.expressions import Scope

__all__ = [
    "canonicalize",
    "map_children",
    "split_conjuncts",
    "references_only",
    "positional_order_expression",
    "resolve_order_position",
    "NullsHighKey",
    "sort_rows_with_keys",
    "extract_column_ranges",
    "literal_number",
]


def canonicalize(expr: ast.Expression, scope: Scope) -> ast.Expression:
    """Rewrite column refs to scope positions so exprs compare structurally.

    ``T.AMOUNT`` and ``AMOUNT`` (when unambiguous) canonicalise to the same
    node, which makes GROUP BY expression matching reliable.
    """

    def transform(node: ast.Expression) -> ast.Expression:
        if isinstance(node, ast.ColumnRef):
            index = scope.resolve(node.name, node.table)
            return ast.ColumnRef(name=f"#{index}")
        return map_children(node, transform)

    return transform(expr)


def map_children(
    expr: ast.Expression, fn: Callable[[ast.Expression], ast.Expression]
) -> ast.Expression:
    """Rebuild ``expr`` with ``fn`` applied to each child expression."""
    if isinstance(expr, ast.BinaryOp):
        return dataclasses.replace(expr, left=fn(expr.left), right=fn(expr.right))
    if isinstance(expr, ast.UnaryOp):
        return dataclasses.replace(expr, operand=fn(expr.operand))
    if isinstance(expr, ast.FunctionCall):
        return dataclasses.replace(expr, args=[fn(a) for a in expr.args])
    if isinstance(expr, ast.CaseExpression):
        return dataclasses.replace(
            expr,
            branches=[
                ast.CaseBranch(condition=fn(b.condition), result=fn(b.result))
                for b in expr.branches
            ],
            default=fn(expr.default) if expr.default is not None else None,
        )
    if isinstance(expr, ast.InList):
        return dataclasses.replace(
            expr, operand=fn(expr.operand), items=[fn(i) for i in expr.items]
        )
    if isinstance(expr, ast.Between):
        return dataclasses.replace(
            expr,
            operand=fn(expr.operand),
            lower=fn(expr.lower),
            upper=fn(expr.upper),
        )
    if isinstance(expr, ast.IsNull):
        return dataclasses.replace(expr, operand=fn(expr.operand))
    if isinstance(expr, ast.Like):
        return dataclasses.replace(
            expr, operand=fn(expr.operand), pattern=fn(expr.pattern)
        )
    if isinstance(expr, ast.Cast):
        return dataclasses.replace(expr, operand=fn(expr.operand))
    if isinstance(expr, ast.Predict):
        return dataclasses.replace(expr, args=[fn(a) for a in expr.args])
    if isinstance(expr, ast.SubqueryExpression) and expr.operand is not None:
        return dataclasses.replace(expr, operand=fn(expr.operand))
    return expr


def split_conjuncts(expr: Optional[ast.Expression]) -> list[ast.Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def references_only(expr: ast.Expression, scope: Scope) -> bool:
    """True when every column ref in ``expr`` resolves inside ``scope``."""
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            try:
                scope.resolve(node.name, node.table)
            except ParseError:
                return False
        elif isinstance(node, ast.Star):
            return False
    return True


def resolve_order_position(position: int, width: int) -> int:
    """Validate ORDER BY <n> against ``width`` outputs; returns 0-based.

    The single source of the range error so both engines report it
    identically.
    """
    if not 1 <= position <= width:
        raise ParseError(f"ORDER BY position {position} is out of range")
    return position - 1


def positional_order_expression(
    select_items: list[ast.SelectItem], position: int
) -> ast.Expression:
    """ORDER BY <n>: the n-th (1-based) select-list expression."""
    return select_items[resolve_order_position(position, len(select_items))].expression


class NullsHighKey:
    """Sort key wrapper: SQL NULLs sort high (DB2 default)."""

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other: "NullsHighKey") -> bool:
        if self.value is None:
            return False
        if other.value is None:
            return True
        return self.value < other.value

    def __eq__(self, other) -> bool:  # pragma: no cover - sorts use __lt__
        return self.value == other.value


def sort_rows_with_keys(
    rows: list[tuple],
    keys: list[tuple],
    ascending: list[bool],
) -> list[tuple]:
    """Stable multi-key sort of ``rows`` by precomputed ``keys``."""
    indexes = list(range(len(rows)))
    for position in reversed(range(len(ascending))):
        indexes.sort(
            key=lambda i: NullsHighKey(keys[i][position]),
            reverse=not ascending[position],
        )
    return [rows[i] for i in indexes]


def extract_column_ranges(
    where: Optional[ast.Expression],
    scope: Scope,
    binding_columns: dict[int, str],
) -> dict[str, tuple[Optional[Union[int, float]], Optional[Union[int, float]]]]:
    """Derive per-column [low, high] bounds from simple WHERE conjuncts.

    Used for zone-map pruning: only conjuncts of the shape
    ``col <op> numeric-literal`` (or BETWEEN literals) contribute.
    ``binding_columns`` maps scope positions to the scanned table's column
    names, so only the scanned table's predicates are extracted. Integer
    literals are kept as Python ints — rounding them to float64 would
    shift bounds at |v| >= 2**53 and let the zone maps prune chunks that
    actually contain matching rows.
    """
    ranges: dict[str, tuple[Optional[Union[int, float]], Optional[Union[int, float]]]] = {}
    if where is None:
        return ranges

    def note(column: str, low, high) -> None:
        old_low, old_high = ranges.get(column, (None, None))
        if low is not None and (old_low is None or low > old_low):
            old_low = low
        if high is not None and (old_high is None or high < old_high):
            old_high = high
        ranges[column] = (old_low, old_high)

    for conjunct in split_conjuncts(where):
        if isinstance(conjunct, ast.Between) and not conjunct.negated:
            column = _bound_column(conjunct.operand, scope, binding_columns)
            low = _literal_number(conjunct.lower)
            high = _literal_number(conjunct.upper)
            if column is not None and (low is not None or high is not None):
                note(column, low, high)
            continue
        if not isinstance(conjunct, ast.BinaryOp):
            continue
        op = conjunct.op
        if op not in ("=", "<", "<=", ">", ">="):
            continue
        for column_side, literal_side, flipped in (
            (conjunct.left, conjunct.right, False),
            (conjunct.right, conjunct.left, True),
        ):
            column = _bound_column(column_side, scope, binding_columns)
            value = _literal_number(literal_side)
            if column is None or value is None:
                continue
            effective = op
            if flipped and op in ("<", "<=", ">", ">="):
                effective = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            if effective == "=":
                note(column, value, value)
            elif effective in (">", ">="):
                note(column, value, None)
            else:
                note(column, None, value)
            break
    return ranges


def _bound_column(
    expr: ast.Expression,
    scope: Scope,
    binding_columns: dict[int, str],
) -> Optional[str]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    try:
        index = scope.resolve(expr.name, expr.table)
    except ParseError:
        return None
    return binding_columns.get(index)


def literal_number(expr: ast.Expression) -> Optional[Union[int, float]]:
    """Numeric value of a (possibly negated) literal, else None.

    Shared by zone-map range extraction and the statistics module's
    predicate-selectivity analysis.
    """
    return _literal_number(expr)


def _literal_number(expr: ast.Expression) -> Optional[Union[int, float]]:
    # Integer literals stay Python ints: float64 cannot represent every
    # int64, and a rounded bound over-prunes at the 2**53 boundary.
    if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)):
        value = expr.value
        return value if isinstance(value, int) else float(value)
    if (
        isinstance(expr, ast.UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, ast.Literal)
        and isinstance(expr.operand.value, (int, float))
    ):
        value = expr.operand.value
        return -value if isinstance(value, int) else -float(value)
    return None

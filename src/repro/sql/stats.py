"""Table/column statistics and the cost model behind the optimizer.

This module is the system of record for what the optimizer *believes*
about the data:

* :class:`TableStatistics` / :class:`ColumnStatistics` — row counts,
  NDVs, min/max, null counts, and equi-width histograms per numeric
  column.  Full statistics come from a ``RUNSTATS``-style scan
  (:meth:`StatisticsManager.collect_from_rows`); cheap partial
  statistics (row count + per-column min/max) are seeded from the
  column store's zone maps the moment a table is accelerated.
* :class:`StatisticsManager` — keeps statistics current: replication
  change records fold in incrementally (row counts, min/max widening,
  histogram bin counts), any other accelerator write marks the table
  dirty so the next read rescales against the live storage row count,
  and DDL invalidates.
* :class:`CostModel` — converts per-operator cardinality estimates into
  abstract execution costs for both engines, which drives the
  DB2-vs-accelerator routing decision, the WLM admission weight, and
  the executors' hash-vs-nested-loop choice.

The cardinality *estimator* itself lives in :func:`repro.obs.profile.
estimate_plan`; it consults these statistics (and the cardinality-
feedback store) through duck-typed lookups, so this module has no
dependency on the observability layer.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.sql import ast
from repro.sql import logical
from repro.sql.planning import literal_number, split_conjuncts

__all__ = [
    "ColumnStatistics",
    "CostModel",
    "Histogram",
    "PlanCost",
    "StatisticsManager",
    "TableStatistics",
    "DEFAULT_HISTOGRAM_BINS",
]

#: Bin count for RUNSTATS-built equi-width histograms.
DEFAULT_HISTOGRAM_BINS = 16

#: Selectivity assumed for a conjunct the statistics cannot analyse
#: (mirrors the legacy fixed selectivity so estimates degrade gracefully).
_DEFAULT_SELECTIVITY = 1.0 / 3.0


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


@dataclass
class Histogram:
    """Equi-width histogram over a numeric column.

    ``counts[i]`` holds the rows whose value falls in
    ``[low + i*width, low + (i+1)*width)`` (the last bin is closed on
    both ends). Incremental feed maintenance adds values into the
    nearest bin — out-of-range values clamp to the edge bins, which
    keeps the histogram usable (if increasingly fuzzy) until the next
    RUNSTATS rebuilds it.
    """

    low: float
    high: float
    counts: list[int]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def width(self) -> float:
        span = self.high - self.low
        return span / len(self.counts) if span > 0 else 0.0

    @classmethod
    def build(
        cls, values: Sequence[float], bins: int = DEFAULT_HISTOGRAM_BINS
    ) -> Optional["Histogram"]:
        if not values:
            return None
        low = float(min(values))
        high = float(max(values))
        counts = [0] * max(1, bins)
        if high <= low:
            counts[0] = len(values)
            return cls(low=low, high=high, counts=counts)
        width = (high - low) / len(counts)
        top = len(counts) - 1
        for value in values:
            index = int((float(value) - low) / width)
            counts[min(max(index, 0), top)] += 1
        return cls(low=low, high=high, counts=counts)

    def add(self, value: float) -> None:
        """Fold one inserted value in (feed maintenance)."""
        if self.width <= 0:
            self.counts[0] += 1
            return
        index = int((float(value) - self.low) / self.width)
        self.counts[min(max(index, 0), len(self.counts) - 1)] += 1

    def scale(self, factor: float) -> None:
        """Rescale bin counts after a bulk row-count change."""
        self.counts = [max(0, int(round(c * factor))) for c in self.counts]

    def fraction_at_most(self, value: float) -> float:
        """Estimated fraction of rows with ``column <= value``."""
        total = self.total
        if total <= 0:
            return 0.0
        if value < self.low:
            return 0.0
        if value >= self.high:
            return 1.0
        if self.width <= 0:
            return 1.0
        position = (value - self.low) / self.width
        index = int(position)
        covered = sum(self.counts[:index])
        # Linear interpolation inside the straddled bin.
        if index < len(self.counts):
            covered += self.counts[index] * (position - index)
        return min(1.0, covered / total)

    def range_fraction(
        self, low: Optional[float], high: Optional[float]
    ) -> float:
        """Estimated fraction of rows with ``low <= column <= high``."""
        upper = self.fraction_at_most(high) if high is not None else 1.0
        lower = self.fraction_at_most(low) if low is not None else 0.0
        return max(0.0, upper - lower)


# ---------------------------------------------------------------------------
# Per-column / per-table statistics
# ---------------------------------------------------------------------------


@dataclass
class ColumnStatistics:
    """Statistics of one column. ``ndv == 0`` means unknown (seeded
    statistics know min/max from zone maps but not distinct counts)."""

    name: str
    ndv: int = 0
    null_count: int = 0
    minimum: object = None
    maximum: object = None
    histogram: Optional[Histogram] = None

    def note_value(self, value: object) -> None:
        """Fold one inserted value in (feed maintenance)."""
        if value is None:
            self.null_count += 1
            return
        try:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        except TypeError:  # mixed types after a cast — keep old bounds
            return
        if self.histogram is not None and isinstance(value, (int, float)):
            self.histogram.add(float(value))


@dataclass
class TableStatistics:
    """Statistics of one table, stamped with the catalog generation at
    collection time."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)
    #: "runstats" (full scan), "zonemap" (seeded), suffixed "+feed" once
    #: replication records have been folded in.
    source: str = "runstats"
    generation: int = 0
    feed_records: int = 0

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.upper())

    def distinct_count(self, column: str) -> Optional[int]:
        stats = self.column(column)
        if stats is None or stats.ndv <= 0:
            return None
        return min(stats.ndv, max(1, self.row_count))

    # -- predicate selectivity ------------------------------------------------

    def predicate_selectivity(self, predicate: ast.Expression) -> float:
        """Estimated fraction of rows satisfying ``predicate``.

        Only used for single-table predicates (pushed scan predicates),
        so column refs are resolved by name alone.
        """
        selectivity = 1.0
        for conjunct in split_conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(conjunct)
        return min(1.0, max(0.0, selectivity))

    def _conjunct_selectivity(self, conjunct: ast.Expression) -> float:
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "OR":
            left = self._conjunct_selectivity(conjunct.left)
            right = self._conjunct_selectivity(conjunct.right)
            return min(1.0, left + right)
        if isinstance(conjunct, ast.Between) and not conjunct.negated:
            column = self._own_column(conjunct.operand)
            low = literal_number(conjunct.lower)
            high = literal_number(conjunct.upper)
            if column is not None:
                return self._range_selectivity(column, low, high, True, True)
            return _DEFAULT_SELECTIVITY
        if isinstance(conjunct, ast.IsNull):
            column = self._own_column(conjunct.operand)
            if column is not None and self.row_count > 0:
                fraction = column.null_count / self.row_count
                return 1.0 - fraction if conjunct.negated else fraction
            return _DEFAULT_SELECTIVITY
        if isinstance(conjunct, ast.InList) and not conjunct.negated:
            column = self._own_column(conjunct.operand)
            if column is not None and column.ndv > 0:
                return min(1.0, len(conjunct.items) / column.ndv)
            return _DEFAULT_SELECTIVITY
        if isinstance(conjunct, ast.BinaryOp):
            return self._comparison_selectivity(conjunct)
        return _DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, conjunct: ast.BinaryOp) -> float:
        op = conjunct.op
        if op not in ("=", "<>", "<", "<=", ">", ">="):
            return _DEFAULT_SELECTIVITY
        column = self._own_column(conjunct.left)
        value = literal_number(conjunct.right)
        if column is None or value is None:
            column = self._own_column(conjunct.right)
            value = literal_number(conjunct.left)
            if column is None or value is None:
                return _DEFAULT_SELECTIVITY
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if op == "=":
            if column.ndv > 0:
                return min(1.0, 1.0 / column.ndv)
            return self._range_selectivity(column, value, value, True, True)
        if op == "<>":
            if column.ndv > 0:
                return max(0.0, 1.0 - 1.0 / column.ndv)
            return 1.0 - _DEFAULT_SELECTIVITY
        if op in ("<", "<="):
            return self._range_selectivity(column, None, value, True, op == "<=")
        return self._range_selectivity(column, value, None, op == ">=", True)

    def _range_selectivity(
        self,
        column: ColumnStatistics,
        low: Optional[float],
        high: Optional[float],
        low_inclusive: bool,
        high_inclusive: bool,
    ) -> float:
        if column.histogram is not None:
            return column.histogram.range_fraction(low, high)
        minimum, maximum = column.minimum, column.maximum
        if (
            isinstance(minimum, (int, float))
            and isinstance(maximum, (int, float))
        ):
            # Zone-map-only statistics: assume uniform over [min, max].
            if maximum <= minimum:
                inside = (low is None or low <= minimum) and (
                    high is None or high >= maximum
                )
                return 1.0 if inside else 0.0
            span = float(maximum) - float(minimum)
            lo = float(minimum) if low is None else max(float(low), float(minimum))
            hi = float(maximum) if high is None else min(float(high), float(maximum))
            if hi < lo:
                return 0.0
            return min(1.0, (hi - lo) / span)
        return _DEFAULT_SELECTIVITY

    def _own_column(self, expr: ast.Expression) -> Optional[ColumnStatistics]:
        if isinstance(expr, ast.ColumnRef):
            return self.column(expr.name)
        return None


# ---------------------------------------------------------------------------
# The manager: collection, seeding, incremental maintenance
# ---------------------------------------------------------------------------


class StatisticsManager:
    """System-wide statistics registry (one per AcceleratedDatabase).

    ``row_probe(name)`` (optional) returns the live storage row count;
    it backs the dirty-table refresh path: a direct accelerator write
    (bulk load, groom, AOT DML) marks the table dirty via the chained
    write listener, and the next :meth:`table` call rescales row count
    and histogram mass against the probe instead of serving stale
    numbers.
    """

    def __init__(
        self, row_probe: Optional[Callable[[str], Optional[int]]] = None
    ) -> None:
        self._tables: dict[str, TableStatistics] = {}
        self._dirty: set[str] = set()
        self._lock = threading.Lock()
        self.row_probe = row_probe
        # Instrumentation (exposed as the ``stats.*`` metrics source).
        self.tables_collected = 0
        self.tables_seeded = 0
        self.feed_records = 0
        self.refreshes = 0
        self.invalidations = 0

    # -- collection -----------------------------------------------------------

    def collect_from_rows(
        self,
        name: str,
        column_names: Sequence[str],
        rows: Iterable[tuple],
        generation: int = 0,
        bins: int = DEFAULT_HISTOGRAM_BINS,
    ) -> TableStatistics:
        """Full RUNSTATS: one pass over ``rows`` computing row count,
        and per column NDV, null count, min/max, and (numeric columns)
        an equi-width histogram."""
        names = [c.upper() for c in column_names]
        distinct: list[set] = [set() for _ in names]
        nulls = [0] * len(names)
        numeric: list[Optional[list[float]]] = [[] for _ in names]
        minima: list[object] = [None] * len(names)
        maxima: list[object] = [None] * len(names)
        row_count = 0
        for row in rows:
            row_count += 1
            for index, value in enumerate(row):
                if value is None:
                    nulls[index] += 1
                    continue
                distinct[index].add(value)
                if minima[index] is None or value < minima[index]:
                    minima[index] = value
                if maxima[index] is None or value > maxima[index]:
                    maxima[index] = value
                bucket = numeric[index]
                if bucket is not None:
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        bucket.append(float(value))
                    else:
                        numeric[index] = None
        columns = {}
        for index, column in enumerate(names):
            values = numeric[index]
            columns[column] = ColumnStatistics(
                name=column,
                ndv=len(distinct[index]),
                null_count=nulls[index],
                minimum=minima[index],
                maximum=maxima[index],
                histogram=Histogram.build(values, bins) if values else None,
            )
        stats = TableStatistics(
            table=name.upper(),
            row_count=row_count,
            columns=columns,
            source="runstats",
            generation=generation,
        )
        with self._lock:
            self._tables[stats.table] = stats
            self._dirty.discard(stats.table)
            self.tables_collected += 1
        return stats

    def seed_from_column_store(
        self, name: str, storage, generation: int = 0
    ) -> TableStatistics:
        """Cheap partial statistics from what the column store already
        maintains: the live row count plus per-column min/max merged
        across chunk zone maps. NDVs and histograms stay unknown until
        RUNSTATS."""
        columns: dict[str, ColumnStatistics] = {}
        for _, chunk in storage.iter_chunks():
            for column, zone_map in chunk.zone_maps.items():
                key = column.upper()
                stats = columns.get(key)
                if stats is None:
                    stats = ColumnStatistics(
                        name=key,
                        minimum=zone_map.minimum,
                        maximum=zone_map.maximum,
                    )
                    columns[key] = stats
                else:
                    if zone_map.minimum is not None and (
                        stats.minimum is None
                        or zone_map.minimum < stats.minimum
                    ):
                        stats.minimum = zone_map.minimum
                    if zone_map.maximum is not None and (
                        stats.maximum is None
                        or zone_map.maximum > stats.maximum
                    ):
                        stats.maximum = zone_map.maximum
        stats = TableStatistics(
            table=name.upper(),
            row_count=storage.row_count,
            columns=columns,
            source="zonemap",
            generation=generation,
        )
        with self._lock:
            self._tables[stats.table] = stats
            self._dirty.discard(stats.table)
            self.tables_seeded += 1
        return stats

    # -- incremental maintenance ----------------------------------------------

    def apply_changes(self, name: str, records: Sequence) -> None:
        """Fold one replication batch in: row-count delta, min/max
        widening, and histogram bin updates from insert/update
        after-images. Deletions only decrement the row count — removing
        mass from the right bin would need the before-image's bin, and
        a small overcount is harmless until the next RUNSTATS."""
        key = name.upper()
        with self._lock:
            stats = self._tables.get(key)
            if stats is None:
                return
            column_names = list(stats.columns)
            for record in records:
                op = getattr(record, "op", None)
                if op == "INSERT":
                    stats.row_count += 1
                elif op == "DELETE":
                    stats.row_count = max(0, stats.row_count - 1)
                after = getattr(record, "after", None)
                if after is not None and op in ("INSERT", "UPDATE"):
                    for column, value in zip(column_names, after):
                        stats.columns[column].note_value(value)
                stats.feed_records += 1
                self.feed_records += 1
            if records and not stats.source.endswith("+feed"):
                stats.source += "+feed"
            self._dirty.discard(key)

    def note_write(self, name: str) -> None:
        """Mark ``name`` dirty: a write that did not flow through
        :meth:`apply_changes` changed the table (bulk load, groom, AOT
        DML). The next :meth:`table` call refreshes against storage."""
        with self._lock:
            if name.upper() in self._tables:
                self._dirty.add(name.upper())

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop statistics for ``name`` (or everything) — DDL path."""
        with self._lock:
            if name is None:
                count = len(self._tables)
                self._tables.clear()
                self._dirty.clear()
            else:
                count = 1 if self._tables.pop(name.upper(), None) else 0
                self._dirty.discard(name.upper())
            self.invalidations += count

    # -- lookup ---------------------------------------------------------------

    def table(self, name: str) -> Optional[TableStatistics]:
        key = name.upper()
        with self._lock:
            stats = self._tables.get(key)
            if stats is None:
                return None
            if key in self._dirty:
                self._refresh_locked(key, stats)
            return stats

    def _refresh_locked(self, key: str, stats: TableStatistics) -> None:
        probe = self.row_probe
        fresh = probe(key) if probe is not None else None
        if fresh is not None and fresh != stats.row_count:
            if stats.row_count > 0:
                factor = fresh / stats.row_count
                for column in stats.columns.values():
                    if column.histogram is not None:
                        column.histogram.scale(factor)
                    column.null_count = int(round(column.null_count * factor))
                    if column.ndv > 0:
                        column.ndv = max(1, min(column.ndv, fresh))
            stats.row_count = fresh
        self._dirty.discard(key)
        self.refreshes += 1

    def row_count(self, name: str) -> Optional[int]:
        stats = self.table(name)
        return stats.row_count if stats is not None else None

    def tables(self) -> list[TableStatistics]:
        with self._lock:
            keys = list(self._tables)
        return [s for s in (self.table(k) for k in keys) if s is not None]

    # -- monitoring -----------------------------------------------------------

    def monitor_rows(self) -> list[tuple]:
        """Rows for SYSACCEL.MON_STATISTICS: one table-level row
        (COLUMN_NAME = '') plus one row per column."""
        out: list[tuple] = []
        for stats in sorted(self.tables(), key=lambda s: s.table):
            out.append(
                (
                    stats.table,
                    "",
                    stats.row_count,
                    -1,
                    -1,
                    "",
                    "",
                    0,
                    stats.source,
                    stats.generation,
                    stats.feed_records,
                )
            )
            for name in sorted(stats.columns):
                column = stats.columns[name]
                out.append(
                    (
                        stats.table,
                        column.name,
                        stats.row_count,
                        column.ndv if column.ndv > 0 else -1,
                        column.null_count,
                        "" if column.minimum is None else str(column.minimum),
                        "" if column.maximum is None else str(column.maximum),
                        len(column.histogram.counts)
                        if column.histogram is not None
                        else 0,
                        stats.source,
                        stats.generation,
                        stats.feed_records,
                    )
                )
        return out

    def snapshot(self) -> dict:
        """Metrics-source view (``stats.*`` in the registry)."""
        with self._lock:
            return {
                "tables": len(self._tables),
                "dirty": len(self._dirty),
                "tables_collected": self.tables_collected,
                "tables_seeded": self.tables_seeded,
                "feed_records": self.feed_records,
                "refreshes": self.refreshes,
                "invalidations": self.invalidations,
            }


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanCost:
    """Estimated execution cost of one plan on each engine, in abstract
    units where visiting one row in the DB2 row engine costs 1.0."""

    db2: float
    accelerator: float

    @property
    def engine(self) -> str:
        return "ACCELERATOR" if self.accelerator < self.db2 else "DB2"

    def describe(self) -> str:
        return (
            f"cost accelerator={self.accelerator:.0f} vs db2={self.db2:.0f}"
        )


class CostModel:
    """Abstract cost model shared by routing, WLM weighting, and the
    executors' join-strategy choice.

    The constants encode the simulated hardware profile: the row engine
    pays ~1 unit per row visited (joins/aggregates/sorts cost more per
    row), the vector engine is ~25x cheaper per row but pays a fixed
    statement startup (interconnect round trip) plus ~1 unit per result
    row shipped back to DB2.
    """

    #: DB2 row engine: cost per row scanned / filtered / joined / grouped.
    db2_row_cost = 1.0
    db2_filter_row_cost = 0.2
    db2_join_row_cost = 1.0
    db2_aggregate_row_cost = 2.0
    db2_distinct_row_cost = 2.0
    db2_sort_row_factor = 0.5  # multiplied by log2(n)
    #: Accelerator: vectorised per-row costs plus fixed statement startup.
    accel_row_cost = 0.04
    accel_join_row_cost = 0.05
    accel_aggregate_row_cost = 0.08
    accel_sort_row_factor = 0.03
    accel_startup_cost = 16.0
    #: Shipping one result row back over the interconnect.
    transfer_row_cost = 1.0
    #: Below this estimated build*probe product, a nested-loop join is
    #: cheaper than building a hash table.
    nested_loop_threshold = 64

    def plan_costs(
        self,
        plan: logical.PlanNode,
        estimates: dict[int, int],
        base_rows: Optional[Callable[[str], Optional[int]]] = None,
    ) -> PlanCost:
        """Walk ``plan`` accumulating per-engine costs from the node
        cardinality ``estimates`` (``id(node)`` keyed, as produced by
        ``repro.obs.profile.estimate_plan``)."""

        def est(node: logical.PlanNode) -> int:
            return max(0, estimates.get(id(node), 1))

        def visit(node: logical.PlanNode) -> tuple[float, float]:
            out = est(node)
            if isinstance(node, logical.Scan):
                rows_in = None
                if base_rows is not None:
                    rows_in = base_rows(node.table)
                if rows_in is None:
                    rows_in = out
                rows_in = max(rows_in, out)
                return (
                    rows_in * self.db2_row_cost,
                    rows_in * self.accel_row_cost,
                )
            if isinstance(node, logical.Filter):
                d, a = visit(node.child)
                rows_in = est(node.child)
                return (
                    d + rows_in * self.db2_filter_row_cost,
                    a + rows_in * self.accel_row_cost,
                )
            if isinstance(node, logical.SubqueryBind):
                return visit(node.plan)
            if isinstance(node, logical.Join):
                dl, al = visit(node.left)
                dr, ar = visit(node.right)
                left, right = est(node.left), est(node.right)
                if node.join_type == "CROSS" or node.condition is None:
                    work = left * right
                else:
                    work = left + right
                return (
                    dl + dr + (work + out) * self.db2_join_row_cost,
                    al + ar + (work + out) * self.accel_join_row_cost,
                )
            if isinstance(node, logical.Project):
                if node.child is None:
                    return (0.0, 0.0)
                d, a = visit(node.child)
                rows_in = est(node.child)
                if node.distinct:
                    d += rows_in * self.db2_distinct_row_cost
                    a += rows_in * self.accel_aggregate_row_cost
                return d, a
            if isinstance(node, logical.Aggregate):
                d, a = visit(node.child)
                rows_in = est(node.child)
                return (
                    d + rows_in * self.db2_aggregate_row_cost,
                    a + rows_in * self.accel_aggregate_row_cost,
                )
            if isinstance(node, logical.Sort):
                d, a = visit(node.child)
                rows_in = est(node.child)
                log = math.log2(rows_in + 2)
                return (
                    d + rows_in * log * self.db2_sort_row_factor,
                    a + rows_in * log * self.accel_sort_row_factor,
                )
            if isinstance(node, logical.Limit):
                d, a = visit(node.child)
                if _streaming_subtree(node.child):
                    # The row engine stops pulling once the fetch count
                    # is satisfied; the accelerator scans whole chunks
                    # regardless.
                    child_rows = est(node.child)
                    wanted = (node.offset or 0) + (
                        node.limit if node.limit is not None else child_rows
                    )
                    if child_rows > 0 and wanted < child_rows:
                        d *= wanted / child_rows
                return d, a
            if isinstance(node, logical.SetOp):
                dl, al = visit(node.left)
                dr, ar = visit(node.right)
                rows_in = est(node.left) + est(node.right)
                return (
                    dl + dr + rows_in * self.db2_distinct_row_cost,
                    al + ar + rows_in * self.accel_aggregate_row_cost,
                )
            return (0.0, 0.0)  # pragma: no cover - future node kinds

        db2, accel = visit(plan)
        result_rows = max(0, estimates.get(id(plan), 0))
        accel += self.accel_startup_cost
        accel += result_rows * self.transfer_row_cost
        return PlanCost(db2=db2, accelerator=accel)

    # -- join-strategy advice --------------------------------------------------

    def prefer_nested_loop(
        self, left_rows: Optional[int], right_rows: Optional[int]
    ) -> bool:
        """True when both inputs are estimated small enough that a
        nested loop beats building a hash table."""
        if left_rows is None or right_rows is None:
            return False
        return left_rows * right_rows <= self.nested_loop_threshold

    def prefer_build_left(
        self, left_rows: Optional[int], right_rows: Optional[int]
    ) -> bool:
        """True when the left input is estimated strictly smaller, so a
        hash join should build on the left and probe with the right
        (output row order is re-established by left position)."""
        if left_rows is None or right_rows is None:
            return False
        return left_rows * 2 <= right_rows


def _streaming_subtree(node: logical.PlanNode) -> bool:
    """True when the subtree evaluates row-at-a-time with no blocking
    operator, i.e. a LIMIT above it can stop the row engine early."""
    if isinstance(node, logical.Scan):
        return True
    if isinstance(node, logical.Filter):
        return _streaming_subtree(node.child)
    if isinstance(node, logical.Project):
        return node.child is None or _streaming_subtree(node.child)
    return False

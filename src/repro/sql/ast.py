"""Abstract syntax tree for the SQL dialect.

Nodes are plain frozen-ish dataclasses; the parser builds them and both
engines consume them. Expression nodes implement ``walk()`` so analyses
(column resolution, offload eligibility, referenced-table discovery) stay
generic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.sql.types import SqlType

__all__ = [
    "Expression",
    "Literal",
    "ColumnRef",
    "Star",
    "Parameter",
    "BinaryOp",
    "UnaryOp",
    "FunctionCall",
    "CaseExpression",
    "CaseBranch",
    "InList",
    "Between",
    "IsNull",
    "Like",
    "Cast",
    "Predict",
    "SubqueryExpression",
    "Statement",
    "SelectItem",
    "TableRef",
    "SubquerySource",
    "Join",
    "FromItem",
    "OrderItem",
    "SelectStatement",
    "SetOperation",
    "ColumnDef",
    "CreateTableStatement",
    "DropTableStatement",
    "CreateViewStatement",
    "DropViewStatement",
    "InsertStatement",
    "UpdateStatement",
    "DeleteStatement",
    "GrantStatement",
    "RevokeStatement",
    "CallStatement",
    "SetStatement",
    "ExplainStatement",
    "CommitStatement",
    "RollbackStatement",
    "BeginStatement",
    "AGGREGATE_FUNCTIONS",
]

#: Function names treated as aggregates by the planners.
AGGREGATE_FUNCTIONS = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE"}
)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression:
    """Base class for expression nodes."""

    def walk(self) -> Iterator["Expression"]:
        """Yield this node and all nested expression nodes, depth-first."""
        yield self

    def contains_aggregate(self) -> bool:
        return any(
            isinstance(node, FunctionCall) and node.is_aggregate
            for node in self.walk()
        )


@dataclass
class Literal(Expression):
    value: object  # int, float, Decimal, str, bool, or None


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``T.AMOUNT``."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` or ``T.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None


@dataclass
class Parameter(Expression):
    """Positional ``?`` parameter; ``index`` is assigned left-to-right."""

    index: int


@dataclass
class BinaryOp(Expression):
    op: str  # one of + - * / % = <> < <= > >= AND OR ||
    left: Expression
    right: Expression

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()


@dataclass
class UnaryOp(Expression):
    op: str  # '-' or 'NOT'
    operand: Expression

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()


@dataclass
class FunctionCall(Expression):
    name: str
    args: list[Expression]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.name in AGGREGATE_FUNCTIONS

    def walk(self) -> Iterator[Expression]:
        yield self
        for arg in self.args:
            yield from arg.walk()


@dataclass
class CaseBranch:
    condition: Expression
    result: Expression


@dataclass
class CaseExpression(Expression):
    """Searched CASE: ``CASE WHEN cond THEN expr ... ELSE expr END``."""

    branches: list[CaseBranch]
    default: Optional[Expression] = None

    def walk(self) -> Iterator[Expression]:
        yield self
        for branch in self.branches:
            yield from branch.condition.walk()
            yield from branch.result.walk()
        if self.default is not None:
            yield from self.default.walk()


@dataclass
class InList(Expression):
    operand: Expression
    items: list[Expression]
    negated: bool = False

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()
        for item in self.items:
            yield from item.walk()


@dataclass
class Between(Expression):
    operand: Expression
    lower: Expression
    upper: Expression
    negated: bool = False

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()
        yield from self.lower.walk()
        yield from self.upper.walk()


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()


@dataclass
class Like(Expression):
    operand: Expression
    pattern: Expression
    negated: bool = False

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()
        yield from self.pattern.walk()


@dataclass
class Cast(Expression):
    operand: Expression
    target_type: SqlType

    def walk(self) -> Iterator[Expression]:
        yield self
        yield from self.operand.walk()


@dataclass
class Predict(Expression):
    """``PREDICT(model, feature, ...)`` — in-kernel scoring of a stored model.

    The feature expressions are positional against the model's trained
    feature list. ``store`` is bound by the session layer before
    planning (the system's :class:`~repro.analytics.model_store.ModelStore`);
    it is excluded from comparison/repr so plans still compare
    structurally and the plan cache stays text-keyed.
    """

    model: str
    args: list[Expression]
    store: Optional[object] = field(default=None, compare=False, repr=False)

    def walk(self) -> Iterator[Expression]:
        yield self
        for arg in self.args:
            yield from arg.walk()


@dataclass
class SubqueryExpression(Expression):
    """Scalar or IN-subquery appearing inside an expression."""

    query: "SelectStatement"
    # 'scalar' (single value), 'in' (operand IN (subquery)), 'exists'
    kind: str = "scalar"
    operand: Optional[Expression] = None
    negated: bool = False

    def walk(self) -> Iterator[Expression]:
        yield self
        if self.operand is not None:
            yield from self.operand.walk()


# ---------------------------------------------------------------------------
# FROM clause items
# ---------------------------------------------------------------------------


@dataclass
class TableRef:
    """A base-table reference with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """Name under which this table's columns are visible."""
        return self.alias or self.name


@dataclass
class SubquerySource:
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "SelectStatement"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class Join:
    left: "FromItem"
    right: "FromItem"
    join_type: str  # INNER, LEFT, RIGHT, CROSS
    condition: Optional[Expression] = None


FromItem = Union[TableRef, SubquerySource, Join]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement:
    """Base class for statements."""


@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expression: Expression
    ascending: bool = True


@dataclass
class SelectStatement(Statement):
    select_items: list[SelectItem]
    from_item: Optional[FromItem] = None
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False

    def referenced_tables(self) -> list[str]:
        """Names of all base tables referenced anywhere in the query."""
        names: list[str] = []
        _collect_tables(self.from_item, names)
        for expr in self.iter_expressions():
            for node in expr.walk():
                if isinstance(node, SubqueryExpression):
                    names.extend(node.query.referenced_tables())
        return names

    def iter_expressions(self) -> Iterator[Expression]:
        for item in self.select_items:
            yield item.expression
        if self.where is not None:
            yield self.where
        yield from self.group_by
        if self.having is not None:
            yield self.having
        for order in self.order_by:
            yield order.expression
        yield from _join_conditions(self.from_item)

    @property
    def is_aggregate_query(self) -> bool:
        if self.group_by:
            return True
        return any(
            item.expression.contains_aggregate() for item in self.select_items
        )


def _collect_tables(item: Optional[FromItem], out: list[str]) -> None:
    if item is None:
        return
    if isinstance(item, TableRef):
        out.append(item.name)
    elif isinstance(item, SubquerySource):
        out.extend(item.query.referenced_tables())
    elif isinstance(item, Join):
        _collect_tables(item.left, out)
        _collect_tables(item.right, out)


def _join_conditions(item: Optional[FromItem]) -> Iterator[Expression]:
    if isinstance(item, Join):
        if item.condition is not None:
            yield item.condition
        yield from _join_conditions(item.left)
        yield from _join_conditions(item.right)


@dataclass
class SetOperation(Statement):
    """UNION / UNION ALL / EXCEPT / INTERSECT of two selects.

    A trailing ORDER BY / LIMIT applies to the combined result and may
    only reference output columns (by name or 1-based position).
    """

    op: str  # UNION, UNION ALL, EXCEPT, INTERSECT
    left: Union[SelectStatement, "SetOperation"]
    right: Union[SelectStatement, "SetOperation"]
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None

    def referenced_tables(self) -> list[str]:
        return self.left.referenced_tables() + self.right.referenced_tables()


@dataclass
class ColumnDef:
    name: str
    sql_type: SqlType
    nullable: bool = True
    primary_key: bool = False
    default: Optional[Expression] = None


@dataclass
class CreateTableStatement(Statement):
    name: str
    columns: list[ColumnDef]
    in_accelerator: bool = False  # the paper's IN ACCELERATOR clause
    distribute_on: Optional[list[str]] = None  # DISTRIBUTE BY HASH(cols)
    if_not_exists: bool = False
    as_select: Optional[SelectStatement] = None  # CREATE TABLE ... AS (SELECT)


@dataclass
class DropTableStatement(Statement):
    name: str
    if_exists: bool = False


@dataclass
class AlterTableDistribute(Statement):
    """``ALTER TABLE t ACCELERATE DISTRIBUTE BY HASH(c,…)|RANGE(c)|RANDOM``.

    Declares (or changes) how the table's rows spread over the
    accelerator pool's shards. RANGE boundaries are not part of the
    statement — they are computed from data quantiles at execution time.
    """

    table: str
    method: str  # HASH / RANGE / RANDOM
    columns: list[str] = field(default_factory=list)


@dataclass
class CreateViewStatement(Statement):
    """``CREATE VIEW name AS (SELECT ...)`` — a DB2 catalog object."""

    name: str
    query: SelectStatement


@dataclass
class DropViewStatement(Statement):
    name: str
    if_exists: bool = False


@dataclass
class InsertStatement(Statement):
    table: str
    columns: Optional[list[str]]  # None means full-width positional
    values: Optional[list[list[Expression]]] = None  # VALUES rows
    select: Optional[Union[SelectStatement, SetOperation]] = None


@dataclass
class UpdateStatement(Statement):
    table: str
    assignments: list[tuple[str, Expression]]
    where: Optional[Expression] = None


@dataclass
class DeleteStatement(Statement):
    table: str
    where: Optional[Expression] = None


@dataclass
class GrantStatement(Statement):
    privileges: list[str]  # SELECT/INSERT/UPDATE/DELETE/EXECUTE/LOAD or ALL
    object_type: str  # 'TABLE' or 'PROCEDURE'
    object_name: str
    grantee: str


@dataclass
class RevokeStatement(Statement):
    privileges: list[str]
    object_type: str
    object_name: str
    grantee: str


@dataclass
class CallStatement(Statement):
    """``CALL schema.procedure('key=value, ...')`` — the INZA convention."""

    procedure: str
    arguments: list[Expression] = field(default_factory=list)


@dataclass
class ExplainStatement(Statement):
    """``EXPLAIN [ANALYZE] <statement>`` — routing + logical plan; with
    ANALYZE the statement executes and the annotated per-operator plan
    (actual vs. estimated rows, Q-error, wall time) is returned."""

    statement: Statement
    analyze: bool = False


@dataclass
class SetStatement(Statement):
    """``SET <register> = <value>`` (special registers only)."""

    register: str  # e.g. 'CURRENT QUERY ACCELERATION'
    value: str


@dataclass
class CommitStatement(Statement):
    pass


@dataclass
class RollbackStatement(Statement):
    pass


@dataclass
class BeginStatement(Statement):
    pass

"""Shared logical-plan layer: one planner feeding both executors.

A parsed statement is *bound* once into a small algebra (:class:`Scan`,
:class:`Filter`, :class:`Project`, :class:`Join`, :class:`Aggregate`,
:class:`Sort`, :class:`Limit`, :class:`SetOp`, :class:`SubqueryBind`) and
optionally rewritten by a rule pipeline — constant folding, predicate
pushdown through Project/Join into Scan, and projection pruning so scans
only materialise referenced columns. Both physical backends walk the same
tree: the DB2 engine interprets it row-at-a-time, the accelerator lowers
it to vectorised / chunk-parallel kernels.

The rewriter is deliberately conservative: every rule preserves result
*bytes* (values and row order) for both backends, which the differential
fuzz suite checks by planning with rewrites on and off. Rules therefore
only fold expressions with the engines' exact runtime semantics
(``_SCALAR_BINARY_OPS``), only push subquery-free conjuncts, and only
push into the null-preserved side of outer joins.

This module also hosts the row-shaping helpers that were previously
duplicated (or triplicated) across the two executors: set-operation
combination, row dedup, LIMIT/OFFSET slicing, and output-scope ORDER BY.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Union

from repro.errors import ParseError, SqlError
from repro.sql import ast
from repro.sql.expressions import (
    _SCALAR_BINARY_OPS,
    Scope,
    compile_scalar,
    expression_label,
)
from repro.sql.planning import (
    map_children,
    resolve_order_position,
    sort_rows_with_keys,
    split_conjuncts,
)

__all__ = [
    "PlanNode",
    "Scan",
    "SubqueryBind",
    "Join",
    "Filter",
    "Project",
    "Aggregate",
    "Sort",
    "Limit",
    "SetOp",
    "REWRITES_ENABLED",
    "JOIN_REORDER_ENABLED",
    "bind",
    "rewrite_plan",
    "plan_statement",
    "plan_shape",
    "dedup_rows",
    "slice_rows",
    "combine_set_rows",
    "order_rows_by_output",
]

#: Default for :func:`plan_statement`'s ``rewrite`` argument. Tests flip
#: this (or pass ``rewrite=False``) to compare rewritten vs. raw plans.
REWRITES_ENABLED = True

#: Master switch for the cost-based join re-association stage. Even when
#: True the stage only runs if the caller supplies a ``table_rows``
#: estimator to :func:`plan_statement` / :func:`rewrite_plan` — without
#: cardinalities there is nothing to cost.
JOIN_REORDER_ENABLED = True


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


class PlanNode:
    """Base class for logical operators (enables isinstance dispatch)."""

    __slots__ = ()


@dataclass(frozen=True)
class Scan(PlanNode):
    """Base-table scan.

    ``columns`` (when not None) is the set of column names the plan
    actually references — a backend may materialise only those (plus at
    least one, so row counts survive COUNT(*)-only plans). ``predicate``
    holds pushed-down subquery-free conjuncts; backends evaluate it
    against the scan scope and may additionally derive zone-map ranges
    from it.
    """

    table: str
    binding: str
    columns: Optional[tuple[str, ...]] = None
    predicate: Optional[ast.Expression] = None


@dataclass(frozen=True)
class SubqueryBind(PlanNode):
    """A derived table: the inner plan's output bound under ``alias``."""

    plan: PlanNode
    alias: str


@dataclass(frozen=True)
class Join(PlanNode):
    left: PlanNode
    right: PlanNode
    join_type: str  # INNER, LEFT, RIGHT, CROSS
    condition: Optional[ast.Expression]


@dataclass(frozen=True)
class Filter(PlanNode):
    child: PlanNode
    predicate: ast.Expression


@dataclass(frozen=True)
class Project(PlanNode):
    """Select-list evaluation. ``child is None`` is a constant SELECT."""

    child: Optional[PlanNode]
    select_items: tuple[ast.SelectItem, ...]
    distinct: bool = False


@dataclass(frozen=True)
class Aggregate(PlanNode):
    child: PlanNode
    select_items: tuple[ast.SelectItem, ...]
    group_by: tuple[ast.Expression, ...]
    having: Optional[ast.Expression]
    distinct: bool = False


@dataclass(frozen=True)
class Sort(PlanNode):
    child: PlanNode
    order_by: tuple[ast.OrderItem, ...]


@dataclass(frozen=True)
class Limit(PlanNode):
    child: PlanNode
    offset: Optional[int]
    limit: Optional[int]


@dataclass(frozen=True)
class SetOp(PlanNode):
    op: str  # UNION, UNION ALL, EXCEPT, INTERSECT
    left: PlanNode
    right: PlanNode


Statement = Union[ast.SelectStatement, ast.SetOperation]


# ---------------------------------------------------------------------------
# Binder: AST -> logical plan
# ---------------------------------------------------------------------------


def bind(stmt: Statement) -> PlanNode:
    """Build the logical plan for a parsed SELECT or set operation."""
    if isinstance(stmt, ast.SetOperation):
        node: PlanNode = SetOp(op=stmt.op, left=bind(stmt.left), right=bind(stmt.right))
        return _wrap_order_limit(node, stmt.order_by, stmt.offset, stmt.limit)
    if not isinstance(stmt, ast.SelectStatement):
        raise ParseError(f"cannot plan statement {type(stmt).__name__}")
    if stmt.from_item is None:
        # Constant SELECT: evaluated as a single row; ORDER BY / LIMIT /
        # DISTINCT are no-ops on it (matching the executors' behaviour).
        return Project(child=None, select_items=tuple(stmt.select_items))
    node = _bind_from(stmt.from_item)
    if stmt.where is not None:
        node = Filter(child=node, predicate=stmt.where)
    if stmt.group_by or stmt.is_aggregate_query:
        node = Aggregate(
            child=node,
            select_items=tuple(stmt.select_items),
            group_by=tuple(stmt.group_by),
            having=stmt.having,
            distinct=stmt.distinct,
        )
    else:
        if stmt.having is not None:
            raise ParseError("HAVING requires GROUP BY or aggregates")
        node = Project(
            child=node,
            select_items=tuple(stmt.select_items),
            distinct=stmt.distinct,
        )
    return _wrap_order_limit(node, stmt.order_by, stmt.offset, stmt.limit)


def _wrap_order_limit(node, order_by, offset, limit) -> PlanNode:
    if order_by:
        node = Sort(child=node, order_by=tuple(order_by))
    if limit is not None or offset is not None:
        node = Limit(child=node, offset=offset, limit=limit)
    return node


def _bind_from(item: ast.FromItem) -> PlanNode:
    if isinstance(item, ast.TableRef):
        return Scan(table=item.name, binding=item.binding)
    if isinstance(item, ast.SubquerySource):
        return SubqueryBind(plan=bind(item.query), alias=item.alias)
    if isinstance(item, ast.Join):
        return Join(
            left=_bind_from(item.left),
            right=_bind_from(item.right),
            join_type=item.join_type,
            condition=item.condition,
        )
    raise ParseError(f"unsupported FROM item {type(item).__name__}")


def plan_statement(
    stmt: Statement,
    rewrite: Optional[bool] = None,
    table_rows: Optional[Callable[[str], Optional[int]]] = None,
) -> PlanNode:
    """Bind ``stmt`` and (by default) run the rewrite pipeline.

    ``table_rows`` (table name -> estimated row count, None = unknown)
    enables the cost-based join re-association stage; the system passes
    a statistics-backed estimator here.
    """
    plan = bind(stmt)
    if rewrite is None:
        rewrite = REWRITES_ENABLED
    return rewrite_plan(plan, table_rows=table_rows) if rewrite else plan


def rewrite_plan(
    plan: PlanNode,
    table_rows: Optional[Callable[[str], Optional[int]]] = None,
) -> PlanNode:
    """Rule pipeline: constant folding -> predicate pushdown ->
    cost-based join re-association (when cardinalities are available)
    -> column pruning."""
    plan = _fold_node(plan)
    plan = _pushdown_node(plan)
    if JOIN_REORDER_ENABLED and table_rows is not None:
        plan = _reorder_plan(plan, table_rows)
    plan = _prune_plan(plan)
    return plan


def plan_shape(plan: PlanNode) -> str:
    """Compact plan rendering, e.g. ``Limit(Sort(Project(Scan[T])))``."""
    if isinstance(plan, Scan):
        cols = "" if plan.columns is None else f"({','.join(plan.columns)})"
        pred = "*" if plan.predicate is not None else ""
        return f"Scan[{plan.table}{cols}{pred}]"
    if isinstance(plan, SubqueryBind):
        return f"SubqueryBind[{plan.alias}]({plan_shape(plan.plan)})"
    if isinstance(plan, Join):
        return (
            f"Join[{plan.join_type}]"
            f"({plan_shape(plan.left)},{plan_shape(plan.right)})"
        )
    if isinstance(plan, Filter):
        return f"Filter({plan_shape(plan.child)})"
    if isinstance(plan, Project):
        child = plan_shape(plan.child) if plan.child is not None else ""
        return f"Project({child})"
    if isinstance(plan, Aggregate):
        return f"Aggregate({plan_shape(plan.child)})"
    if isinstance(plan, Sort):
        return f"Sort({plan_shape(plan.child)})"
    if isinstance(plan, Limit):
        return f"Limit({plan_shape(plan.child)})"
    if isinstance(plan, SetOp):
        return f"SetOp[{plan.op}]({plan_shape(plan.left)},{plan_shape(plan.right)})"
    return type(plan).__name__


# ---------------------------------------------------------------------------
# Rule 1: constant folding
# ---------------------------------------------------------------------------
#
# Only folds with the engines' exact runtime semantics: both-literal
# arithmetic/comparisons go through _SCALAR_BINARY_OPS (null-safe,
# DB2-truncating division), AND/OR folds only when runtime evaluation
# order could not observe a difference (left-side domination, or both
# sides literal). Division by a zero literal is left alone so the
# runtime error is preserved.


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


_FOLDABLE_ARITH = ("+", "-", "*", "/")
_FOLDABLE_COMPARE = ("=", "<>", "<", "<=", ">", ">=")


def fold_constants(expr: ast.Expression) -> ast.Expression:
    """Bottom-up literal folding with runtime-identical semantics."""
    expr = map_children(expr, fold_constants)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.operand, ast.Literal):
        value = expr.operand.value
        if expr.op == "-" and _is_number(value):
            return ast.Literal(value=-value)
        if expr.op == "NOT" and (value is None or isinstance(value, bool)):
            return ast.Literal(value=None if value is None else not value)
    if not isinstance(expr, ast.BinaryOp):
        return expr
    left, right = expr.left, expr.right
    left_lit = isinstance(left, ast.Literal)
    right_lit = isinstance(right, ast.Literal)
    if expr.op == "AND":
        if left_lit and left.value is False:
            return ast.Literal(value=False)  # runtime short-circuits too
        if left_lit and right_lit:
            if left.value is False or right.value is False:
                return ast.Literal(value=False)
            if left.value is None or right.value is None:
                return ast.Literal(value=None)
            return ast.Literal(value=True)
        return expr
    if expr.op == "OR":
        if left_lit and left.value is True:
            return ast.Literal(value=True)  # runtime short-circuits too
        if left_lit and right_lit:
            if left.value is True or right.value is True:
                return ast.Literal(value=True)
            if left.value is None or right.value is None:
                return ast.Literal(value=None)
            return ast.Literal(value=False)
        return expr
    if not (left_lit and right_lit):
        return expr
    a, b = left.value, right.value
    if expr.op in _FOLDABLE_ARITH:
        if a is None or b is None:
            return ast.Literal(value=None)
        if not (_is_number(a) and _is_number(b)):
            return expr
        if expr.op == "/" and b == 0:
            return expr  # preserve the runtime division-by-zero error
        return ast.Literal(value=_SCALAR_BINARY_OPS[expr.op](a, b))
    if expr.op in _FOLDABLE_COMPARE:
        if a is None or b is None:
            return ast.Literal(value=None)
        if (_is_number(a) and _is_number(b)) or (
            isinstance(a, str) and isinstance(b, str)
        ):
            return ast.Literal(value=_SCALAR_BINARY_OPS[expr.op](a, b))
    return expr


def _fold_select_item(item: ast.SelectItem) -> ast.SelectItem:
    folded = fold_constants(item.expression)
    if folded is item.expression:
        return item
    return ast.SelectItem(expression=folded, alias=item.alias)


def _fold_order_item(item: ast.OrderItem) -> ast.OrderItem:
    folded = fold_constants(item.expression)
    if folded is item.expression:
        return item
    # An integer literal in ORDER BY is positional; folding must not turn
    # a computed expression (ORDER BY 1+1) into a position out of thin air.
    if (
        isinstance(folded, ast.Literal)
        and isinstance(folded.value, int)
        and not isinstance(item.expression, ast.Literal)
    ):
        return item
    return ast.OrderItem(expression=folded, ascending=item.ascending)


def _fold_node(node: PlanNode) -> PlanNode:
    if isinstance(node, Scan):
        if node.predicate is None:
            return node
        return dataclasses.replace(node, predicate=fold_constants(node.predicate))
    if isinstance(node, Filter):
        return dataclasses.replace(
            node,
            child=_fold_node(node.child),
            predicate=fold_constants(node.predicate),
        )
    if isinstance(node, Join):
        return dataclasses.replace(
            node,
            left=_fold_node(node.left),
            right=_fold_node(node.right),
            condition=fold_constants(node.condition)
            if node.condition is not None
            else None,
        )
    if isinstance(node, SubqueryBind):
        return dataclasses.replace(node, plan=_fold_node(node.plan))
    if isinstance(node, Project):
        return dataclasses.replace(
            node,
            child=_fold_node(node.child) if node.child is not None else None,
            select_items=tuple(_fold_select_item(i) for i in node.select_items),
        )
    if isinstance(node, Aggregate):
        return dataclasses.replace(
            node,
            child=_fold_node(node.child),
            select_items=tuple(_fold_select_item(i) for i in node.select_items),
            group_by=tuple(fold_constants(g) for g in node.group_by),
            having=fold_constants(node.having) if node.having is not None else None,
        )
    if isinstance(node, Sort):
        return dataclasses.replace(
            node,
            child=_fold_node(node.child),
            order_by=tuple(_fold_order_item(o) for o in node.order_by),
        )
    if isinstance(node, Limit):
        return dataclasses.replace(node, child=_fold_node(node.child))
    if isinstance(node, SetOp):
        return dataclasses.replace(
            node, left=_fold_node(node.left), right=_fold_node(node.right)
        )
    return node


# ---------------------------------------------------------------------------
# Rule 2: predicate pushdown
# ---------------------------------------------------------------------------


def _contains_subquery(expr: ast.Expression) -> bool:
    return any(isinstance(n, ast.SubqueryExpression) for n in expr.walk())


def _and_all(conjuncts: Sequence[ast.Expression]) -> ast.Expression:
    combined = conjuncts[0]
    for part in conjuncts[1:]:
        combined = ast.BinaryOp(op="AND", left=combined, right=part)
    return combined


def _bindings_of(node: PlanNode) -> Optional[set]:
    """Binding names a plan subtree exposes (None = not a from-subtree)."""
    if isinstance(node, Scan):
        return {node.binding}
    if isinstance(node, SubqueryBind):
        return {node.alias}
    if isinstance(node, Join):
        left = _bindings_of(node.left)
        right = _bindings_of(node.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(node, Filter):
        return _bindings_of(node.child)
    return None


def _qualified_bindings(expr: ast.Expression) -> Optional[set]:
    """Bindings referenced by ``expr``; None if any ref is unqualified."""
    bindings: set = set()
    for node in expr.walk():
        if isinstance(node, ast.ColumnRef):
            if node.table is None:
                return None
            bindings.add(node.table)
        elif isinstance(node, ast.Star):
            return None
    return bindings


def _pushdown_node(node: PlanNode) -> PlanNode:
    if isinstance(node, Filter):
        conjuncts = [
            c
            for c in split_conjuncts(node.predicate)
            if not (isinstance(c, ast.Literal) and c.value is True)
        ]
        child, leftover = _distribute(node.child, conjuncts)
        child = _pushdown_node(child)
        if leftover:
            return Filter(child=child, predicate=_and_all(leftover))
        return child
    if isinstance(node, (Sort, Limit)):
        return dataclasses.replace(node, child=_pushdown_node(node.child))
    if isinstance(node, Project):
        if node.child is None:
            return node
        return dataclasses.replace(node, child=_pushdown_node(node.child))
    if isinstance(node, Aggregate):
        return dataclasses.replace(node, child=_pushdown_node(node.child))
    if isinstance(node, Join):
        return dataclasses.replace(
            node, left=_pushdown_node(node.left), right=_pushdown_node(node.right)
        )
    if isinstance(node, SubqueryBind):
        return dataclasses.replace(node, plan=_pushdown_node(node.plan))
    if isinstance(node, SetOp):
        return dataclasses.replace(
            node, left=_pushdown_node(node.left), right=_pushdown_node(node.right)
        )
    return node


def _distribute(
    node: PlanNode, conjuncts: list[ast.Expression]
) -> tuple[PlanNode, list[ast.Expression]]:
    """Sink ``conjuncts`` into ``node``; returns (child, kept-above)."""
    if not conjuncts:
        return node, []
    if isinstance(node, Filter):
        # Merge stacked filters and distribute the union.
        merged = split_conjuncts(node.predicate) + conjuncts
        return _distribute(node.child, merged)
    if isinstance(node, Scan):
        absorbed = [c for c in conjuncts if not _contains_subquery(c)]
        leftover = [c for c in conjuncts if _contains_subquery(c)]
        if not absorbed:
            return node, leftover
        existing = [node.predicate] if node.predicate is not None else []
        predicate = _and_all(existing + absorbed)
        return dataclasses.replace(node, predicate=predicate), leftover
    if isinstance(node, Join):
        return _distribute_join(node, conjuncts)
    if isinstance(node, SubqueryBind):
        return _distribute_subquery(node, conjuncts)
    return node, conjuncts


def _distribute_join(
    join: Join, conjuncts: list[ast.Expression]
) -> tuple[PlanNode, list[ast.Expression]]:
    # A conjunct may sink into the side whose rows the join preserves:
    # filtering the null-padded side before the join would turn padded
    # rows back into matches (or vice versa) and change the result.
    push_left_ok = join.join_type in ("INNER", "LEFT", "CROSS")
    push_right_ok = join.join_type in ("INNER", "RIGHT", "CROSS")
    left_bindings = _bindings_of(join.left)
    right_bindings = _bindings_of(join.right)
    to_left: list[ast.Expression] = []
    to_right: list[ast.Expression] = []
    leftover: list[ast.Expression] = []
    for conjunct in conjuncts:
        if _contains_subquery(conjunct):
            leftover.append(conjunct)
            continue
        referenced = _qualified_bindings(conjunct)
        if referenced is None:
            leftover.append(conjunct)
            continue
        if push_left_ok and left_bindings is not None and referenced <= left_bindings:
            to_left.append(conjunct)
        elif (
            push_right_ok
            and right_bindings is not None
            and referenced <= right_bindings
        ):
            to_right.append(conjunct)
        else:
            leftover.append(conjunct)
    left, right = join.left, join.right
    if to_left:
        left = Filter(child=left, predicate=_and_all(to_left))
    if to_right:
        right = Filter(child=right, predicate=_and_all(to_right))
    if to_left or to_right:
        join = dataclasses.replace(join, left=left, right=right)
    return join, leftover


def _subquery_output_map(node: SubqueryBind) -> Optional[tuple]:
    """(sort, project, label->expr map) for a pushable derived table.

    Pushdown through a derived table substitutes output labels with the
    inner select-list expressions and inserts the filter below the inner
    Project. Only plain projections qualify: Limit blocks (the filter
    would change which rows the limit keeps), Aggregate blocks (outputs
    are group-level), Star / subquery items and duplicate labels block
    (no unambiguous substitution).
    """
    inner = node.plan
    sort = None
    if isinstance(inner, Sort):
        sort = inner
        inner = inner.child
    if not isinstance(inner, Project) or inner.child is None:
        return None
    mapping: dict[str, ast.Expression] = {}
    for position, item in enumerate(inner.select_items):
        if isinstance(item.expression, ast.Star):
            return None
        if _contains_subquery(item.expression):
            return None
        label = item.alias or expression_label(item.expression, position)
        if label in mapping:
            return None  # duplicate output label: substitution ambiguous
        mapping[label] = item.expression
    return sort, inner, mapping


def _distribute_subquery(
    node: SubqueryBind, conjuncts: list[ast.Expression]
) -> tuple[PlanNode, list[ast.Expression]]:
    prepared = _subquery_output_map(node)
    if prepared is None:
        return node, conjuncts
    sort, project, mapping = prepared
    pushed: list[ast.Expression] = []
    leftover: list[ast.Expression] = []
    for conjunct in conjuncts:
        translated = _translate_into_subquery(conjunct, node.alias, mapping)
        if translated is None:
            leftover.append(conjunct)
        else:
            pushed.append(translated)
    if not pushed:
        return node, leftover
    child = Filter(child=project.child, predicate=_and_all(pushed))
    inner: PlanNode = dataclasses.replace(project, child=child)
    if sort is not None:
        inner = dataclasses.replace(sort, child=inner)
    return dataclasses.replace(node, plan=inner), leftover


def _translate_into_subquery(
    conjunct: ast.Expression, alias: str, mapping: dict[str, ast.Expression]
) -> Optional[ast.Expression]:
    """Rewrite output-column refs to inner expressions, or None to bail."""
    if _contains_subquery(conjunct):
        return None

    failed = False

    def substitute(expr: ast.Expression) -> ast.Expression:
        nonlocal failed
        if isinstance(expr, ast.ColumnRef):
            if expr.table is not None and expr.table != alias:
                failed = True
                return expr
            inner = mapping.get(expr.name)
            if inner is None:
                failed = True
                return expr
            return inner
        if isinstance(expr, ast.Star):
            failed = True
            return expr
        return map_children(expr, substitute)

    translated = substitute(conjunct)
    return None if failed else translated


# ---------------------------------------------------------------------------
# Cost-based join re-association
# ---------------------------------------------------------------------------
#
# Re-parenthesises maximal INNER/CROSS join regions using estimated leaf
# cardinalities. The leaf sequence keeps its written (left-to-right)
# order: both executors emit inner/cross join rows in lexicographic
# left-major order, so any re-association over a fixed leaf order is
# byte-identical — the differential fuzz suite pins this. ON-clause
# conjuncts re-attach at the lowest join whose span covers their
# bindings. The stage bails (keeps the written shape) on anything it
# cannot reason about: subquery or unqualified conjuncts, conjuncts
# confined to a single leaf, leaves without binding sets, and unknown
# leaf cardinalities.

_REORDERABLE = ("INNER", "CROSS")

#: Per-conjunct damping applied to leaf estimates for pushed-down scan
#: predicates; mirrors the profiler's fixed 1/3 selectivity default.
_LEAF_FILTER_DAMP = 3


def _reorder_plan(
    node: PlanNode, table_rows: Callable[[str], Optional[int]]
) -> PlanNode:
    if isinstance(node, Join):
        if node.join_type in _REORDERABLE:
            return _reorder_region(node, table_rows)
        return dataclasses.replace(
            node,
            left=_reorder_plan(node.left, table_rows),
            right=_reorder_plan(node.right, table_rows),
        )
    if isinstance(node, (Filter, Sort, Limit)):
        return dataclasses.replace(node, child=_reorder_plan(node.child, table_rows))
    if isinstance(node, Project):
        if node.child is None:
            return node
        return dataclasses.replace(node, child=_reorder_plan(node.child, table_rows))
    if isinstance(node, Aggregate):
        return dataclasses.replace(node, child=_reorder_plan(node.child, table_rows))
    if isinstance(node, SubqueryBind):
        return dataclasses.replace(node, plan=_reorder_plan(node.plan, table_rows))
    if isinstance(node, SetOp):
        return dataclasses.replace(
            node,
            left=_reorder_plan(node.left, table_rows),
            right=_reorder_plan(node.right, table_rows),
        )
    return node


def _gather_region(
    node: PlanNode, leaves: list, conjuncts: list
) -> None:
    """Flatten a maximal INNER/CROSS join region into leaves + conjuncts."""
    if isinstance(node, Join) and node.join_type in _REORDERABLE:
        _gather_region(node.left, leaves, conjuncts)
        _gather_region(node.right, leaves, conjuncts)
        if node.condition is not None:
            conjuncts.extend(split_conjuncts(node.condition))
    else:
        leaves.append(node)


def _leaf_estimate(
    leaf: PlanNode, table_rows: Callable[[str], Optional[int]]
) -> Optional[int]:
    """Row estimate for a region leaf; None when unknown (forces a bail)."""
    if isinstance(leaf, Filter):
        rows = _leaf_estimate(leaf.child, table_rows)
        if rows is None:
            return None
        for _ in split_conjuncts(leaf.predicate):
            rows = max(1, rows // _LEAF_FILTER_DAMP) if rows else 0
        return rows
    if isinstance(leaf, Scan):
        rows = table_rows(leaf.table)
        if rows is None or rows < 0:
            return None
        if leaf.predicate is not None:
            for _ in split_conjuncts(leaf.predicate):
                rows = max(1, rows // _LEAF_FILTER_DAMP) if rows else 0
        return rows
    return None


def _reorder_region(
    join: Join, table_rows: Callable[[str], Optional[int]]
) -> PlanNode:
    leaves: list[PlanNode] = []
    conjuncts: list[ast.Expression] = []
    _gather_region(join, leaves, conjuncts)
    new_leaves = [_reorder_plan(leaf, table_rows) for leaf in leaves]

    def keep_shape(node: PlanNode, it) -> PlanNode:
        if isinstance(node, Join) and node.join_type in _REORDERABLE:
            left = keep_shape(node.left, it)
            right = keep_shape(node.right, it)
            return dataclasses.replace(node, left=left, right=right)
        return next(it)

    def fallback() -> PlanNode:
        return keep_shape(join, iter(new_leaves))

    n = len(leaves)
    if n < 3:
        return fallback()
    sizes = [_leaf_estimate(leaf, table_rows) for leaf in leaves]
    if any(size is None for size in sizes):
        return fallback()
    leaf_bindings = [_bindings_of(leaf) for leaf in leaves]
    if any(b is None for b in leaf_bindings):
        return fallback()
    seen: set = set()
    for bindings in leaf_bindings:
        if bindings & seen:
            return fallback()  # duplicate binding names: spans are ambiguous
        seen |= bindings
    cond_bindings: list[set] = []
    for conjunct in conjuncts:
        if _contains_subquery(conjunct):
            return fallback()
        referenced = _qualified_bindings(conjunct)
        if referenced is None or not referenced:
            return fallback()
        if any(referenced <= bindings for bindings in leaf_bindings):
            # Confined to one leaf: has no lowest *join* to attach to.
            return fallback()
        cond_bindings.append(referenced)

    # span[i][j]: union of binding names exposed by leaves i..j.
    span = [[set() for _ in range(n)] for _ in range(n)]
    for i in range(n):
        acc: set = set()
        for j in range(i, n):
            acc = acc | leaf_bindings[j]
            span[i][j] = acc

    def join_rows(l_rows: int, r_rows: int, left_span: set, right_span: set) -> int:
        both = left_span | right_span
        for referenced in cond_bindings:
            if referenced <= both and referenced & left_span and referenced & right_span:
                return max(l_rows, r_rows)
        return l_rows * r_rows

    # Optimal re-parenthesisation over contiguous intervals (O(n^3) DP).
    # Cost of a join = rows consumed from both sides plus rows produced.
    rows_tbl = [[0] * n for _ in range(n)]
    cost_tbl = [[0.0] * n for _ in range(n)]
    split_tbl = [[0] * n for _ in range(n)]
    for i in range(n):
        rows_tbl[i][i] = sizes[i]
    for length in range(2, n + 1):
        for i in range(0, n - length + 1):
            j = i + length - 1
            best_cost = float("inf")
            best_rows = 0
            best_k = i
            for k in range(i, j):
                l_rows, r_rows = rows_tbl[i][k], rows_tbl[k + 1][j]
                out = join_rows(l_rows, r_rows, span[i][k], span[k + 1][j])
                cost = cost_tbl[i][k] + cost_tbl[k + 1][j] + l_rows + r_rows + out
                if cost < best_cost:
                    best_cost, best_rows, best_k = cost, out, k
            cost_tbl[i][j] = best_cost
            rows_tbl[i][j] = best_rows
            split_tbl[i][j] = best_k

    # Cost the written shape with the same model; only rebuild on a win.
    counter = {"next": 0}

    def shape_cost(node: PlanNode):
        if isinstance(node, Join) and node.join_type in _REORDERABLE:
            li, lj, l_rows, l_cost = shape_cost(node.left)
            ri, rj, r_rows, r_cost = shape_cost(node.right)
            out = join_rows(l_rows, r_rows, span[li][lj], span[ri][rj])
            return li, rj, out, l_cost + r_cost + l_rows + r_rows + out
        index = counter["next"]
        counter["next"] += 1
        return index, index, sizes[index], 0.0

    _, _, _, original_cost = shape_cost(join)
    if cost_tbl[0][n - 1] >= original_cost:
        return fallback()

    remaining = list(range(len(conjuncts)))

    def build(i: int, j: int) -> PlanNode:
        if i == j:
            return new_leaves[i]
        k = split_tbl[i][j]
        here: list[int] = []
        for index in list(remaining):
            referenced = cond_bindings[index]
            if (
                referenced <= span[i][j]
                and not referenced <= span[i][k]
                and not referenced <= span[k + 1][j]
            ):
                here.append(index)
                remaining.remove(index)
        left = build(i, k)
        right = build(k + 1, j)
        if here:
            condition = _and_all([conjuncts[index] for index in here])
            return Join(left=left, right=right, join_type="INNER", condition=condition)
        return Join(left=left, right=right, join_type="CROSS", condition=None)

    rebuilt = build(0, n - 1)
    if remaining:  # pragma: no cover - every multi-leaf conjunct attaches
        return fallback()
    return rebuilt


# ---------------------------------------------------------------------------
# Rule 3: projection pruning
# ---------------------------------------------------------------------------
#
# One SELECT unit at a time (derived tables and set-operation branches
# are their own units), collect every column reference the unit's
# expressions make — including those inside scalar subqueries, which may
# be correlated against this unit's tables — and restrict each Scan to
# the referenced names. Unqualified references are added to every scan
# (so scope-ambiguity errors are preserved); any `*` wildcard that could
# expand a scan's columns disables pruning for the affected bindings.


class _Refs:
    __slots__ = ("by_binding", "unqualified", "wildcard_all", "wild_bindings")

    def __init__(self) -> None:
        self.by_binding: dict[str, set] = {}
        self.unqualified: set = set()
        self.wildcard_all = False
        self.wild_bindings: set = set()


def _prune_plan(node: PlanNode) -> PlanNode:
    if isinstance(node, Limit):
        return dataclasses.replace(node, child=_prune_plan(node.child))
    if isinstance(node, Sort) and isinstance(node.child, SetOp):
        return dataclasses.replace(node, child=_prune_plan(node.child))
    if isinstance(node, SetOp):
        return dataclasses.replace(
            node, left=_prune_plan(node.left), right=_prune_plan(node.right)
        )
    refs = _Refs()
    _collect_unit(node, refs)
    return _apply_prune(node, refs)


def _collect_unit(node: PlanNode, refs: _Refs) -> None:
    if isinstance(node, Sort):
        for order in node.order_by:
            _collect_expr(order.expression, refs, None)
        _collect_unit(node.child, refs)
    elif isinstance(node, (Project, Aggregate)):
        for item in node.select_items:
            _collect_expr(item.expression, refs, None)
        if isinstance(node, Aggregate):
            for group in node.group_by:
                _collect_expr(group, refs, None)
            if node.having is not None:
                _collect_expr(node.having, refs, None)
        if getattr(node, "child", None) is not None:
            _collect_unit(node.child, refs)
    elif isinstance(node, Filter):
        _collect_expr(node.predicate, refs, None)
        _collect_unit(node.child, refs)
    elif isinstance(node, Join):
        if node.condition is not None:
            _collect_expr(node.condition, refs, None)
        _collect_unit(node.left, refs)
        _collect_unit(node.right, refs)
    elif isinstance(node, Scan):
        if node.predicate is not None:
            _collect_expr(node.predicate, refs, None)
    elif isinstance(node, SubqueryBind):
        pass  # separate unit; pruned in _apply_prune
    elif isinstance(node, (Limit, SetOp)):  # pragma: no cover - defensive
        refs.wildcard_all = True


def _collect_expr(expr: ast.Expression, refs: _Refs, star_scope) -> None:
    """Record column refs; ``star_scope`` names the bindings a bare `*`
    can expand (None while inside the unit itself)."""
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            refs.by_binding.setdefault(expr.table, set()).add(expr.name)
        else:
            refs.unqualified.add(expr.name)
        return
    if isinstance(expr, ast.Star):
        if expr.table is not None:
            refs.wild_bindings.add(expr.table)
        elif star_scope is None:
            refs.wildcard_all = True
        else:
            refs.wild_bindings.update(star_scope)
        return
    if isinstance(expr, ast.FunctionCall):
        for arg in expr.args:
            if isinstance(arg, ast.Star):
                continue  # COUNT(*) reads no particular column
            _collect_expr(arg, refs, star_scope)
        return
    if isinstance(expr, ast.SubqueryExpression):
        _collect_statement(expr.query, refs)
        if expr.operand is not None:
            _collect_expr(expr.operand, refs, star_scope)
        return

    def visit(child: ast.Expression) -> ast.Expression:
        _collect_expr(child, refs, star_scope)
        return child

    map_children(expr, visit)


def _collect_statement(stmt: Statement, refs: _Refs) -> None:
    """Collect refs of a nested (sub)query AST, conservatively attributing
    them to the enclosing unit: correlated refs must keep their outer
    columns alive, and a name collision only widens a scan."""
    if isinstance(stmt, ast.SetOperation):
        _collect_statement(stmt.left, refs)
        _collect_statement(stmt.right, refs)
        for order in stmt.order_by:
            _collect_expr(order.expression, refs, set())
        return
    own = _binding_names(stmt.from_item)
    for expr in stmt.iter_expressions():
        _collect_expr(expr, refs, own)
    _collect_from_ast(stmt.from_item, refs)


def _binding_names(item: Optional[ast.FromItem]) -> set:
    if item is None:
        return set()
    if isinstance(item, (ast.TableRef, ast.SubquerySource)):
        return {item.binding}
    if isinstance(item, ast.Join):
        return _binding_names(item.left) | _binding_names(item.right)
    return set()


def _collect_from_ast(item: Optional[ast.FromItem], refs: _Refs) -> None:
    if isinstance(item, ast.SubquerySource):
        _collect_statement(item.query, refs)
    elif isinstance(item, ast.Join):
        _collect_from_ast(item.left, refs)
        _collect_from_ast(item.right, refs)


def _apply_prune(node: PlanNode, refs: _Refs) -> PlanNode:
    if isinstance(node, Scan):
        if refs.wildcard_all or node.binding in refs.wild_bindings:
            return node
        wanted = refs.by_binding.get(node.binding, set()) | refs.unqualified
        return dataclasses.replace(node, columns=tuple(sorted(wanted)))
    if isinstance(node, SubqueryBind):
        return dataclasses.replace(node, plan=_prune_plan(node.plan))
    if isinstance(node, Filter):
        return dataclasses.replace(node, child=_apply_prune(node.child, refs))
    if isinstance(node, Join):
        return dataclasses.replace(
            node,
            left=_apply_prune(node.left, refs),
            right=_apply_prune(node.right, refs),
        )
    if isinstance(node, (Sort, Aggregate)):
        return dataclasses.replace(node, child=_apply_prune(node.child, refs))
    if isinstance(node, Project):
        if node.child is None:
            return node
        return dataclasses.replace(node, child=_apply_prune(node.child, refs))
    return node


# ---------------------------------------------------------------------------
# Shared row helpers (used by both physical backends)
# ---------------------------------------------------------------------------


def dedup_rows(rows: list[tuple]) -> list[tuple]:
    """First-occurrence-order row dedup (DISTINCT / set-op semantics)."""
    seen: set = set()
    out: list[tuple] = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            out.append(row)
    return out


def slice_rows(
    rows: list[tuple], offset: Optional[int], limit: Optional[int]
) -> list[tuple]:
    """Apply LIMIT/OFFSET to materialised rows."""
    start = offset or 0
    if limit is None:
        return rows[start:] if start else rows
    return rows[start : start + limit]


def combine_set_rows(
    op: str,
    left_cols: list[str],
    left_rows: list[tuple],
    right_cols: list[str],
    right_rows: list[tuple],
) -> list[tuple]:
    """UNION [ALL] / EXCEPT / INTERSECT row combination."""
    if len(left_cols) != len(right_cols):
        raise SqlError("set operation operands have different widths")
    if op == "UNION ALL":
        return left_rows + right_rows
    if op == "UNION":
        return dedup_rows(left_rows + right_rows)
    if op == "EXCEPT":
        right_set = set(right_rows)
        return dedup_rows([r for r in left_rows if r not in right_set])
    if op == "INTERSECT":
        right_set = set(right_rows)
        return dedup_rows([r for r in left_rows if r in right_set])
    raise ParseError(f"unknown set operation {op}")


def order_rows_by_output(
    columns: list[str],
    rows: list[tuple],
    order_by: Sequence[ast.OrderItem],
    params: Sequence[object] = (),
) -> list[tuple]:
    """ORDER BY over an output row set (set operations): keys may be
    output columns by name or 1-based position."""
    scope = Scope([(None, name) for name in columns])
    fns = []
    for order in order_by:
        expr = order.expression
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            index = resolve_order_position(expr.value, len(columns))
            expr = ast.ColumnRef(name=columns[index])
        fns.append(compile_scalar(expr, scope, params))
    keys = [tuple(fn(row) for fn in fns) for row in rows]
    return sort_rows_with_keys(rows, keys, [o.ascending for o in order_by])

"""Correlated-subquery support shared by both engines.

A subquery is *correlated* when it references columns of the enclosing
query. Both executors handle it the same way: the engine-side subquery
resolver analyses the subquery once against the outer scope, and for each
outer row produces a bound copy of the subquery in which every outer
reference is replaced by that row's value as a literal. Bound copies are
executed through the normal engine path and memoised by the tuple of
bound values, so a correlated subquery over K distinct outer key values
executes K times, not N times.

Only one level of correlation is supported (a subquery may reference its
immediate enclosing query). A reference that resolves in neither the
subquery's own scope nor the outer scope fails with the usual unknown-
column error.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.expressions import Scope
from repro.sql.planning import map_children

__all__ = [
    "CorrelationPlan",
    "SubqueryExecutor",
    "analyze_subquery",
    "scope_of_from_item",
]

#: Resolves a base-table name to its column names.
ColumnNamesOf = Callable[[str], list[str]]


def scope_of_from_item(
    item: Optional[ast.FromItem], column_names_of: ColumnNamesOf
) -> Scope:
    """Name-resolution scope a query's FROM clause provides."""
    entries: list[tuple[Optional[str], str]] = []
    _collect_scope(item, column_names_of, entries)
    return Scope(entries)


def _collect_scope(item, column_names_of, entries) -> None:
    if item is None:
        return
    if isinstance(item, ast.TableRef):
        for name in column_names_of(item.name):
            entries.append((item.binding, name))
    elif isinstance(item, ast.SubquerySource):
        from repro.sql.expressions import expression_label

        for position, select_item in enumerate(item.query.select_items):
            label = select_item.alias or expression_label(
                select_item.expression, position
            )
            entries.append((item.alias, label))
    elif isinstance(item, ast.Join):
        _collect_scope(item.left, column_names_of, entries)
        _collect_scope(item.right, column_names_of, entries)


class CorrelationPlan:
    """Analysis result for one subquery against one outer scope."""

    def __init__(
        self,
        query: ast.SelectStatement,
        outer_scope: Scope,
        column_names_of: ColumnNamesOf,
    ) -> None:
        self._query = query
        self._outer_scope = outer_scope
        self._column_names_of = column_names_of
        #: Outer scope positions the subquery reads, in discovery order.
        self.outer_indexes: list[int] = []
        # Detection pass: bind against a sentinel row; the bound query is
        # discarded, only the used indexes matter.
        self._bind(None)

    @property
    def is_correlated(self) -> bool:
        return bool(self.outer_indexes)

    def bind(self, row: Sequence[object]) -> ast.SelectStatement:
        """The subquery with outer references bound to ``row``'s values."""
        return self._bind(row)

    def key(self, row: Sequence[object]) -> tuple:
        """Memoisation key: the outer values this subquery depends on."""
        return tuple(row[index] for index in self.outer_indexes)

    # -- rewriting ----------------------------------------------------------

    def _bind(self, row: Optional[Sequence[object]]) -> ast.SelectStatement:
        collecting = row is None
        return self._rewrite_query(
            self._query, self._outer_scope, row, collecting
        )

    def _rewrite_query(
        self,
        query: ast.SelectStatement,
        outer_scope: Scope,
        row: Optional[Sequence[object]],
        collecting: bool,
    ) -> ast.SelectStatement:
        inner_scope = scope_of_from_item(query.from_item, self._column_names_of)

        def rewrite_expr(expr: ast.Expression) -> ast.Expression:
            if isinstance(expr, ast.ColumnRef):
                if _resolves(inner_scope, expr):
                    return expr
                index = _try_resolve(outer_scope, expr)
                if index is None:
                    return expr  # let normal execution report the error
                if collecting and index not in self.outer_indexes:
                    self.outer_indexes.append(index)
                value = row[index] if row is not None else None
                return ast.Literal(value=value)
            if isinstance(expr, ast.SubqueryExpression):
                # Recurse so references to the *outermost* scope are bound
                # even inside nested subqueries. References to this
                # (middle) query's columns stay as ColumnRefs — the
                # engine binds them when the middle query executes.
                rebound = self._rewrite_query(
                    expr.query, outer_scope, row, collecting
                )
                new = dataclasses.replace(expr, query=rebound)
                if new.operand is not None:
                    new = dataclasses.replace(
                        new, operand=rewrite_expr(new.operand)
                    )
                return new
            return map_children(expr, rewrite_expr)

        new_items = [
            ast.SelectItem(
                expression=rewrite_expr(item.expression), alias=item.alias
            )
            for item in query.select_items
        ]
        new_from = self._rewrite_from(
            query.from_item, outer_scope, row, collecting, rewrite_expr
        )
        return dataclasses.replace(
            query,
            select_items=new_items,
            from_item=new_from,
            where=rewrite_expr(query.where) if query.where is not None else None,
            group_by=[rewrite_expr(g) for g in query.group_by],
            having=rewrite_expr(query.having)
            if query.having is not None
            else None,
            order_by=[
                ast.OrderItem(
                    expression=rewrite_expr(o.expression),
                    ascending=o.ascending,
                )
                for o in query.order_by
            ],
        )

    def _rewrite_from(
        self, item, outer_scope, row, collecting, rewrite_expr
    ):
        if item is None or isinstance(item, ast.TableRef):
            return item
        if isinstance(item, ast.SubquerySource):
            # Derived tables may also reference the outer query (a small
            # LATERAL-like extension; standard SQL forbids it, DB2's
            # lateral tables allow it).
            return dataclasses.replace(
                item,
                query=self._rewrite_query(
                    item.query, outer_scope, row, collecting
                ),
            )
        if isinstance(item, ast.Join):
            return dataclasses.replace(
                item,
                left=self._rewrite_from(
                    item.left, outer_scope, row, collecting, rewrite_expr
                ),
                right=self._rewrite_from(
                    item.right, outer_scope, row, collecting, rewrite_expr
                ),
                condition=rewrite_expr(item.condition)
                if item.condition is not None
                else None,
            )
        return item


def _resolves(scope: Scope, ref: ast.ColumnRef) -> bool:
    try:
        scope.resolve(ref.name, ref.table)
        return True
    except ParseError:
        return False


def _try_resolve(scope: Scope, ref: ast.ColumnRef) -> Optional[int]:
    try:
        return scope.resolve(ref.name, ref.table)
    except ParseError:
        return None


def analyze_subquery(
    query: ast.SelectStatement,
    outer_scope: Scope,
    column_names_of: ColumnNamesOf,
) -> CorrelationPlan:
    """Analyse ``query`` for references into ``outer_scope``."""
    return CorrelationPlan(query, outer_scope, column_names_of)


class SubqueryExecutor:
    """The engines' subquery resolver: analysis, binding, memoisation.

    One instance is created per (statement, compile scope). Call it as
    ``resolver(query, row)``; uncorrelated subqueries execute once,
    correlated ones execute once per distinct tuple of bound outer
    values.
    """

    def __init__(
        self,
        outer_scope: Scope,
        column_names_of: ColumnNamesOf,
        execute: Callable[[ast.SelectStatement], list[tuple]],
    ) -> None:
        self._outer_scope = outer_scope
        self._column_names_of = column_names_of
        self._execute = execute
        self._plans: dict[int, CorrelationPlan] = {}
        self._memo: dict[tuple[int, tuple], list[tuple]] = {}

    def _plan(self, query: ast.SelectStatement) -> CorrelationPlan:
        plan = self._plans.get(id(query))
        if plan is None:
            plan = analyze_subquery(
                query, self._outer_scope, self._column_names_of
            )
            self._plans[id(query)] = plan
        return plan

    def is_correlated(self, query: ast.SelectStatement) -> bool:
        return self._plan(query).is_correlated

    def __call__(
        self, query: ast.SelectStatement, row: Sequence[object] = ()
    ) -> list[tuple]:
        plan = self._plan(query)
        if not plan.is_correlated:
            key = (id(query), ())
            rows = self._memo.get(key)
            if rows is None:
                rows = self._execute(query)
                self._memo[key] = rows
            return rows
        key = (id(query), plan.key(row))
        rows = self._memo.get(key)
        if rows is None:
            rows = self._execute(plan.bind(row))
            self._memo[key] = rows
        return rows

"""SQL type system.

Types carry three responsibilities in the federation:

* **coercion** — validate/convert Python values on INSERT/UPDATE so both
  engines store identical representations;
* **columnar mapping** — advertise a numpy dtype so the accelerator can
  store a column as a packed array (``object`` arrays are the fallback for
  strings, decimals, and temporal values);
* **byte accounting** — estimate the on-wire size of a value, which feeds
  the interconnect cost model used by the data-movement experiments.
"""

from __future__ import annotations

import datetime
import decimal
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import TypeError_

__all__ = [
    "SqlType",
    "IntegerType",
    "SmallIntType",
    "BigIntType",
    "DoubleType",
    "DecimalType",
    "VarcharType",
    "CharType",
    "BooleanType",
    "DateType",
    "TimestampType",
    "INTEGER",
    "SMALLINT",
    "BIGINT",
    "DOUBLE",
    "BOOLEAN",
    "DATE",
    "TIMESTAMP",
    "type_from_name",
    "infer_type",
]


@dataclass(frozen=True)
class SqlType:
    """Base class for SQL column types.

    Instances are immutable and safe to share between catalog entries.
    """

    def coerce(self, value):
        """Convert ``value`` to this type's canonical Python representation.

        ``None`` always passes through (NULL). Raises
        :class:`~repro.errors.TypeError_` when the value is incompatible.
        """
        raise NotImplementedError

    @property
    def numpy_dtype(self):
        """Numpy dtype used by the accelerator's column store.

        ``object`` means the column is stored unpacked; numeric types map
        to fixed-width dtypes and use a separate null mask.
        """
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return False

    def byte_size(self, value) -> int:
        """Estimated serialized size of one value, in bytes."""
        raise NotImplementedError

    def render(self) -> str:
        """SQL spelling of the type, e.g. ``VARCHAR(32)``."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _reject(value, type_name: str):
    raise TypeError_(f"value {value!r} is not valid for type {type_name}")


@dataclass(frozen=True)
class _IntType(SqlType):
    """Shared implementation for the fixed-width integer types."""

    _BITS = 32

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            # Bools are ints in Python; accept them as 0/1 explicitly.
            return int(value)
        if isinstance(value, (int, np.integer)):
            result = int(value)
        elif isinstance(value, (float, np.floating)):
            if not float(value).is_integer():
                _reject(value, self.render())
            result = int(value)
        elif isinstance(value, str):
            try:
                result = int(value.strip())
            except ValueError:
                _reject(value, self.render())
        else:
            _reject(value, self.render())
        limit = 2 ** (self._BITS - 1)
        if not -limit <= result < limit:
            raise TypeError_(
                f"value {result} out of range for {self.render()}"
            )
        return result

    @property
    def numpy_dtype(self):
        return np.dtype(np.int64)

    @property
    def is_numeric(self) -> bool:
        return True

    def byte_size(self, value) -> int:
        return self._BITS // 8


@dataclass(frozen=True)
class SmallIntType(_IntType):
    _BITS = 16

    def render(self) -> str:
        return "SMALLINT"


@dataclass(frozen=True)
class IntegerType(_IntType):
    _BITS = 32

    def render(self) -> str:
        return "INTEGER"


@dataclass(frozen=True)
class BigIntType(_IntType):
    _BITS = 64

    def render(self) -> str:
        return "BIGINT"


@dataclass(frozen=True)
class DoubleType(SqlType):
    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float, np.integer, np.floating)):
            return float(value)
        if isinstance(value, decimal.Decimal):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                _reject(value, "DOUBLE")
        _reject(value, "DOUBLE")

    @property
    def numpy_dtype(self):
        return np.dtype(np.float64)

    @property
    def is_numeric(self) -> bool:
        return True

    def byte_size(self, value) -> int:
        return 8

    def render(self) -> str:
        return "DOUBLE"


@dataclass(frozen=True)
class DecimalType(SqlType):
    """Fixed-point DECIMAL(precision, scale), stored as `decimal.Decimal`."""

    precision: int = 15
    scale: int = 2

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, bool):
            value = int(value)
        try:
            result = decimal.Decimal(str(value))
        except decimal.InvalidOperation:
            _reject(value, self.render())
        quantum = decimal.Decimal(1).scaleb(-self.scale)
        result = result.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
        digits = result.as_tuple()
        if len(digits.digits) - max(0, -digits.exponent) > self.precision - self.scale:
            raise TypeError_(
                f"value {value!r} exceeds precision of {self.render()}"
            )
        return result

    @property
    def is_numeric(self) -> bool:
        return True

    def byte_size(self, value) -> int:
        return (self.precision + 1) // 2 + 1

    def render(self) -> str:
        return f"DECIMAL({self.precision}, {self.scale})"


@dataclass(frozen=True)
class VarcharType(SqlType):
    length: int = 255

    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, str):
            text = value
        elif isinstance(value, (int, float, decimal.Decimal)):
            text = str(value)
        else:
            _reject(value, self.render())
        if len(text) > self.length:
            raise TypeError_(
                f"string of length {len(text)} exceeds {self.render()}"
            )
        return text

    def byte_size(self, value) -> int:
        return 4 + len(value)

    def render(self) -> str:
        return f"VARCHAR({self.length})"


@dataclass(frozen=True)
class CharType(SqlType):
    """Fixed-length CHAR(n); values are space-padded to the length."""

    length: int = 1

    def coerce(self, value):
        if value is None:
            return None
        if not isinstance(value, str):
            _reject(value, self.render())
        if len(value) > self.length:
            raise TypeError_(
                f"string of length {len(value)} exceeds {self.render()}"
            )
        return value.ljust(self.length)

    def byte_size(self, value) -> int:
        return self.length

    def render(self) -> str:
        return f"CHAR({self.length})"


@dataclass(frozen=True)
class BooleanType(SqlType):
    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, (bool, np.bool_)):
            return bool(value)
        if isinstance(value, (int, np.integer)) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1", "yes"):
                return True
            if lowered in ("false", "f", "0", "no"):
                return False
        _reject(value, "BOOLEAN")

    @property
    def numpy_dtype(self):
        return np.dtype(np.bool_)

    def byte_size(self, value) -> int:
        return 1

    def render(self) -> str:
        return "BOOLEAN"


_DATE_FORMAT = "%Y-%m-%d"
_TIMESTAMP_FORMATS = ("%Y-%m-%d %H:%M:%S.%f", "%Y-%m-%d %H:%M:%S", "%Y-%m-%d")


@dataclass(frozen=True)
class DateType(SqlType):
    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.datetime.strptime(value.strip(), _DATE_FORMAT).date()
            except ValueError:
                _reject(value, "DATE")
        _reject(value, "DATE")

    def byte_size(self, value) -> int:
        return 4

    def render(self) -> str:
        return "DATE"


@dataclass(frozen=True)
class TimestampType(SqlType):
    def coerce(self, value):
        if value is None:
            return None
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            text = value.strip()
            for fmt in _TIMESTAMP_FORMATS:
                try:
                    return datetime.datetime.strptime(text, fmt)
                except ValueError:
                    continue
            _reject(value, "TIMESTAMP")
        _reject(value, "TIMESTAMP")

    def byte_size(self, value) -> int:
        return 10

    def render(self) -> str:
        return "TIMESTAMP"


INTEGER = IntegerType()
SMALLINT = SmallIntType()
BIGINT = BigIntType()
DOUBLE = DoubleType()
BOOLEAN = BooleanType()
DATE = DateType()
TIMESTAMP = TimestampType()

_SIMPLE_TYPES = {
    "INTEGER": INTEGER,
    "INT": INTEGER,
    "SMALLINT": SMALLINT,
    "BIGINT": BIGINT,
    "DOUBLE": DOUBLE,
    "FLOAT": DOUBLE,
    "REAL": DOUBLE,
    "BOOLEAN": BOOLEAN,
    "DATE": DATE,
    "TIMESTAMP": TIMESTAMP,
}

_PARAMETERIZED_TYPES = {
    "VARCHAR": VarcharType,
    "CHAR": CharType,
    "CHARACTER": CharType,
    "DECIMAL": DecimalType,
    "NUMERIC": DecimalType,
}


def type_from_name(name: str, params: tuple[int, ...] = ()) -> SqlType:
    """Resolve a type name (plus optional length/precision) to a type object.

    >>> type_from_name("VARCHAR", (32,)).render()
    'VARCHAR(32)'
    """
    upper = name.upper()
    if upper in _SIMPLE_TYPES:
        if params:
            raise TypeError_(f"type {upper} takes no parameters")
        return _SIMPLE_TYPES[upper]
    if upper in _PARAMETERIZED_TYPES:
        factory = _PARAMETERIZED_TYPES[upper]
        if upper in ("DECIMAL", "NUMERIC"):
            if len(params) > 2:
                raise TypeError_("DECIMAL takes at most (precision, scale)")
            precision = params[0] if params else 15
            scale = params[1] if len(params) > 1 else 0
            return factory(precision, scale)
        if len(params) > 1:
            raise TypeError_(f"type {upper} takes at most one parameter")
        if params:
            return factory(params[0])
        return factory()
    raise TypeError_(f"unknown SQL type: {name}")


def infer_type(value) -> SqlType:
    """Infer a column type from a sample Python value (used by the loader).

    Strings map to a VARCHAR wide enough for the sample (rounded up), so
    schemas inferred from a data sample leave headroom for later rows.
    """
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, (int, np.integer)):
        return BIGINT if abs(int(value)) >= 2**31 else INTEGER
    if isinstance(value, (float, np.floating)):
        return DOUBLE
    if isinstance(value, decimal.Decimal):
        return DecimalType(31, max(0, -value.as_tuple().exponent))
    if isinstance(value, datetime.datetime):
        return TIMESTAMP
    if isinstance(value, datetime.date):
        return DATE
    if isinstance(value, str):
        width = max(16, 2 ** math.ceil(math.log2(max(1, len(value)) + 1)))
        return VarcharType(width)
    raise TypeError_(f"cannot infer SQL type for {value!r}")

"""Recursive-descent parser for the federation's SQL dialect.

Supported statements:

* ``SELECT`` with joins, derived tables, scalar/IN/EXISTS subqueries,
  GROUP BY / HAVING, ORDER BY, LIMIT/OFFSET and ``FETCH FIRST n ROWS ONLY``
* ``CREATE TABLE`` with column constraints and the paper's
  ``IN ACCELERATOR`` and ``DISTRIBUTE BY HASH(...)`` clauses, plus
  ``CREATE TABLE ... AS (SELECT ...)``
* ``INSERT`` (VALUES and INSERT-SELECT), ``UPDATE``, ``DELETE``
* ``GRANT`` / ``REVOKE`` on tables and procedures
* ``CALL`` for the in-database analytics framework
* ``COMMIT`` / ``ROLLBACK`` / ``BEGIN``
* ``UNION [ALL]`` / ``EXCEPT`` / ``INTERSECT``
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.types import type_from_name

__all__ = ["parse_statement", "parse_script", "Parser"]


def parse_statement(sql: str) -> ast.Statement:
    """Parse a single SQL statement (a trailing semicolon is allowed)."""
    parser = Parser(tokenize(sql))
    statement = parser.parse_single()
    return statement


def parse_script(sql: str) -> list[ast.Statement]:
    """Parse a semicolon-separated sequence of statements."""
    parser = Parser(tokenize(sql))
    return parser.parse_all()


_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._param_count = 0

    # -- token helpers ------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._current
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current
        found = token.value or "<end of input>"
        return ParseError(f"{message}, found {found!r}")

    def _expect_keyword(self, *names: str) -> Token:
        if self._current.matches_keyword(*names):
            return self._advance()
        raise self._error(f"expected {' or '.join(names)}")

    def _accept_keyword(self, *names: str) -> bool:
        if self._current.matches_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == value:
            return self._advance()
        raise self._error(f"expected {value!r}")

    def _accept_punct(self, value: str) -> bool:
        token = self._current
        if token.type is TokenType.PUNCTUATION and token.value == value:
            self._advance()
            return True
        return False

    def _accept_operator(self, *values: str) -> Optional[str]:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value in values:
            self._advance()
            return token.value
        return None

    def _expect_identifier(self) -> str:
        token = self._current
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Allow non-reserved keywords in identifier position where harmless.
        if token.type is TokenType.KEYWORD and token.value in (
            "COUNT",
            "SUM",
            "AVG",
            "MIN",
            "MAX",
            "FIRST",
            "NEXT",
            "KEY",
            "WORK",
            "RANDOM",
        ):
            self._advance()
            return token.value
        raise self._error("expected identifier")

    def _qualified_name(self) -> str:
        """Parse ``IDENT[.IDENT]`` into a dotted name string."""
        name = self._expect_identifier()
        while self._accept_operator("."):
            name += "." + self._expect_identifier()
        return name

    # -- entry points -------------------------------------------------------

    def parse_single(self) -> ast.Statement:
        statement = self._statement()
        self._accept_punct(";")
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return statement

    def parse_all(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while self._current.type is not TokenType.EOF:
            if self._accept_punct(";"):
                continue
            statements.append(self._statement())
        return statements

    # -- statements ---------------------------------------------------------

    def _statement(self) -> ast.Statement:
        token = self._current
        if token.matches_keyword("SELECT") or (
            token.type is TokenType.PUNCTUATION and token.value == "("
        ):
            return self._select_with_set_ops()
        if token.matches_keyword("CREATE"):
            return self._create()
        if token.matches_keyword("DROP"):
            return self._drop_table()
        if token.matches_keyword("ALTER"):
            return self._alter()
        if token.matches_keyword("INSERT"):
            return self._insert()
        if token.matches_keyword("UPDATE"):
            return self._update()
        if token.matches_keyword("DELETE"):
            return self._delete()
        if token.matches_keyword("GRANT"):
            return self._grant_or_revoke(is_grant=True)
        if token.matches_keyword("REVOKE"):
            return self._grant_or_revoke(is_grant=False)
        if token.matches_keyword("CALL"):
            return self._call()
        if token.matches_keyword("SET"):
            return self._set_register()
        if token.matches_keyword("EXPLAIN"):
            self._advance()
            analyze = self._accept_keyword("ANALYZE")
            return ast.ExplainStatement(
                statement=self._statement(), analyze=analyze
            )
        if token.matches_keyword("COMMIT"):
            self._advance()
            self._accept_keyword("WORK")
            return ast.CommitStatement()
        if token.matches_keyword("ROLLBACK"):
            self._advance()
            self._accept_keyword("WORK")
            return ast.RollbackStatement()
        if token.matches_keyword("BEGIN"):
            self._advance()
            self._accept_keyword("TRANSACTION", "WORK")
            return ast.BeginStatement()
        raise self._error("expected a statement")

    def _select_with_set_ops(self) -> Union[ast.SelectStatement, ast.SetOperation]:
        left = self._select_operand()
        while self._current.matches_keyword("UNION", "EXCEPT", "INTERSECT"):
            op = self._advance().value
            if op == "UNION" and self._accept_keyword("ALL"):
                op = "UNION ALL"
            right = self._select_operand()
            left = ast.SetOperation(op=op, left=left, right=right)
        # A trailing ORDER BY / LIMIT belongs to the whole expression.
        order_by = self._order_by_clause()
        limit, offset = self._limit_clause()
        if order_by:
            left.order_by = order_by
        if limit is not None:
            left.limit = limit
        if offset is not None:
            left.offset = offset
        return left

    def _select_operand(self) -> Union[ast.SelectStatement, ast.SetOperation]:
        if self._accept_punct("("):
            inner = self._select_with_set_ops()
            self._expect_punct(")")
            return inner
        return self._select()

    def _subquery_select(self) -> ast.SelectStatement:
        """Parse a subquery body (ORDER BY / LIMIT allowed, set ops not)."""
        query = self._select_with_set_ops()
        if isinstance(query, ast.SetOperation):
            raise ParseError("set operations are not supported in subqueries")
        return query

    def _order_by_clause(self) -> list[ast.OrderItem]:
        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._accept_punct(","):
                order_by.append(self._order_item())
        return order_by

    def _select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        select_items = [self._select_item()]
        while self._accept_punct(","):
            select_items.append(self._select_item())

        from_item: Optional[ast.FromItem] = None
        if self._accept_keyword("FROM"):
            from_item = self._from_clause()

        where = self._expression() if self._accept_keyword("WHERE") else None

        group_by: list[ast.Expression] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._expression())
            while self._accept_punct(","):
                group_by.append(self._expression())

        having = self._expression() if self._accept_keyword("HAVING") else None
        # ORDER BY / LIMIT are parsed by _select_with_set_ops so that a
        # trailing clause applies to the whole set-operation expression.
        return ast.SelectStatement(
            select_items=select_items,
            from_item=from_item,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _limit_clause(self) -> tuple[Optional[int], Optional[int]]:
        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            limit = self._integer_literal()
            if self._accept_keyword("OFFSET"):
                offset = self._integer_literal()
        elif self._accept_keyword("OFFSET"):
            offset = self._integer_literal()
            self._expect_keyword("ROWS", "ROW")
            if self._accept_keyword("FETCH"):
                limit = self._fetch_first()
        elif self._current.matches_keyword("FETCH"):
            self._advance()
            limit = self._fetch_first()
        return limit, offset

    def _fetch_first(self) -> int:
        self._expect_keyword("FIRST", "NEXT")
        count = self._integer_literal()
        self._expect_keyword("ROWS", "ROW")
        self._expect_keyword("ONLY")
        return count

    def _integer_literal(self) -> int:
        token = self._current
        if token.type is not TokenType.NUMBER:
            raise self._error("expected an integer")
        self._advance()
        try:
            return int(token.value)
        except ValueError:
            raise self._error("expected an integer") from None

    def _select_item(self) -> ast.SelectItem:
        token = self._current
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(expression=ast.Star())
        # T.* — identifier, dot, star
        if (
            token.type is TokenType.IDENTIFIER
            and self._peek().type is TokenType.OPERATOR
            and self._peek().value == "."
            and self._peek(2).type is TokenType.OPERATOR
            and self._peek(2).value == "*"
        ):
            table = self._advance().value
            self._advance()  # '.'
            self._advance()  # '*'
            return ast.SelectItem(expression=ast.Star(table=table))
        expression = self._expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expression=expression, alias=alias)

    def _order_item(self) -> ast.OrderItem:
        expression = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expression=expression, ascending=ascending)

    # -- FROM clause ---------------------------------------------------------

    def _from_clause(self) -> ast.FromItem:
        item = self._join_chain()
        while self._accept_punct(","):
            right = self._join_chain()
            item = ast.Join(left=item, right=right, join_type="CROSS")
        return item

    def _join_chain(self) -> ast.FromItem:
        item = self._table_source()
        while True:
            join_type = self._maybe_join_type()
            if join_type is None:
                return item
            right = self._table_source()
            condition: Optional[ast.Expression] = None
            if join_type != "CROSS":
                if self._accept_keyword("USING"):
                    condition = self._using_condition(item, right)
                else:
                    self._expect_keyword("ON")
                    condition = self._expression()
            item = ast.Join(
                left=item, right=right, join_type=join_type, condition=condition
            )

    def _using_condition(
        self, left: ast.FromItem, right: ast.FromItem
    ) -> ast.Expression:
        """Desugar ``USING (c, ...)`` into AND-ed ``left.c = right.c``.

        Refs are qualified with a side's binding when that side exposes
        exactly one; a multi-table side keeps the ref unqualified and it
        resolves against that side's scope during join compilation. Our
        dialect keeps both columns in the output (no coalescing).
        """
        self._expect_punct("(")
        names = [self._expect_identifier()]
        while self._accept_punct(","):
            names.append(self._expect_identifier())
        self._expect_punct(")")
        left_binding = self._sole_binding(left)
        right_binding = self._sole_binding(right)
        condition: Optional[ast.Expression] = None
        for name in names:
            equal = ast.BinaryOp(
                op="=",
                left=ast.ColumnRef(name=name, table=left_binding),
                right=ast.ColumnRef(name=name, table=right_binding),
            )
            condition = (
                equal
                if condition is None
                else ast.BinaryOp(op="AND", left=condition, right=equal)
            )
        assert condition is not None
        return condition

    @staticmethod
    def _sole_binding(item: ast.FromItem) -> Optional[str]:
        if isinstance(item, (ast.TableRef, ast.SubquerySource)):
            return item.binding
        return None

    def _maybe_join_type(self) -> Optional[str]:
        if self._accept_keyword("CROSS"):
            self._expect_keyword("JOIN")
            return "CROSS"
        if self._accept_keyword("INNER"):
            self._expect_keyword("JOIN")
            return "INNER"
        if self._current.matches_keyword("LEFT", "RIGHT", "FULL"):
            join_type = self._advance().value
            self._accept_keyword("OUTER")
            self._expect_keyword("JOIN")
            return join_type
        if self._accept_keyword("JOIN"):
            return "INNER"
        return None

    def _table_source(self) -> ast.FromItem:
        if self._accept_punct("("):
            # Either a derived table or a parenthesised join tree.
            if self._current.matches_keyword("SELECT"):
                query = self._select_with_set_ops()
                self._expect_punct(")")
                self._accept_keyword("AS")
                alias = self._expect_identifier()
                if isinstance(query, ast.SetOperation):
                    raise ParseError(
                        "set operations are not supported as derived tables"
                    )
                return ast.SubquerySource(query=query, alias=alias)
            inner = self._from_clause()
            self._expect_punct(")")
            return inner
        name = self._qualified_name()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier()
        elif self._current.type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias)

    # -- DDL ------------------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("VIEW"):
            return self._create_view()
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            # EXISTS is a keyword in our dialect
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._qualified_name()

        columns: list[ast.ColumnDef] = []
        as_select: Optional[ast.SelectStatement] = None
        if self._accept_punct("("):
            if self._current.matches_keyword("SELECT"):
                raise self._error("use CREATE TABLE name AS (SELECT ...)")
            columns.append(self._column_def())
            while self._accept_punct(","):
                if self._accept_keyword("PRIMARY"):
                    self._expect_keyword("KEY")
                    self._expect_punct("(")
                    key_columns = [self._expect_identifier()]
                    while self._accept_punct(","):
                        key_columns.append(self._expect_identifier())
                    self._expect_punct(")")
                    for column in columns:
                        if column.name in key_columns:
                            column.primary_key = True
                            column.nullable = False
                    continue
                columns.append(self._column_def())
            self._expect_punct(")")
        elif self._accept_keyword("AS"):
            self._expect_punct("(")
            query = self._select_with_set_ops()
            self._expect_punct(")")
            if isinstance(query, ast.SetOperation):
                raise ParseError("CREATE TABLE AS does not support set operations")
            as_select = query
            self._accept_keyword("WITH")  # WITH DATA — data is always included
            if self._current.type is TokenType.IDENTIFIER and self._current.value == "DATA":
                self._advance()
        else:
            raise self._error("expected column list or AS (SELECT ...)")

        in_accelerator = False
        distribute_on: Optional[list[str]] = None
        while True:
            if self._accept_keyword("IN"):
                self._expect_keyword("ACCELERATOR")
                in_accelerator = True
                # Optional accelerator name, e.g. IN ACCELERATOR IDAA1
                if self._current.type is TokenType.IDENTIFIER:
                    self._advance()
                continue
            if self._accept_keyword("DISTRIBUTE"):
                self._expect_keyword("BY")
                if self._accept_keyword("RANDOM"):
                    distribute_on = []
                else:
                    # HASH(col, ...) — HASH arrives as an identifier token
                    hash_word = self._expect_identifier()
                    if hash_word != "HASH":
                        raise ParseError(
                            "expected HASH(...) or RANDOM after DISTRIBUTE BY"
                        )
                    self._expect_punct("(")
                    distribute_on = [self._expect_identifier()]
                    while self._accept_punct(","):
                        distribute_on.append(self._expect_identifier())
                    self._expect_punct(")")
                continue
            break
        return ast.CreateTableStatement(
            name=name,
            columns=columns,
            in_accelerator=in_accelerator,
            distribute_on=distribute_on,
            if_not_exists=if_not_exists,
            as_select=as_select,
        )

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_identifier()
        type_name = self._expect_identifier()
        params: tuple[int, ...] = ()
        if self._accept_punct("("):
            numbers = [self._integer_literal()]
            while self._accept_punct(","):
                numbers.append(self._integer_literal())
            self._expect_punct(")")
            params = tuple(numbers)
        sql_type = type_from_name(type_name, params)
        nullable = True
        primary_key = False
        default: Optional[ast.Expression] = None
        while True:
            if self._accept_keyword("NOT"):
                self._expect_keyword("NULL")
                nullable = False
                continue
            if self._accept_keyword("NULL"):
                nullable = True
                continue
            if self._accept_keyword("PRIMARY"):
                self._expect_keyword("KEY")
                primary_key = True
                nullable = False
                continue
            if self._accept_keyword("DEFAULT"):
                default = self._primary()
                continue
            if self._accept_keyword("UNIQUE"):
                continue
            break
        return ast.ColumnDef(
            name=name,
            sql_type=sql_type,
            nullable=nullable,
            primary_key=primary_key,
            default=default,
        )

    def _create_view(self) -> ast.CreateViewStatement:
        name = self._qualified_name()
        self._expect_keyword("AS")
        parenthesised = self._accept_punct("(")
        query = self._select_with_set_ops()
        if parenthesised:
            self._expect_punct(")")
        if isinstance(query, ast.SetOperation):
            raise ParseError("set operations are not supported in views")
        return ast.CreateViewStatement(name=name, query=query)

    def _drop_table(self) -> ast.Statement:
        self._expect_keyword("DROP")
        is_view = self._accept_keyword("VIEW")
        if not is_view:
            self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._qualified_name()
        if is_view:
            return ast.DropViewStatement(name=name, if_exists=if_exists)
        return ast.DropTableStatement(name=name, if_exists=if_exists)

    def _alter(self) -> ast.AlterTableDistribute:
        """``ALTER TABLE t ACCELERATE DISTRIBUTE BY HASH(...)|RANGE(c)|RANDOM``."""
        self._expect_keyword("ALTER")
        self._expect_keyword("TABLE")
        name = self._qualified_name()
        # ACCELERATE is not reserved; it arrives as an identifier token.
        word = self._expect_identifier()
        if word != "ACCELERATE":
            raise ParseError(
                "expected ACCELERATE DISTRIBUTE BY after ALTER TABLE name"
            )
        self._expect_keyword("DISTRIBUTE")
        self._expect_keyword("BY")
        if self._accept_keyword("RANDOM"):
            return ast.AlterTableDistribute(
                table=name, method="RANDOM", columns=[]
            )
        method = self._expect_identifier()
        if method not in ("HASH", "RANGE"):
            raise ParseError(
                "expected HASH(...), RANGE(col), or RANDOM after "
                "DISTRIBUTE BY"
            )
        self._expect_punct("(")
        columns = [self._expect_identifier()]
        while self._accept_punct(","):
            columns.append(self._expect_identifier())
        self._expect_punct(")")
        if method == "RANGE" and len(columns) != 1:
            raise ParseError("RANGE distribution takes exactly one column")
        return ast.AlterTableDistribute(
            table=name, method=method, columns=columns
        )

    # -- DML ------------------------------------------------------------------

    def _insert(self) -> ast.InsertStatement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._qualified_name()
        columns: Optional[list[str]] = None
        if self._accept_punct("("):
            columns = [self._expect_identifier()]
            while self._accept_punct(","):
                columns.append(self._expect_identifier())
            self._expect_punct(")")
        if self._accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self._accept_punct(","):
                rows.append(self._value_row())
            return ast.InsertStatement(table=table, columns=columns, values=rows)
        select = self._select_with_set_ops()
        return ast.InsertStatement(table=table, columns=columns, select=select)

    def _value_row(self) -> list[ast.Expression]:
        self._expect_punct("(")
        row = [self._expression()]
        while self._accept_punct(","):
            row.append(self._expression())
        self._expect_punct(")")
        return row

    def _update(self) -> ast.UpdateStatement:
        self._expect_keyword("UPDATE")
        table = self._qualified_name()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.UpdateStatement(table=table, assignments=assignments, where=where)

    def _assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_identifier()
        if self._accept_operator("=") is None:
            raise self._error("expected '=' in assignment")
        return column, self._expression()

    def _delete(self) -> ast.DeleteStatement:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._qualified_name()
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.DeleteStatement(table=table, where=where)

    # -- access control ---------------------------------------------------------

    def _grant_or_revoke(self, is_grant: bool) -> ast.Statement:
        self._advance()  # GRANT or REVOKE
        privileges = [self._privilege_name()]
        while self._accept_punct(","):
            privileges.append(self._privilege_name())
        self._expect_keyword("ON")
        object_type = "TABLE"
        if self._accept_keyword("PROCEDURE"):
            object_type = "PROCEDURE"
        else:
            self._accept_keyword("TABLE")
        object_name = self._qualified_name()
        if is_grant:
            self._expect_keyword("TO")
        else:
            self._expect_keyword("FROM")
        grantee = self._expect_identifier()
        cls = ast.GrantStatement if is_grant else ast.RevokeStatement
        return cls(
            privileges=privileges,
            object_type=object_type,
            object_name=object_name,
            grantee=grantee,
        )

    def _privilege_name(self) -> str:
        token = self._current
        if token.matches_keyword(
            "SELECT", "INSERT", "UPDATE", "DELETE", "ALL", "EXECUTE"
        ):
            self._advance()
            if token.value == "ALL":
                # ALL [PRIVILEGES]
                if (
                    self._current.type is TokenType.IDENTIFIER
                    and self._current.value == "PRIVILEGES"
                ):
                    self._advance()
            return token.value
        if token.type is TokenType.IDENTIFIER and token.value in ("LOAD",):
            self._advance()
            return token.value
        raise self._error("expected a privilege name")

    # -- CALL ---------------------------------------------------------------------

    def _call(self) -> ast.CallStatement:
        self._expect_keyword("CALL")
        procedure = self._qualified_name()
        arguments: list[ast.Expression] = []
        if self._accept_punct("("):
            if not self._accept_punct(")"):
                arguments.append(self._expression())
                while self._accept_punct(","):
                    arguments.append(self._expression())
                self._expect_punct(")")
        return ast.CallStatement(procedure=procedure, arguments=arguments)

    def _set_register(self) -> ast.SetStatement:
        """``SET CURRENT QUERY ACCELERATION = NONE|ENABLE|ENABLE WITH
        FAILBACK|ALL`` (and any future special registers of that shape).
        Multi-word values like ``ENABLE WITH FAILBACK`` are joined with
        single spaces."""
        self._expect_keyword("SET")
        words = [self._expect_identifier()]
        while self._current.type is TokenType.IDENTIFIER:
            words.append(self._advance().value)
        if self._accept_operator("=") is None:
            raise self._error("expected '=' in SET statement")
        token = self._current
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            parts = [self._advance().value]
            while self._current.type in (
                TokenType.IDENTIFIER,
                TokenType.KEYWORD,
            ):
                parts.append(self._advance().value)
            value = " ".join(parts)
        elif token.type is TokenType.STRING:
            value = self._advance().value
        else:
            raise self._error("expected a register value")
        return ast.SetStatement(register=" ".join(words), value=value)

    # -- expressions (precedence climbing) -----------------------------------------

    def _expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            right = self._and_expr()
            left = ast.BinaryOp(op="OR", left=left, right=right)
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            right = self._not_expr()
            left = ast.BinaryOp(op="AND", left=left, right=right)
        return left

    def _not_expr(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp(op="NOT", operand=self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expression:
        left = self._additive()
        op = self._accept_operator(*_COMPARISON_OPS)
        if op is not None:
            if op == "!=":
                op = "<>"
            right = self._additive()
            return ast.BinaryOp(op=op, left=left, right=right)

        negated = False
        if self._current.matches_keyword("NOT") and self._peek().matches_keyword(
            "IN", "BETWEEN", "LIKE"
        ):
            self._advance()
            negated = True

        if self._accept_keyword("IS"):
            is_negated = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            return ast.IsNull(operand=left, negated=is_negated)
        if self._accept_keyword("IN"):
            return self._in_tail(left, negated)
        if self._accept_keyword("BETWEEN"):
            lower = self._additive()
            self._expect_keyword("AND")
            upper = self._additive()
            return ast.Between(operand=left, lower=lower, upper=upper, negated=negated)
        if self._accept_keyword("LIKE"):
            pattern = self._additive()
            return ast.Like(operand=left, pattern=pattern, negated=negated)
        return left

    def _in_tail(self, operand: ast.Expression, negated: bool) -> ast.Expression:
        self._expect_punct("(")
        if self._current.matches_keyword("SELECT"):
            query = self._subquery_select()
            self._expect_punct(")")
            return ast.SubqueryExpression(
                query=query, kind="in", operand=operand, negated=negated
            )
        items = [self._expression()]
        while self._accept_punct(","):
            items.append(self._expression())
        self._expect_punct(")")
        return ast.InList(operand=operand, items=items, negated=negated)

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            op = self._accept_operator("+", "-", "||")
            if op is None:
                return left
            right = self._multiplicative()
            left = ast.BinaryOp(op=op, left=left, right=right)

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            right = self._unary()
            left = ast.BinaryOp(op=op, left=left, right=right)

    def _unary(self) -> ast.Expression:
        if self._accept_operator("-"):
            return ast.UnaryOp(op="-", operand=self._unary())
        if self._accept_operator("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._current

        if token.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(value=_parse_number(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(value=token.value)
        if token.type is TokenType.PARAMETER:
            self._advance()
            parameter = ast.Parameter(index=self._param_count)
            self._param_count += 1
            return parameter
        if token.matches_keyword("TRUE"):
            self._advance()
            return ast.Literal(value=True)
        if token.matches_keyword("FALSE"):
            self._advance()
            return ast.Literal(value=False)
        if token.matches_keyword("NULL"):
            self._advance()
            return ast.Literal(value=None)
        if token.matches_keyword("CASE"):
            return self._case()
        if token.matches_keyword("CAST"):
            return self._cast()
        if token.matches_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            query = self._subquery_select()
            self._expect_punct(")")
            return ast.SubqueryExpression(query=query, kind="exists")
        if token.matches_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            return self._function_call(self._advance().value)
        if token.type is TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            if self._current.matches_keyword("SELECT"):
                query = self._subquery_select()
                self._expect_punct(")")
                return ast.SubqueryExpression(query=query, kind="scalar")
            inner = self._expression()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._identifier_expression()
        raise self._error("expected an expression")

    def _identifier_expression(self) -> ast.Expression:
        name = self._advance().value
        # Function call?
        if self._current.type is TokenType.PUNCTUATION and self._current.value == "(":
            if name.upper() == "PREDICT":
                return self._predict_expression()
            return self._function_call(name)
        # Qualified column T.C ?
        if (
            self._current.type is TokenType.OPERATOR
            and self._current.value == "."
        ):
            self._advance()
            column = self._expect_identifier()
            return ast.ColumnRef(name=column, table=name)
        return ast.ColumnRef(name=name)

    def _function_call(self, name: str) -> ast.Expression:
        self._expect_punct("(")
        distinct = False
        args: list[ast.Expression] = []
        if self._current.type is TokenType.OPERATOR and self._current.value == "*":
            self._advance()
            args.append(ast.Star())
        elif not (
            self._current.type is TokenType.PUNCTUATION
            and self._current.value == ")"
        ):
            if self._accept_keyword("DISTINCT"):
                distinct = True
            args.append(self._expression())
            while self._accept_punct(","):
                args.append(self._expression())
        self._expect_punct(")")
        return ast.FunctionCall(name=name.upper(), args=args, distinct=distinct)

    def _predict_expression(self) -> ast.Expression:
        # PREDICT(model, feature_expr, ...) — the first argument is a
        # model name (identifier or string literal), not an expression.
        self._expect_punct("(")
        if self._current.type is TokenType.STRING:
            model = self._advance().value
        else:
            model = self._expect_identifier()
        args: list[ast.Expression] = []
        while self._accept_punct(","):
            args.append(self._expression())
        self._expect_punct(")")
        if not args:
            raise self._error("PREDICT requires at least one feature expression")
        return ast.Predict(model=model.upper(), args=args)

    def _case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        branches: list[ast.CaseBranch] = []
        simple_operand: Optional[ast.Expression] = None
        if not self._current.matches_keyword("WHEN"):
            simple_operand = self._expression()
        while self._accept_keyword("WHEN"):
            condition = self._expression()
            if simple_operand is not None:
                condition = ast.BinaryOp(op="=", left=simple_operand, right=condition)
            self._expect_keyword("THEN")
            result = self._expression()
            branches.append(ast.CaseBranch(condition=condition, result=result))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        default: Optional[ast.Expression] = None
        if self._accept_keyword("ELSE"):
            default = self._expression()
        self._expect_keyword("END")
        return ast.CaseExpression(branches=branches, default=default)

    def _cast(self) -> ast.Expression:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self._expression()
        self._expect_keyword("AS")
        type_name = self._expect_identifier()
        params: tuple[int, ...] = ()
        if self._accept_punct("("):
            numbers = [self._integer_literal()]
            while self._accept_punct(","):
                numbers.append(self._integer_literal())
            self._expect_punct(")")
            params = tuple(numbers)
        self._expect_punct(")")
        return ast.Cast(operand=operand, target_type=type_from_name(type_name, params))


def _parse_number(text: str):
    # Decimal literals become floats: the evaluator computes in binary
    # floating point (like the accelerator's vectorised arithmetic), and
    # DECIMAL columns re-quantise on insert anyway.
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)

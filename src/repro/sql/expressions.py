"""Expression compilation for both engines.

The same AST is compiled two ways:

* :func:`compile_scalar` produces a Python closure evaluated once per row —
  this is the DB2 engine's interpreted, row-at-a-time model;
* :func:`compile_vector` produces a closure evaluated once per column batch
  (numpy arrays + null masks) — this is the accelerator's vectorised model.

Column references are resolved against a :class:`Scope` at compile time, so
per-row evaluation does no name lookups. NULL handling follows SQL
three-valued logic (Kleene AND/OR, NULL-propagating arithmetic and
comparisons).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ParseError, SqlError
from repro.sql import ast

__all__ = [
    "Scope",
    "VColumn",
    "compile_scalar",
    "compile_vector",
    "SCALAR_FUNCTIONS",
    "expression_label",
]


class Scope:
    """Compile-time name resolution table.

    A scope is an ordered list of ``(binding, column_name)`` pairs, where
    ``binding`` is the table alias (or table name) the column is visible
    under, or ``None`` for synthetic columns (aggregate outputs).
    """

    def __init__(self, entries: Sequence[tuple[Optional[str], str]]) -> None:
        self.entries = list(entries)
        self._by_qualified: dict[tuple[str, str], int] = {}
        self._by_name: dict[str, list[int]] = {}
        for index, (binding, name) in enumerate(self.entries):
            if binding is not None:
                self._by_qualified.setdefault((binding, name), index)
            self._by_name.setdefault(name, []).append(index)

    def __len__(self) -> int:
        return len(self.entries)

    def resolve(self, name: str, table: Optional[str] = None) -> int:
        """Return the value index for a column reference.

        Raises :class:`ParseError` for unknown or ambiguous references.
        """
        if table is not None:
            index = self._by_qualified.get((table, name))
            if index is None:
                raise ParseError(f"unknown column {table}.{name}")
            return index
        candidates = self._by_name.get(name)
        if not candidates:
            raise ParseError(f"unknown column {name}")
        if len(candidates) > 1:
            raise ParseError(f"ambiguous column reference {name}")
        return candidates[0]

    def star_indexes(self, table: Optional[str] = None) -> list[int]:
        """Indexes expanded by ``*`` or ``table.*``."""
        if table is None:
            return list(range(len(self.entries)))
        indexes = [
            i for i, (binding, _) in enumerate(self.entries) if binding == table
        ]
        if not indexes:
            raise ParseError(f"unknown table alias {table}")
        return indexes

    def column_names(self) -> list[str]:
        return [name for _, name in self.entries]


# ---------------------------------------------------------------------------
# Scalar function registry (row-at-a-time semantics; NULL-propagating unless
# noted). Vector evaluation reuses these through an element-wise fallback and
# overrides hot numeric functions with true numpy kernels.
# ---------------------------------------------------------------------------


def _substr(value: str, start: int, length: Optional[int] = None) -> str:
    begin = max(0, int(start) - 1)  # SQL SUBSTR is 1-based
    if length is None:
        return value[begin:]
    return value[begin : begin + int(length)]


def _round(value, digits=0):
    return round(float(value), int(digits))


SCALAR_FUNCTIONS: dict[str, Callable] = {
    "ABS": abs,
    "SIGN": lambda x: (x > 0) - (x < 0),
    "ROUND": _round,
    "FLOOR": lambda x: math.floor(float(x)),
    "CEIL": lambda x: math.ceil(float(x)),
    "CEILING": lambda x: math.ceil(float(x)),
    "SQRT": lambda x: math.sqrt(float(x)),
    "LN": lambda x: math.log(float(x)),
    "LOG10": lambda x: math.log10(float(x)),
    "EXP": lambda x: math.exp(float(x)),
    "POWER": lambda x, y: float(x) ** float(y),
    "MOD": lambda x, y: x % y,
    "UPPER": lambda s: s.upper(),
    "LOWER": lambda s: s.lower(),
    "LENGTH": lambda s: len(s),
    "SUBSTR": _substr,
    "SUBSTRING": _substr,
    "TRIM": lambda s: s.strip(),
    "LTRIM": lambda s: s.lstrip(),
    "RTRIM": lambda s: s.rstrip(),
    "REPLACE": lambda s, a, b: s.replace(a, b),
    "CONCAT": lambda a, b: str(a) + str(b),
    "YEAR": lambda d: d.year,
    "MONTH": lambda d: d.month,
    "DAY": lambda d: d.day,
}

#: Numpy kernels for hot numeric functions (vector path fast lane).
_VECTOR_KERNELS: dict[str, Callable] = {
    "ABS": np.abs,
    "SQRT": np.sqrt,
    "LN": np.log,
    "LOG10": np.log10,
    "EXP": np.exp,
    "FLOOR": np.floor,
    "CEIL": np.ceil,
    "CEILING": np.ceil,
}


def _like_to_regex(pattern: str) -> re.Pattern:
    parts: list[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.DOTALL)


# ---------------------------------------------------------------------------
# Scalar compilation
# ---------------------------------------------------------------------------

#: Engine-provided subquery executor: ``resolver(query, outer_row)`` with
#: memoisation inside the engine (see repro.sql.correlation). Resolvers
#: may expose ``is_correlated(query)`` so the vector path can keep its
#: evaluate-once fast path for uncorrelated subqueries.
SubqueryResolver = Callable[[ast.SelectStatement, Sequence], list[tuple]]


def compile_scalar(
    expr: ast.Expression,
    scope: Scope,
    params: Sequence[object] = (),
    subquery_resolver: Optional[SubqueryResolver] = None,
) -> Callable[[Sequence[object]], object]:
    """Compile an expression into ``row -> value``.

    ``row`` is indexed by the positions :class:`Scope` assigned.
    Subqueries are executed through ``subquery_resolver`` (which receives
    the current row so correlated subqueries can bind their outer
    references; see :mod:`repro.sql.correlation`).
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ast.Parameter):
        if expr.index >= len(params):
            raise SqlError(f"missing value for parameter {expr.index + 1}")
        bound = params[expr.index]
        return lambda row: bound

    if isinstance(expr, ast.ColumnRef):
        index = scope.resolve(expr.name, expr.table)
        return lambda row: row[index]

    if isinstance(expr, ast.Star):
        raise ParseError("'*' is only valid in a select list or COUNT(*)")

    if isinstance(expr, ast.UnaryOp):
        operand = compile_scalar(expr.operand, scope, params, subquery_resolver)
        if expr.op == "-":
            return lambda row: None if (v := operand(row)) is None else -v
        if expr.op == "NOT":
            def _not(row):
                value = operand(row)
                return None if value is None else not value

            return _not
        raise ParseError(f"unknown unary operator {expr.op}")

    if isinstance(expr, ast.BinaryOp):
        return _compile_scalar_binary(expr, scope, params, subquery_resolver)

    if isinstance(expr, ast.FunctionCall):
        return _compile_scalar_function(expr, scope, params, subquery_resolver)

    if isinstance(expr, ast.CaseExpression):
        branches = [
            (
                compile_scalar(b.condition, scope, params, subquery_resolver),
                compile_scalar(b.result, scope, params, subquery_resolver),
            )
            for b in expr.branches
        ]
        default = (
            compile_scalar(expr.default, scope, params, subquery_resolver)
            if expr.default is not None
            else None
        )

        def _case(row):
            for condition, result in branches:
                if condition(row):
                    return result(row)
            return default(row) if default is not None else None

        return _case

    if isinstance(expr, ast.InList):
        operand = compile_scalar(expr.operand, scope, params, subquery_resolver)
        items = [
            compile_scalar(item, scope, params, subquery_resolver)
            for item in expr.items
        ]
        negated = expr.negated

        def _in(row):
            value = operand(row)
            if value is None:
                return None
            found = any(item(row) == value for item in items)
            return (not found) if negated else found

        return _in

    if isinstance(expr, ast.Between):
        operand = compile_scalar(expr.operand, scope, params, subquery_resolver)
        lower = compile_scalar(expr.lower, scope, params, subquery_resolver)
        upper = compile_scalar(expr.upper, scope, params, subquery_resolver)
        negated = expr.negated

        def _between(row):
            value = operand(row)
            if value is None:
                return None
            result = lower(row) <= value <= upper(row)
            return (not result) if negated else result

        return _between

    if isinstance(expr, ast.IsNull):
        operand = compile_scalar(expr.operand, scope, params, subquery_resolver)
        negated = expr.negated
        return lambda row: (operand(row) is not None) if negated else (
            operand(row) is None
        )

    if isinstance(expr, ast.Like):
        operand = compile_scalar(expr.operand, scope, params, subquery_resolver)
        pattern_fn = compile_scalar(expr.pattern, scope, params, subquery_resolver)
        negated = expr.negated
        cache: dict[str, re.Pattern] = {}

        def _like(row):
            value = operand(row)
            if value is None:
                return None
            pattern = pattern_fn(row)
            if pattern is None:
                return None
            regex = cache.get(pattern)
            if regex is None:
                regex = _like_to_regex(pattern)
                cache[pattern] = regex
            matched = regex.match(value) is not None
            return (not matched) if negated else matched

        return _like

    if isinstance(expr, ast.Cast):
        operand = compile_scalar(expr.operand, scope, params, subquery_resolver)
        target = expr.target_type
        return lambda row: target.coerce(operand(row))

    if isinstance(expr, ast.SubqueryExpression):
        return _compile_scalar_subquery(expr, scope, params, subquery_resolver)

    if isinstance(expr, ast.Predict):
        arg_fns = [
            compile_scalar(arg, scope, params, subquery_resolver)
            for arg in expr.args
        ]
        get_scorer = _predict_scorer(expr)

        def _predict_row(row):
            values = [fn(row) for fn in arg_fns]
            if any(v is None for v in values):
                return None
            try:
                matrix = np.array([[float(v) for v in values]], dtype=np.float64)
            except (TypeError, ValueError):
                raise SqlError(
                    f"PREDICT({expr.model}, ...) features must be numeric"
                ) from None
            value = get_scorer().score(matrix)[0]
            return value.item() if isinstance(value, np.generic) else value

        return _predict_row

    raise ParseError(f"unsupported expression: {type(expr).__name__}")


def _predict_scorer(expr: "ast.Predict"):
    """Per-kernel scorer cache for a bound PREDICT node.

    The compiled kernel outlives retrains (KernelCache keeps it for the
    plan's lifetime), so the scorer is rebuilt whenever the stored
    model's generation moves — that is the retrain-invalidation path.
    The analytics import is deferred: ``repro.analytics`` imports the SQL
    package, so a top-level import here would be circular.
    """
    cache: dict[str, object] = {}

    def get_scorer():
        store = expr.store
        if store is None:
            raise SqlError(
                f"PREDICT({expr.model}, ...) is not bound to a model store"
            )
        model = store.get(expr.model)
        if cache.get("generation") != model.generation:
            from repro.analytics import scoring

            cache["scorer"] = scoring.build_scorer(model)
            cache["generation"] = model.generation
        return cache["scorer"]

    return get_scorer


def _null_safe(fn):
    def wrapper(a, b):
        if a is None or b is None:
            return None
        return fn(a, b)

    return wrapper


def _scalar_divide(a, b):
    if b == 0:
        raise SqlError("division by zero")
    if isinstance(a, int) and isinstance(b, int):
        # DB2 integer division truncates toward zero.
        quotient = abs(a) // abs(b)
        return quotient if (a >= 0) == (b >= 0) else -quotient
    return a / b


def _coerce_comparable(a, b):
    """Make a value pair comparable; string literals against temporal
    values are parsed the way DB2 coerces them."""
    import datetime

    if isinstance(a, datetime.datetime) and isinstance(b, str):
        from repro.sql.types import TIMESTAMP

        return a, TIMESTAMP.coerce(b)
    if isinstance(b, datetime.datetime) and isinstance(a, str):
        from repro.sql.types import TIMESTAMP

        return TIMESTAMP.coerce(a), b
    if isinstance(a, datetime.date) and isinstance(b, str):
        from repro.sql.types import DATE

        return a, DATE.coerce(b)
    if isinstance(b, datetime.date) and isinstance(a, str):
        from repro.sql.types import DATE

        return DATE.coerce(a), b
    return a, b


def _comparison(fn):
    def compare(a, b):
        a, b = _coerce_comparable(a, b)
        return fn(a, b)

    return compare


compare_scalar_values = {
    "=": _comparison(lambda a, b: a == b),
    "<>": _comparison(lambda a, b: a != b),
    "<": _comparison(lambda a, b: a < b),
    "<=": _comparison(lambda a, b: a <= b),
    ">": _comparison(lambda a, b: a > b),
    ">=": _comparison(lambda a, b: a >= b),
}

_SCALAR_BINARY_OPS = {
    "+": _null_safe(lambda a, b: a + b),
    "-": _null_safe(lambda a, b: a - b),
    "*": _null_safe(lambda a, b: a * b),
    "/": _null_safe(_scalar_divide),
    "%": _null_safe(lambda a, b: a % b),
    "=": _null_safe(compare_scalar_values["="]),
    "<>": _null_safe(compare_scalar_values["<>"]),
    "<": _null_safe(compare_scalar_values["<"]),
    "<=": _null_safe(compare_scalar_values["<="]),
    ">": _null_safe(compare_scalar_values[">"]),
    ">=": _null_safe(compare_scalar_values[">="]),
    "||": _null_safe(lambda a, b: str(a) + str(b)),
}


def _compile_scalar_binary(expr, scope, params, subquery_resolver):
    left = compile_scalar(expr.left, scope, params, subquery_resolver)
    right = compile_scalar(expr.right, scope, params, subquery_resolver)
    if expr.op == "AND":
        def _and(row):
            a = left(row)
            if a is False:
                return False
            b = right(row)
            if b is False:
                return False
            if a is None or b is None:
                return None
            return True

        return _and
    if expr.op == "OR":
        def _or(row):
            a = left(row)
            if a is True:
                return True
            b = right(row)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False

        return _or
    op = _SCALAR_BINARY_OPS.get(expr.op)
    if op is None:
        raise ParseError(f"unknown operator {expr.op}")
    return lambda row: op(left(row), right(row))


def _compile_scalar_function(expr, scope, params, subquery_resolver):
    name = expr.name
    if name == "COALESCE":
        args = [
            compile_scalar(a, scope, params, subquery_resolver) for a in expr.args
        ]

        def _coalesce(row):
            for arg in args:
                value = arg(row)
                if value is not None:
                    return value
            return None

        return _coalesce
    if name == "NULLIF":
        if len(expr.args) != 2:
            raise ParseError("NULLIF takes exactly two arguments")
        first = compile_scalar(expr.args[0], scope, params, subquery_resolver)
        second = compile_scalar(expr.args[1], scope, params, subquery_resolver)

        def _nullif(row):
            a = first(row)
            return None if a == second(row) else a

        return _nullif
    if name in ast.AGGREGATE_FUNCTIONS:
        raise ParseError(
            f"aggregate {name} is not allowed in this context"
        )
    fn = SCALAR_FUNCTIONS.get(name)
    if fn is None:
        raise ParseError(f"unknown function {name}")
    args = [compile_scalar(a, scope, params, subquery_resolver) for a in expr.args]

    def _call(row):
        values = [arg(row) for arg in args]
        if any(v is None for v in values):
            return None
        return fn(*values)

    return _call


def _compile_scalar_subquery(expr, scope, params, subquery_resolver):
    if subquery_resolver is None:
        raise ParseError("subqueries are not supported in this context")
    # Memoisation lives in the resolver (per correlation key); here we
    # only cache derived membership sets per result-list identity.
    set_cache: dict[int, tuple[list, set]] = {}

    if expr.kind == "scalar":
        def _scalar(row):
            rows = subquery_resolver(expr.query, row)
            if not rows:
                return None
            if len(rows) > 1:
                raise SqlError("scalar subquery returned more than one row")
            return rows[0][0]

        return _scalar
    if expr.kind == "exists":
        negated = expr.negated

        def _exists(row):
            rows = subquery_resolver(expr.query, row)
            return (not rows) if negated else bool(rows)

        return _exists
    if expr.kind == "in":
        operand = compile_scalar(expr.operand, scope, params, subquery_resolver)
        negated = expr.negated

        def _in(row):
            value = operand(row)
            if value is None:
                return None
            rows = subquery_resolver(expr.query, row)
            cached = set_cache.get(id(rows))
            if cached is None or cached[0] is not rows:
                cached = (rows, {r[0] for r in rows})
                set_cache[id(rows)] = cached
            found = value in cached[1]
            return (not found) if negated else found

        return _in
    raise ParseError(f"unsupported subquery kind {expr.kind}")


# ---------------------------------------------------------------------------
# Vector compilation
# ---------------------------------------------------------------------------


@dataclass
class VColumn:
    """A vector of values plus an optional NULL mask (True = NULL)."""

    values: np.ndarray
    mask: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.values)

    @property
    def is_numeric(self) -> bool:
        return self.values.dtype.kind in "ifb"

    def null_mask(self) -> np.ndarray:
        if self.mask is None:
            return np.zeros(len(self.values), dtype=bool)
        return self.mask

    def to_objects(self) -> list[object]:
        """Materialise as a Python list with ``None`` for NULLs."""
        values = self.values.tolist()
        if self.mask is None:
            return values
        return [None if m else v for v, m in zip(values, self.mask)]

    @staticmethod
    def from_objects(items: Sequence[object]) -> "VColumn":
        """Build a typed column from Python values (loader/test helper)."""
        mask = np.array([item is None for item in items], dtype=bool)
        has_nulls = bool(mask.any())
        non_null = [item for item in items if item is not None]
        if not non_null:
            # All-NULL: keep a numeric carrier so arithmetic kernels work.
            return VColumn(
                values=np.zeros(len(items), dtype=np.float64),
                mask=mask if has_nulls else None,
            )
        if non_null and all(isinstance(v, bool) for v in non_null):
            values = np.array(
                [bool(v) if v is not None else False for v in items], dtype=bool
            )
        elif non_null and all(
            isinstance(v, int) and not isinstance(v, bool) for v in non_null
        ):
            values = np.array(
                [int(v) if v is not None else 0 for v in items], dtype=np.int64
            )
        elif non_null and all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in non_null
        ):
            values = np.array(
                [float(v) if v is not None else np.nan for v in items],
                dtype=np.float64,
            )
        else:
            values = np.array(items, dtype=object)
        return VColumn(values=values, mask=mask if has_nulls else None)


def _broadcast_literal(value, length: int) -> VColumn:
    if value is None:
        return VColumn(
            values=np.zeros(length, dtype=np.float64),
            mask=np.ones(length, dtype=bool),
        )
    if isinstance(value, bool):
        return VColumn(values=np.full(length, value, dtype=bool))
    if isinstance(value, int):
        return VColumn(values=np.full(length, value, dtype=np.int64))
    if isinstance(value, float):
        return VColumn(values=np.full(length, value, dtype=np.float64))
    out = np.empty(length, dtype=object)
    out[:] = value
    return VColumn(values=out)


def _combine_masks(a: Optional[np.ndarray], b: Optional[np.ndarray]):
    if a is None:
        return b
    if b is None:
        return a
    return a | b


def compile_vector(
    expr: ast.Expression,
    scope: Scope,
    params: Sequence[object] = (),
    subquery_resolver: Optional[SubqueryResolver] = None,
) -> Callable[[Sequence[VColumn], int], VColumn]:
    """Compile an expression into ``(columns, length) -> VColumn``.

    ``columns`` is indexed by the positions assigned by ``scope``; every
    returned column has exactly ``length`` entries.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda cols, n: _broadcast_literal(value, n)

    if isinstance(expr, ast.Parameter):
        if expr.index >= len(params):
            raise SqlError(f"missing value for parameter {expr.index + 1}")
        bound = params[expr.index]
        return lambda cols, n: _broadcast_literal(bound, n)

    if isinstance(expr, ast.ColumnRef):
        index = scope.resolve(expr.name, expr.table)
        return lambda cols, n: cols[index]

    if isinstance(expr, ast.UnaryOp):
        operand = compile_vector(expr.operand, scope, params, subquery_resolver)
        if expr.op == "-":
            def _neg(cols, n):
                col = operand(cols, n)
                return VColumn(values=-col.values, mask=col.mask)

            return _neg
        if expr.op == "NOT":
            def _not(cols, n):
                col = operand(cols, n)
                return VColumn(
                    values=~col.values.astype(bool), mask=col.mask
                )

            return _not
        raise ParseError(f"unknown unary operator {expr.op}")

    if isinstance(expr, ast.BinaryOp):
        return _compile_vector_binary(expr, scope, params, subquery_resolver)

    if isinstance(expr, ast.FunctionCall):
        return _compile_vector_function(expr, scope, params, subquery_resolver)

    if isinstance(expr, ast.CaseExpression):
        branches = [
            (
                compile_vector(b.condition, scope, params, subquery_resolver),
                compile_vector(b.result, scope, params, subquery_resolver),
            )
            for b in expr.branches
        ]
        default = (
            compile_vector(expr.default, scope, params, subquery_resolver)
            if expr.default is not None
            else None
        )

        def _case(cols, n):
            chosen = np.zeros(n, dtype=bool)
            result: Optional[VColumn] = None
            out_values: Optional[np.ndarray] = None
            out_mask = np.ones(n, dtype=bool)
            for condition, branch in branches:
                cond = condition(cols, n)
                take = cond.values.astype(bool) & ~cond.null_mask() & ~chosen
                if not take.any():
                    continue
                result = branch(cols, n)
                if out_values is None:
                    out_values = _empty_like(result, n)
                out_values = _assign(out_values, take, result)
                out_mask[take] = result.null_mask()[take]
                chosen |= take
            if default is not None:
                remaining = ~chosen
                if remaining.any():
                    result = default(cols, n)
                    if out_values is None:
                        out_values = _empty_like(result, n)
                    out_values = _assign(out_values, remaining, result)
                    out_mask[remaining] = result.null_mask()[remaining]
            if out_values is None:
                out_values = np.zeros(n, dtype=np.float64)
            return VColumn(
                values=out_values,
                mask=out_mask if out_mask.any() else None,
            )

        return _case

    if isinstance(expr, ast.InList):
        operand = compile_vector(expr.operand, scope, params, subquery_resolver)
        item_fns = [
            compile_scalar(item, Scope([]), params, subquery_resolver)
            for item in expr.items
        ]
        negated = expr.negated

        def _in(cols, n):
            col = operand(cols, n)
            values = {fn(()) for fn in item_fns}
            values.discard(None)
            result = np.isin(col.values, list(values))
            if negated:
                result = ~result
            return VColumn(values=result, mask=col.mask)

        return _in

    if isinstance(expr, ast.Between):
        rewritten = ast.BinaryOp(
            op="AND",
            left=ast.BinaryOp(op=">=", left=expr.operand, right=expr.lower),
            right=ast.BinaryOp(op="<=", left=expr.operand, right=expr.upper),
        )
        inner = compile_vector(rewritten, scope, params, subquery_resolver)
        if not expr.negated:
            return inner

        def _not_between(cols, n):
            col = inner(cols, n)
            return VColumn(values=~col.values.astype(bool), mask=col.mask)

        return _not_between

    if isinstance(expr, ast.IsNull):
        operand = compile_vector(expr.operand, scope, params, subquery_resolver)
        negated = expr.negated

        def _is_null(cols, n):
            col = operand(cols, n)
            mask = col.null_mask()
            return VColumn(values=(~mask if negated else mask).copy())

        return _is_null

    if isinstance(expr, ast.Like):
        operand = compile_vector(expr.operand, scope, params, subquery_resolver)
        pattern_fn = compile_scalar(
            expr.pattern, Scope([]), params, subquery_resolver
        )
        negated = expr.negated

        def _like(cols, n):
            col = operand(cols, n)
            pattern = pattern_fn(())
            regex = _like_to_regex(pattern)
            matched = np.array(
                [
                    bool(regex.match(v)) if isinstance(v, str) else False
                    for v in col.values
                ],
                dtype=bool,
            )
            if negated:
                matched = ~matched
            return VColumn(values=matched, mask=col.mask)

        return _like

    if isinstance(expr, ast.Cast):
        operand = compile_vector(expr.operand, scope, params, subquery_resolver)
        target = expr.target_type

        def _cast(cols, n):
            col = operand(cols, n)
            items = col.to_objects()
            return VColumn.from_objects([target.coerce(v) for v in items])

        return _cast

    if isinstance(expr, ast.SubqueryExpression):
        if subquery_resolver is None:
            raise ParseError("subqueries are not supported in this context")
        scalar = _compile_scalar_subquery(expr, scope, params, subquery_resolver)
        is_correlated = getattr(
            subquery_resolver, "is_correlated", lambda query: False
        )

        def _correlated(cols, n):
            # Per-row fallback: materialise the batch and evaluate the
            # scalar-compiled subquery expression row by row (memoised by
            # the resolver on the correlation key).
            object_columns = [col.to_objects() for col in cols]
            out = [
                scalar(tuple(values[i] for values in object_columns))
                for i in range(n)
            ]
            return VColumn.from_objects(out)

        if expr.kind == "in":
            operand = compile_vector(
                expr.operand, scope, params, subquery_resolver
            )
            negated = expr.negated

            def _in_subquery(cols, n):
                if is_correlated(expr.query):
                    return _correlated(cols, n)
                rows = subquery_resolver(expr.query, ())
                values = {r[0] for r in rows if r[0] is not None}
                col = operand(cols, n)
                result = np.isin(col.values, list(values))
                if negated:
                    result = ~result
                return VColumn(values=result, mask=col.mask)

            return _in_subquery

        def _scalar_subquery(cols, n):
            if is_correlated(expr.query):
                return _correlated(cols, n)
            return _broadcast_literal(scalar(()), n)

        return _scalar_subquery

    if isinstance(expr, ast.Predict):
        arg_fns = [
            compile_vector(arg, scope, params, subquery_resolver)
            for arg in expr.args
        ]
        get_scorer = _predict_scorer(expr)

        def _predict_batch(cols, n):
            matrix = np.empty((n, len(arg_fns)))
            mask: Optional[np.ndarray] = None
            for j, fn in enumerate(arg_fns):
                col = fn(cols, n)
                if not col.is_numeric:
                    raise SqlError(
                        f"PREDICT({expr.model}, ...) features must be numeric"
                    )
                matrix[:, j] = col.values.astype(np.float64)
                mask = _combine_masks(mask, col.mask)
            values = get_scorer().score(matrix)
            return VColumn(
                values=values, mask=mask.copy() if mask is not None else None
            )

        return _predict_batch

    raise ParseError(f"unsupported expression: {type(expr).__name__}")


def _empty_like(column: VColumn, length: int) -> np.ndarray:
    return np.zeros(length, dtype=column.values.dtype)


def _assign(target: np.ndarray, mask: np.ndarray, source: VColumn) -> np.ndarray:
    if target.dtype != source.values.dtype:
        # Promote (e.g. int branch + float branch) by re-materialising.
        promoted = np.result_type(target.dtype, source.values.dtype)
        target = target.astype(promoted if promoted.kind in "ifb" else object)
    target[mask] = source.values[mask]
    return target


_VECTOR_COMPARISONS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

_VECTOR_ARITHMETIC = {"+": np.add, "-": np.subtract, "*": np.multiply}


def _compile_vector_binary(expr, scope, params, subquery_resolver):
    left = compile_vector(expr.left, scope, params, subquery_resolver)
    right = compile_vector(expr.right, scope, params, subquery_resolver)
    op = expr.op

    if op in ("AND", "OR"):
        def _logical(cols, n):
            a = left(cols, n)
            b = right(cols, n)
            av = a.values.astype(bool)
            bv = b.values.astype(bool)
            am = a.null_mask()
            bm = b.null_mask()
            if op == "AND":
                definite_false = (~am & ~av) | (~bm & ~bv)
                value = (~am & av) & (~bm & bv)
            else:
                definite_false = (~am & ~av) & (~bm & ~bv)
                value = (~am & av) | (~bm & bv)
            mask = ~(value | definite_false)
            return VColumn(values=value, mask=mask if mask.any() else None)

        return _logical

    if op in _VECTOR_COMPARISONS:
        kernel = _VECTOR_COMPARISONS[op]
        scalar_compare = compare_scalar_values[op]

        def _compare(cols, n):
            a = left(cols, n)
            b = right(cols, n)
            av, bv = _align_for_compare(a.values, b.values)
            try:
                values = kernel(av, bv)
            except TypeError:
                # Mixed object types (e.g. DATE column vs string literal):
                # fall back to element-wise comparison with coercion.
                mask_a = a.null_mask()
                mask_b = b.null_mask()
                values = np.array(
                    [
                        not (mask_a[i] or mask_b[i])
                        and scalar_compare(av[i], bv[i])
                        for i in range(n)
                    ],
                    dtype=bool,
                )
            mask = _combine_masks(a.mask, b.mask)
            if mask is not None:
                values = values & ~mask
            return VColumn(values=values.astype(bool), mask=mask)

        return _compare

    if op in _VECTOR_ARITHMETIC:
        kernel = _VECTOR_ARITHMETIC[op]

        def _arith(cols, n):
            a = left(cols, n)
            b = right(cols, n)
            values = kernel(a.values, b.values)
            return VColumn(values=values, mask=_combine_masks(a.mask, b.mask))

        return _arith

    if op == "/":
        def _divide(cols, n):
            a = left(cols, n)
            b = right(cols, n)
            mask = _combine_masks(a.mask, b.mask)
            live = ~mask if mask is not None else np.ones(n, dtype=bool)
            divisor = b.values
            if divisor.dtype.kind in "if" and np.any((divisor == 0) & live):
                raise SqlError("division by zero")
            if a.values.dtype.kind == "i" and divisor.dtype.kind == "i":
                safe = np.where(divisor == 0, 1, divisor)
                quotient = np.abs(a.values) // np.abs(safe)
                sign = np.where((a.values >= 0) == (safe > 0), 1, -1)
                values = quotient * sign
            else:
                safe = np.where(divisor == 0, 1, divisor)
                values = a.values / safe
            return VColumn(values=values, mask=mask)

        return _divide

    if op == "%":
        def _mod(cols, n):
            a = left(cols, n)
            b = right(cols, n)
            mask = _combine_masks(a.mask, b.mask)
            safe = np.where(b.values == 0, 1, b.values)
            values = np.mod(a.values, safe)
            return VColumn(values=values, mask=mask)

        return _mod

    if op == "||":
        def _concat(cols, n):
            a = left(cols, n)
            b = right(cols, n)
            values = np.array(
                [str(x) + str(y) for x, y in zip(a.values, b.values)],
                dtype=object,
            )
            return VColumn(values=values, mask=_combine_masks(a.mask, b.mask))

        return _concat

    raise ParseError(f"unknown operator {op}")


def _align_for_compare(a: np.ndarray, b: np.ndarray):
    """Make dtypes comparable (object vs str arrays, int vs float)."""
    if a.dtype.kind in "ifb" and b.dtype.kind in "ifb":
        return a, b
    if a.dtype == object or b.dtype == object:
        return a.astype(object), b.astype(object)
    return a, b


def _compile_vector_function(expr, scope, params, subquery_resolver):
    name = expr.name
    if name == "COALESCE":
        args = [
            compile_vector(a, scope, params, subquery_resolver) for a in expr.args
        ]

        def _coalesce(cols, n):
            result = args[0](cols, n)
            values = result.values.copy()
            mask = result.null_mask().copy()
            for arg in args[1:]:
                if not mask.any():
                    break
                nxt = arg(cols, n)
                values = _assign(values, mask, nxt)
                mask = mask & nxt.null_mask()
            return VColumn(values=values, mask=mask if mask.any() else None)

        return _coalesce
    if name in ast.AGGREGATE_FUNCTIONS:
        raise ParseError(f"aggregate {name} is not allowed in this context")
    kernel = _VECTOR_KERNELS.get(name)
    if kernel is not None and len(expr.args) == 1:
        operand = compile_vector(expr.args[0], scope, params, subquery_resolver)

        def _fast(cols, n):
            col = operand(cols, n)
            with np.errstate(invalid="ignore", divide="ignore"):
                values = kernel(col.values.astype(np.float64))
            return VColumn(values=values, mask=col.mask)

        return _fast
    # Generic fallback: evaluate element-wise with the scalar registry.
    fn = SCALAR_FUNCTIONS.get(name)
    if fn is None and name != "NULLIF":
        raise ParseError(f"unknown function {name}")
    args = [compile_vector(a, scope, params, subquery_resolver) for a in expr.args]

    def _slow(cols, n):
        arg_lists = [arg(cols, n).to_objects() for arg in args]
        out: list[object] = []
        for row_values in zip(*arg_lists):
            if name == "NULLIF":
                out.append(
                    None if row_values[0] == row_values[1] else row_values[0]
                )
            elif any(v is None for v in row_values):
                out.append(None)
            else:
                out.append(fn(*row_values))
        return VColumn.from_objects(out)

    return _slow


def expression_label(expr: ast.Expression, position: int) -> str:
    """Default output-column name for an unaliased select item."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name
    if isinstance(expr, ast.Predict):
        return "PREDICT"
    return f"COL{position + 1}"

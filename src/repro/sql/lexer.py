"""Hand-written SQL tokenizer.

Produces a flat list of :class:`Token` objects. Identifiers are upper-cased
(the dialect is case-insensitive, like DB2), quoted identifiers preserve
case, and string literals use single quotes with ``''`` escaping.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import LexerError

__all__ = ["Token", "TokenType", "tokenize", "KEYWORDS"]


class TokenType(Enum):
    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    PARAMETER = auto()  # ? positional parameter
    EOF = auto()


#: Reserved words recognised as keywords rather than identifiers.
KEYWORDS = frozenset(
    """
    SELECT FROM WHERE GROUP BY HAVING ORDER ASC DESC LIMIT OFFSET FETCH
    FIRST NEXT ROWS ROW ONLY DISTINCT ALL AS AND OR NOT IN IS NULL LIKE
    BETWEEN EXISTS CASE WHEN THEN ELSE END CAST JOIN INNER LEFT RIGHT FULL
    OUTER CROSS ON USING UNION EXCEPT INTERSECT INSERT INTO VALUES UPDATE
    SET DELETE CREATE TABLE DROP IF PRIMARY KEY NOT UNIQUE DEFAULT
    ACCELERATOR GRANT REVOKE TO CALL COMMIT ROLLBACK BEGIN TRANSACTION
    WORK TRUE FALSE COUNT SUM AVG MIN MAX DISTRIBUTE RANDOM ALTER
    EXECUTE PROCEDURE VIEW REPLACE WITH EXPLAIN ANALYZE
    """.split()
)

_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR_OPERATORS = "+-*/%<>=."
_PUNCTUATION = "(),;"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into a list ending with an EOF token.

    >>> [t.value for t in tokenize("SELECT 1")][:2]
    ['SELECT', '1']
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "/" and text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated block comment", i)
            i = end + 2
            continue
        if ch == "'":
            value, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise LexerError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENTIFIER, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            value, i = _read_number(text, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i].upper()
            kind = TokenType.KEYWORD if word in KEYWORDS else TokenType.IDENTIFIER
            tokens.append(Token(kind, word, start))
            continue
        if ch == "?":
            tokens.append(Token(TokenType.PARAMETER, "?", i))
            i += 1
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, ch, i))
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, ch, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal with ``''`` escapes."""
    parts: list[str] = []
    i = start + 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)


def _read_number(text: str, start: int) -> tuple[str, int]:
    i = start
    n = len(text)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = text[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            # A dot not followed by a digit terminates the number (it is a
            # qualifier dot, e.g. "T1.COL" after "... 1.").
            if i + 1 < n and text[i + 1].isdigit():
                seen_dot = True
                i += 1
            else:
                break
        elif ch in "eE" and not seen_exp and i + 1 < n and (
            text[i + 1].isdigit() or text[i + 1] in "+-"
        ):
            seen_exp = True
            i += 2 if text[i + 1] in "+-" else 1
        else:
            break
    return text[start:i], i

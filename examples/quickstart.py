"""Quickstart: the federation in five minutes.

Demonstrates the core architecture of the paper's system:

1. create tables in DB2 and run OLTP-style SQL;
2. accelerate a table (snapshot copy + replication) and watch the router
   transparently offload analytical queries;
3. create an accelerator-only table with ``IN ACCELERATOR`` and run a
   multi-statement transformation that never leaves the accelerator;
4. inspect the interconnect counters that the experiments are built on.

Run:  python examples/quickstart.py
"""

from repro import AcceleratedDatabase


def main() -> None:
    db = AcceleratedDatabase()
    conn = db.connect()  # SYSADM session

    # -- 1. Plain DB2 tables --------------------------------------------------
    conn.execute(
        """
        CREATE TABLE ORDERS (
            O_ID INTEGER NOT NULL PRIMARY KEY,
            O_REGION VARCHAR(4) NOT NULL,
            O_AMOUNT DOUBLE NOT NULL
        )
        """
    )
    rows = ", ".join(
        f"({i}, '{'EU' if i % 3 else 'US'}', {round(i * 1.7, 2)})"
        for i in range(1, 5001)
    )
    conn.execute(f"INSERT INTO ORDERS VALUES {rows}")

    lookup = conn.execute("SELECT o_amount FROM orders WHERE o_id = 4711")
    print(f"point lookup     -> engine={lookup.engine:<12} "
          f"({conn.last_decision})")

    # -- 2. Accelerate the table ----------------------------------------------
    copied = db.add_table_to_accelerator("ORDERS")
    print(f"accelerated ORDERS: {copied} rows copied, "
          f"{db.interconnect.bytes_to_accelerator:,} bytes shipped")

    report = conn.execute(
        "SELECT o_region, COUNT(*) AS n, SUM(o_amount) AS total "
        "FROM orders GROUP BY o_region ORDER BY total DESC"
    )
    print(f"analytical query -> engine={report.engine:<12} "
          f"({conn.last_decision})")
    for region, n, total in report:
        print(f"   {region}: {n} orders, {total:,.2f}")

    # The same point lookup still runs on DB2 — that's the router.
    lookup = conn.execute("SELECT o_amount FROM orders WHERE o_id = 4711")
    print(f"point lookup     -> engine={lookup.engine:<12} "
          f"({conn.last_decision})")

    # -- 3. Accelerator-only tables (the paper's extension) --------------------
    conn.execute(
        "CREATE TABLE BIG_SPENDERS (O_ID INTEGER, O_AMOUNT DOUBLE) "
        "IN ACCELERATOR"
    )
    snapshot = db.movement_snapshot()
    conn.execute(
        "INSERT INTO BIG_SPENDERS "
        "SELECT o_id, o_amount FROM orders WHERE o_amount > 6000"
    )
    moved = db.movement_since(snapshot)
    count = conn.execute("SELECT COUNT(*) FROM big_spenders").scalar()
    print(
        f"AOT INSERT-SELECT materialised {count} rows moving only "
        f"{moved.total_bytes} bytes over the interconnect"
    )

    # Transactions work across both engines, with the accelerator aware
    # of the DB2 transaction context (uncommitted changes are visible to
    # their own transaction only).
    conn.execute("BEGIN")
    conn.execute("DELETE FROM big_spenders WHERE o_amount < 7000")
    inside = conn.execute("SELECT COUNT(*) FROM big_spenders").scalar()
    other = db.connect()
    outside = other.execute("SELECT COUNT(*) FROM big_spenders").scalar()
    conn.execute("ROLLBACK")
    print(
        f"inside txn: {inside} rows; other session: {outside} rows; "
        f"after rollback: "
        f"{conn.execute('SELECT COUNT(*) FROM big_spenders').scalar()} rows"
    )

    # -- 4. Movement accounting -------------------------------------------------
    stats = db.movement_snapshot()
    print(
        f"total interconnect traffic: {stats.bytes_to_accelerator:,} bytes "
        f"out, {stats.bytes_from_accelerator:,} bytes back, "
        f"{stats.messages} messages"
    )


if __name__ == "__main__":
    main()

"""Scaling the accelerator out to a shard pool — and surviving a shard.

One accelerator appliance tops out at its slices × scan rate;
``AcceleratedDatabase(shards=N)`` puts N shards behind the same engine
interface instead. This walk-through declares placement with
``DISTRIBUTE BY``, shows a point lookup pruning down to one shard,
kills a shard mid-workload (queries fail back to DB2 while the global
circuit stays closed), rebuilds it from DB2, re-places the table with
``ALTER TABLE … DISTRIBUTE BY``, and reads the story back from
``SYSACCEL.MON_SHARDS`` and ``SYSPROC.ACCEL_GET_HEALTH``.

Run:  python examples/scale_out.py
"""

from repro import AcceleratedDatabase


def show_call(conn, sql: str) -> None:
    result = conn.execute(sql)
    print(f"$ {sql}")
    for (line,) in result.rows:
        print(f"    {line}")


def show_shards(conn) -> None:
    rows = conn.execute(
        "SELECT SHARD_ID, STATE, ALIVE, TABLES, ROW_COUNT, SCANS "
        "FROM SYSACCEL.MON_SHARDS ORDER BY SHARD_ID"
    ).rows
    print("    SHARD  STATE    ALIVE  TABLES  ROWS   SCANS")
    for shard_id, state, alive, tables, row_count, scans in rows:
        print(
            f"    {shard_id:>5}  {state:<8} {alive:<6} {tables:>6} "
            f"{row_count:>6} {scans:>5}"
        )


def main() -> None:
    db = AcceleratedDatabase(shards=4, slice_count=2, chunk_rows=4096)
    conn = db.connect()

    # -- an accelerated copy: DB2 stays the source of truth ---------------
    conn.execute(
        "CREATE TABLE ORDERS (ID INTEGER NOT NULL PRIMARY KEY, "
        "REGION INTEGER, AMOUNT DOUBLE)"
    )
    rows = ", ".join(f"({i}, {i % 7}, {float(i % 250)})" for i in range(8_000))
    conn.execute(f"INSERT INTO ORDERS VALUES {rows}")
    db.add_table_to_accelerator("ORDERS")
    conn.set_acceleration("ENABLE WITH FAILBACK")

    print("== 8k-row copy spread over 4 shards ==")
    show_shards(conn)

    result = conn.execute(
        "SELECT REGION, COUNT(*), SUM(AMOUNT) FROM ORDERS "
        "GROUP BY REGION ORDER BY REGION"
    )
    print(f"\nGROUP BY on {result.engine}: {len(result.rows)} regions; "
          "bytes identical to a single-instance run")

    # -- placement: hash the lookup key, prune to one shard ---------------
    conn.execute("ALTER TABLE ORDERS ACCELERATE DISTRIBUTE BY HASH(ID)")
    pool = db.accelerator_pool
    before = (pool.shard_scans_total, pool.shard_scans_pruned)
    # Under ENABLE a PK point lookup stays on DB2; force the pool to
    # show placement pruning at work.
    conn.set_acceleration("ALL")
    conn.execute("SELECT AMOUNT FROM ORDERS WHERE ID = 4711")
    conn.set_acceleration("ENABLE WITH FAILBACK")
    scans = pool.shard_scans_total - before[0]
    pruned = pool.shard_scans_pruned - before[1]
    print(f"\n== DISTRIBUTE BY HASH(ID): point lookup scanned "
          f"{scans - pruned} of {scans} shards ({pruned} pruned) ==")

    # -- kill a shard mid-workload ----------------------------------------
    print("\n== shard 2 dies ==")
    show_call(conn, "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR("
                    "'action=kill_shard, shard=2')")
    result = conn.execute("SELECT COUNT(*), SUM(AMOUNT) FROM ORDERS")
    print(f"same query now answers on {result.engine} "
          f"(count={result.rows[0][0]}) — failback, not an outage: "
          f"global circuit still {'closed' if db.health.available else 'open'}")
    show_shards(conn)

    # -- rebuild from DB2 --------------------------------------------------
    print("\n== rebuild shard 2 from DB2 ==")
    show_call(conn, "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR("
                    "'action=rebuild_shard, shard=2')")
    result = conn.execute("SELECT COUNT(*), SUM(AMOUNT) FROM ORDERS")
    print(f"back on {result.engine}: count={result.rows[0][0]}")

    # -- the health report carries one line per shard ----------------------
    print()
    show_call(conn, "CALL SYSPROC.ACCEL_GET_HEALTH('')")


if __name__ == "__main__":
    main()

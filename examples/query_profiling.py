"""EXPLAIN ANALYZE and the cardinality-feedback store — the tuner's view.

Runs a reporting workload over the star schema, then inspects it the
way a DBA would chase a slow query:

* ``EXPLAIN`` shows the routing decision plus the logical plan tree;
* ``EXPLAIN ANALYZE`` executes the statement and annotates every
  operator with actual vs. estimated rows, Q-error, and wall time —
  including both sections when the accelerator fails mid-query and the
  statement fails back to DB2;
* ``SYSACCEL.MON_QERROR`` / ``ACCEL_GET_PROFILE('worst=...')`` rank the
  operators the planner mis-estimates worst — the feedback a cost-based
  optimizer would consume;
* the slow-query log captures the full annotated plan of offenders.

Run:  python examples/query_profiling.py
"""

from repro import AcceleratedDatabase
from repro.workloads import create_star_schema

STAR_QUERY = (
    "SELECT C.C_REGION, COUNT(*) AS ORDERS, SUM(T.T_AMOUNT) AS REVENUE "
    "FROM TRANSACTIONS T JOIN CUSTOMERS C ON T.T_CUSTOMER = C.C_ID "
    "WHERE T.T_AMOUNT > 100 "
    "GROUP BY C.C_REGION ORDER BY REVENUE DESC"
)


def show(conn, sql: str) -> None:
    result = conn.execute(sql)
    print(f"$ {sql}")
    widths = [max(len(str(row[i])) for row in result.rows + [result.columns])
              for i in range(len(result.columns))] if result.rows else []
    if widths:
        print("    " + "  ".join(
            name.ljust(w) for name, w in zip(result.columns, widths)))
        for row in result.rows:
            print("    " + "  ".join(
                str(v).ljust(w) for v, w in zip(row, widths)))
    else:
        for row in result.rows:
            print("    " + "  ".join(str(v) for v in row))
    print()


def main() -> None:
    db = AcceleratedDatabase(slow_query_threshold_seconds=0.0)
    conn = db.connect()
    create_star_schema(conn, customers=400, products=60, transactions=8000)
    conn.set_acceleration("ENABLE WITH FAILBACK")

    # 1. Routing plan + logical plan tree, without executing.
    show(conn, f"EXPLAIN {STAR_QUERY}")

    # 2. Execute with per-operator instrumentation.
    show(conn, f"EXPLAIN ANALYZE {STAR_QUERY}")

    # 3. A mid-query accelerator crash produces two sections: the failed
    #    accelerator attempt and the transparent DB2 re-execution.
    with db.faults.forced("accelerator", kind="crash"):
        show(conn, f"EXPLAIN ANALYZE {STAR_QUERY}")

    # 4. Run a few more shapes so the feedback store has material.
    for sql in (
        "SELECT COUNT(*) FROM TRANSACTIONS WHERE T_AMOUNT > 999999",
        "SELECT C_SEGMENT, AVG(C_INCOME) FROM CUSTOMERS GROUP BY C_SEGMENT",
        STAR_QUERY,
    ):
        conn.execute(sql)

    # 5. The worst mis-estimated operators, two ways: SQL view and proc.
    show(conn, (
        "SELECT OPERATOR, DETAIL, ENGINE, EXECUTIONS, MEAN_Q_ERROR "
        "FROM SYSACCEL.MON_QERROR "
        "WHERE MEAN_Q_ERROR > 1.5 ORDER BY MEAN_Q_ERROR DESC"
    ))
    show(conn, "CALL SYSPROC.ACCEL_GET_PROFILE('worst=3')")

    # 6. The slow-query log (threshold 0 here: every statement counts)
    #    retains the full annotated plan of each offender.
    record = db.profiler.slow_log.records()[-1]
    print(f"slow-query log: {len(db.profiler.slow_log.records())} records, "
          f"newest {record.profile_id} "
          f"({record.elapsed_seconds * 1000:.2f}ms):")
    for line in record.plan_lines:
        print(f"    {line}")


if __name__ == "__main__":
    main()

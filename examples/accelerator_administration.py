"""Operating the accelerator through SYSPROC calls — the DBA view.

The real IDAA is administered entirely through DB2 stored procedures;
this walk-through uses the same interface: add tables to the
accelerator, watch replication lag, force a drain, re-snapshot a stale
copy, and groom away deleted row versions. It also shows
``Connection.explain`` for inspecting routing decisions without running
the statement.

Run:  python examples/accelerator_administration.py
"""

from repro import AcceleratedDatabase
from repro.workloads import create_star_schema


def show_call(conn, sql: str) -> None:
    result = conn.execute(sql)
    print(f"$ {sql}")
    for (line,) in result.rows:
        print(f"    {line}")


def main() -> None:
    # Manual replication so staleness is observable.
    db = AcceleratedDatabase(auto_replicate=False)
    conn = db.connect()

    create_star_schema(
        conn, customers=500, products=50, transactions=5000, accelerate=False
    )

    # 1. Accelerate tables through the admin procedure.
    show_call(
        conn,
        "CALL SYSPROC.ACCEL_ADD_TABLES("
        "'tables=CUSTOMERS;PRODUCTS;TRANSACTIONS')",
    )
    show_call(conn, "CALL SYSPROC.ACCEL_GET_TABLES_INFO('')")

    # 2. Routing introspection without execution.
    for sql in (
        "SELECT c_region, COUNT(*) FROM customers GROUP BY c_region",
        "SELECT c_income FROM customers WHERE c_id = 42",
    ):
        plan = conn.explain(sql)
        print(f"explain: {sql[:52]:<54} -> {plan['engine']} "
              f"({plan['reason']})")

    # 3. Make the copy stale, inspect, drain.
    conn.execute("UPDATE customers SET c_income = c_income * 1.02 "
                 "WHERE c_income IS NOT NULL")
    print(f"\nreplication backlog after update: "
          f"{db.replication.backlog} records")
    show_call(conn, "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=status')")
    show_call(
        conn, "CALL SYSPROC.ACCEL_CONTROL_ACCELERATOR('action=replicate')"
    )

    # 4. Verify copy freshness with the same query on both engines.
    conn.execute("SET CURRENT QUERY ACCELERATION = NONE")
    db2_total = conn.execute("SELECT SUM(c_income) FROM customers").scalar()
    conn.execute("SET CURRENT QUERY ACCELERATION = ALL")
    accel_total = conn.execute("SELECT SUM(c_income) FROM customers").scalar()
    print(f"copy check: db2={db2_total:,.2f} accel={accel_total:,.2f} "
          f"match={abs(db2_total - accel_total) < 1e-6}")
    conn.execute("SET CURRENT QUERY ACCELERATION = ENABLE")

    # 5. Full re-snapshot (e.g. after bulk maintenance on DB2).
    show_call(conn, "CALL SYSPROC.ACCEL_LOAD_TABLES('tables=CUSTOMERS')")

    # 6. Groom an AOT after heavy deletes.
    conn.execute(
        "CREATE TABLE WORKLIST AS (SELECT t_id, t_amount FROM transactions) "
        "IN ACCELERATOR"
    )
    conn.execute("DELETE FROM worklist WHERE t_amount < 1000")
    table = db.accelerator.storage_for("WORKLIST")
    physical = sum(len(c) for __, c in table.iter_chunks())
    print(f"\nWORKLIST before groom: {table.row_count} live rows, "
          f"{physical} physical rows")
    show_call(conn, "CALL SYSPROC.ACCEL_GROOM_TABLES('tables=WORKLIST')")
    table = db.accelerator.storage_for("WORKLIST")
    physical = sum(len(c) for __, c in table.iter_chunks())
    print(f"WORKLIST after groom:  {table.row_count} live rows, "
          f"{physical} physical rows")


if __name__ == "__main__":
    main()

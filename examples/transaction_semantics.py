"""AOT transaction semantics walk-through (paper Section 2).

Shows, step by step, the transaction-context awareness the paper added
to IDAA for accelerator-only tables:

* a transaction's own uncommitted AOT modifications are visible to its
  own queries (and compose across statements);
* other sessions read under snapshot isolation and never see them;
* multiple queries inside one transaction see one stable snapshot even
  while other sessions commit;
* rollback discards AOT changes together with the DB2-side changes of
  the same transaction.

Run:  python examples/transaction_semantics.py
"""

from repro import AcceleratedDatabase


def show(label: str, value) -> None:
    print(f"  {label:<58} {value}")


def main() -> None:
    db = AcceleratedDatabase()
    session_a = db.connect()
    session_b = db.connect()

    session_a.execute(
        "CREATE TABLE STAGING (ID INTEGER, V DOUBLE) IN ACCELERATOR"
    )
    rows = ", ".join(f"({i}, {float(i)})" for i in range(100))
    session_a.execute(f"INSERT INTO STAGING VALUES {rows}")
    session_a.execute("CREATE TABLE AUDIT (NOTE VARCHAR(40))")  # DB2 side

    print("1) own uncommitted changes are visible, others are isolated")
    session_a.execute("BEGIN")
    session_a.execute("INSERT INTO STAGING VALUES (1000, -1.0)")
    session_a.execute("DELETE FROM STAGING WHERE id < 10")
    show("session A (inside txn) sees",
         session_a.execute("SELECT COUNT(*) FROM staging").scalar())
    show("session B (snapshot isolation) sees",
         session_b.execute("SELECT COUNT(*) FROM staging").scalar())

    print("2) statements in one transaction compose")
    session_a.execute("UPDATE staging SET v = v * 2 WHERE id = 1000")
    session_a.execute(
        "INSERT INTO STAGING SELECT id + 2000, v FROM staging WHERE id = 1000"
    )
    show("derived row visible to own txn",
         session_a.execute(
             "SELECT v FROM staging WHERE id = 3000"
         ).scalar())

    print("3) one transaction spans DB2 and the accelerator")
    session_a.execute("INSERT INTO AUDIT VALUES ('stage refreshed')")
    show("A sees its DB2-side audit row",
         session_a.execute("SELECT COUNT(*) FROM audit").scalar())

    print("4) rollback discards both sides atomically")
    session_a.execute("ROLLBACK")
    show("A after rollback (AOT restored)",
         session_a.execute("SELECT COUNT(*) FROM staging").scalar())
    show("A after rollback (audit empty)",
         session_a.execute("SELECT COUNT(*) FROM audit").scalar())

    print("5) repeatable snapshot inside a transaction")
    session_b.execute("BEGIN")
    first = session_b.execute("SELECT SUM(v) FROM staging").scalar()
    session_a.execute("UPDATE staging SET v = v + 10000")  # autocommits
    second = session_b.execute("SELECT SUM(v) FROM staging").scalar()
    session_b.execute("COMMIT")
    third = session_b.execute("SELECT SUM(v) FROM staging").scalar()
    show("B's first read", first)
    show("B's second read (same snapshot, despite A's commit)", second)
    show("B after commit (fresh snapshot)", third)


if __name__ == "__main__":
    main()

"""Surviving an accelerator crash — checkpoints, resync, crash points.

The accelerator is an appliance: it can lose all of its state while
DB2 keeps the source of truth. This walk-through takes a durable
checkpoint through ``SYSPROC.ACCEL_CHECKPOINT``, crashes the
accelerator at an injected crash point mid-replication, restarts it
with ``SYSPROC.ACCEL_RECOVER``, and shows that recovery replayed only
the changelog suffix past the checkpoint instead of reshipping every
table — then reads the story back from ``SYSACCEL.MON_RECOVERY`` and
the ``recovery.*`` metrics.

Run:  python examples/crash_recovery.py
"""

import tempfile

from repro import AcceleratedDatabase
from repro.recovery.harness import CrashRestartDriver


def show_call(conn, sql: str) -> None:
    result = conn.execute(sql)
    print(f"$ {sql}")
    for (line,) in result.rows:
        print(f"    {line}")


def main() -> None:
    # A file-backed checkpoint store: frames are checksummed and written
    # atomically, so a torn write is detected at restore, not restored.
    checkpoint_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
    db = AcceleratedDatabase(
        slice_count=2,
        chunk_rows=4096,
        cooldown_seconds=0.0,
        checkpoint_dir=checkpoint_dir,
    )
    conn = db.connect()

    conn.execute(
        "CREATE TABLE ORDERS (ID INTEGER NOT NULL PRIMARY KEY, "
        "REGION INTEGER, AMOUNT DOUBLE)"
    )
    rows = ", ".join(
        f"({i}, {i % 7}, {float(i % 250)})" for i in range(10_000)
    )
    conn.execute(f"INSERT INTO ORDERS VALUES {rows}")
    db.add_table_to_accelerator("ORDERS")

    # An accelerator-only table (AOT) has no DB2 copy to reload from;
    # registering its defining query lets recovery rebuild it.
    conn.execute(
        "CREATE TABLE REGION_TOTALS AS "
        "(SELECT REGION, SUM(AMOUNT) AS TOTAL FROM ORDERS GROUP BY REGION) "
        "IN ACCELERATOR"
    )
    db.recovery.register_aot_source(
        "REGION_TOTALS",
        "SELECT REGION, SUM(AMOUNT) AS TOTAL FROM ORDERS GROUP BY REGION",
    )

    # 1. Take a durable checkpoint: table images + replication cursor.
    print("== Checkpoint ==")
    show_call(conn, "CALL SYSPROC.ACCEL_CHECKPOINT('')")

    # 2. Keep writing after the checkpoint — these changes exist only
    # in the changelog suffix past the checkpointed cursor.
    conn.execute("UPDATE orders SET amount = amount * 1.1 WHERE region = 3")
    conn.execute("DELETE FROM orders WHERE id % 97 = 0")
    conn.set_acceleration("ALL")
    survivors = conn.execute("SELECT COUNT(*) FROM orders").scalar()
    conn.set_acceleration("ENABLE")
    print(f"\npost-checkpoint writes applied; orders now {survivors} rows")

    # 3. Crash mid-replication. Armed crash points make the injected
    # site raise a real AcceleratorCrashError; the kill wipes all
    # accelerator-side state, exactly like an appliance power cut.
    print("\n== Crash ==")
    rule = db.faults.arm_crash_point("replication.mid_batch")
    # The commit's auto-drain hits the crash point; the error is
    # retryable, so the session carries on with a stale copy.
    conn.execute("UPDATE orders SET amount = 0 WHERE id < 5")
    print(f"crash point fired {rule.fired} times during the drain")
    driver = CrashRestartDriver(db)
    driver.kill()
    print(f"accelerator killed; tables on accelerator: "
          f"{len(db.accelerator.table_names())}")

    # 4. Recover: restore the checkpoint image, replay only the suffix.
    print("\n== Recover ==")
    db.health.reset()
    show_call(conn, "CALL SYSPROC.ACCEL_RECOVER('')")

    conn.set_acceleration("ALL")
    after = conn.execute("SELECT COUNT(*) FROM orders").scalar()
    totals = conn.execute(
        "SELECT COUNT(*) FROM region_totals"
    ).scalar()
    conn.set_acceleration("ENABLE")
    print(f"\norders back to {after} rows (expected {survivors}); "
          f"region_totals rebuilt with {totals} rows")

    # 5. The story, as monitoring sees it.
    print("\n== SYSACCEL.MON_RECOVERY ==")
    events = conn.execute(
        "SELECT KIND, CHECKPOINT_ID, ROW_COUNT, RECORDS_REPLAYED, "
        "BYTES_SAVED FROM SYSACCEL.MON_RECOVERY ORDER BY EVENT_ID"
    )
    for kind, ckpt, nrows, replayed, saved in events.rows:
        print(f"    {kind:<12} checkpoint=#{ckpt} rows={nrows} "
              f"replayed={replayed} bytes_saved={saved}")

    print("\n== recovery.* metrics ==")
    metrics = db.metrics.collect()
    for key in sorted(metrics):
        if key.startswith("recovery."):
            print(f"    {key} = {metrics[key]}")

    print("\n== Health ==")
    show_call(conn, "CALL SYSPROC.ACCEL_GET_HEALTH('')")


if __name__ == "__main__":
    main()

"""Multi-staged predictive-analytics pipeline — the paper's headline use
case (SPSS-style pushback mining on customer churn).

The identical stage list runs twice:

* **legacy** mode materialises each intermediate result in DB2 and
  re-replicates it to the accelerator (the pre-AOT behaviour);
* **aot** mode keeps every intermediate as an accelerator-only table.

The script then trains a decision tree in-database, scores a hold-out
split, and prints per-stage data movement — reproducing the paper's
argument that AOTs remove the per-stage round trip.

Run:  python examples/churn_mining_pipeline.py
"""

from repro import AcceleratedDatabase, Pipeline
from repro.workloads import create_churn_table


def build_pipeline() -> Pipeline:
    return (
        Pipeline("churn-mining")
        .add_transform(
            "impute",
            "CHURN_CLEAN",
            "SELECT cust_id, tenure_months, monthly_charges, "
            "COALESCE(total_charges, monthly_charges * tenure_months) "
            "AS total_charges, support_calls, contract_months, churned "
            "FROM churn",
        )
        .add_transform(
            "feature-engineering",
            "CHURN_FEATURES",
            "SELECT cust_id, tenure_months, monthly_charges, total_charges, "
            "support_calls, contract_months, "
            "total_charges / tenure_months AS avg_monthly, "
            "CASE WHEN support_calls > 4 THEN 1 ELSE 0 END AS heavy_support, "
            "churned FROM churn_clean",
        )
        .add_transform(
            "filter-active",
            "CHURN_MODEL_INPUT",
            "SELECT * FROM churn_features WHERE tenure_months >= 2",
        )
        .add_procedure(
            "train-test-split",
            "CALL INZA.SPLIT_DATA('intable=CHURN_MODEL_INPUT, "
            "traintable=CHURN_TRAIN, testtable=CHURN_TEST, "
            "fraction=0.8, randseed=17')",
            ("CHURN_TRAIN", "CHURN_TEST"),
        )
        .add_procedure(
            "train-tree",
            "CALL INZA.DECTREE('intable=CHURN_TRAIN, class=CHURNED, "
            "model=CHURN_TREE, id=CUST_ID, maxdepth=5')",
        )
        .add_procedure(
            "score-holdout",
            "CALL INZA.PREDICT_DECTREE('model=CHURN_TREE, "
            "intable=CHURN_TEST, outtable=CHURN_SCORED, id=CUST_ID')",
            ("CHURN_SCORED",),
        )
    )


def main() -> None:
    db = AcceleratedDatabase()
    conn = db.connect()
    count = create_churn_table(conn, count=5000, accelerate=True)
    print(f"churn table: {count} rows (accelerated)\n")

    pipeline = build_pipeline()

    legacy = pipeline.run(conn, mode="legacy")
    print(legacy.report())
    print()
    aot = pipeline.run(conn, mode="aot")
    print(aot.report())

    ratio = legacy.total_movement.total_bytes / max(
        1, aot.total_movement.total_bytes
    )
    print(
        f"\nAOT mode moved {ratio:,.0f}x fewer bytes over the "
        "DB2<->accelerator interconnect.\n"
    )

    # Evaluate the model on the hold-out split (plain SQL on AOTs).
    confusion = conn.execute(
        "SELECT t.churned, s.prediction, COUNT(*) AS n "
        "FROM churn_test t JOIN churn_scored s ON t.cust_id = s.cust_id "
        "GROUP BY t.churned, s.prediction ORDER BY t.churned, s.prediction"
    )
    total = correct = 0
    print("hold-out confusion matrix (actual, predicted, count):")
    for actual, predicted, n in confusion:
        print(f"   {actual}  {predicted:>2}  {n}")
        total += n
        if str(actual) == str(predicted).strip():
            correct += n
    print(f"hold-out accuracy: {correct / total:.3f}")
    model = db.models.get("CHURN_TREE")
    print(
        f"model CHURN_TREE: depth={model.metrics['depth']}, "
        f"leaves={model.metrics['leaves']}, "
        f"training accuracy={model.metrics['training_accuracy']:.3f}"
    )


if __name__ == "__main__":
    main()

"""Governing a mixed workload with the workload manager — the DBA view.

A DB2 WLM setup maps sessions to service classes and lets admission
control decide who runs, who waits, and who is turned away when the
accelerator saturates. This walk-through drives the same interface:
enable the WLM through ``SYSPROC.ACCEL_SET_WLM``, tag statements with
service classes, watch a statement budget expire mid-flight and roll
back cleanly, see a full queue shed fast with a retryable error, and
read it all back from ``SYSACCEL.MON_WLM``.

Run:  python examples/workload_management.py
"""

from repro import AcceleratedDatabase
from repro.errors import StatementShedError, StatementTimeoutError


def show_call(conn, sql: str) -> None:
    result = conn.execute(sql)
    print(f"$ {sql}")
    for (line,) in result.rows:
        print(f"    {line}")


def main() -> None:
    db = AcceleratedDatabase(slice_count=2, chunk_rows=4096)
    conn = db.connect()

    conn.execute("CREATE TABLE SALES (ID INTEGER, REGION INTEGER, AMOUNT DOUBLE) IN ACCELERATOR")
    for base in range(0, 20_000, 1000):
        rows = ", ".join(
            f"({i}, {i % 7}, {float(i % 250)})"
            for i in range(base, base + 1000)
        )
        conn.execute(f"INSERT INTO SALES VALUES {rows}")

    # 1. The WLM ships disabled — statements pay nothing for it.
    print("== The workload manager is off by default ==")
    show_call(conn, "CALL SYSPROC.ACCEL_GET_WLM('')")

    # 2. Enable it and shape the policy: a small accelerator gate and a
    # reporting class with a tight default budget.
    print()
    print("== Enable and configure ==")
    show_call(conn, "CALL SYSPROC.ACCEL_SET_WLM('enabled=on')")
    show_call(
        conn,
        "CALL SYSPROC.ACCEL_SET_WLM('engine=ACCELERATOR, slots=2')",
    )
    show_call(
        conn,
        "CALL SYSPROC.ACCEL_SET_WLM("
        "'class=REPORTING, priority=1, class_slots=2, queue_depth=4, "
        "timeout=30')",
    )

    # 3. Statements carry a service class (per statement here; a
    # session default works too, via Connection.set_service_class).
    print()
    print("== Classified execution ==")
    total = conn.execute(
        "SELECT SUM(AMOUNT) FROM SALES",
        service_class="REPORTING",
    ).scalar()
    print(f"REPORTING aggregate ran: SUM(AMOUNT) = {total:.0f}")

    # 4. Statement budgets: a deadline expires mid-execution, the
    # statement unwinds atomically, and the session stays healthy.
    print()
    print("== A statement budget expires ==")
    conn.execute("CREATE TABLE SALES_COPY (ID INTEGER, REGION INTEGER, AMOUNT DOUBLE) IN ACCELERATOR")
    try:
        conn.execute(
            "INSERT INTO SALES_COPY SELECT ID, REGION, AMOUNT FROM SALES",
            timeout_seconds=0.000001,
        )
    except StatementTimeoutError as error:
        print(f"timed out as configured: {error}")
    leftover = conn.execute("SELECT COUNT(*) FROM SALES_COPY").scalar()
    print(f"rolled back atomically: SALES_COPY has {leftover} rows")

    # 5. Load shedding: while the gate is fully occupied, a class with
    # no queue allowance is rejected fast — with a retryable error —
    # instead of piling up behind the running work.
    print()
    print("== A saturated gate sheds fast ==")
    show_call(
        conn,
        "CALL SYSPROC.ACCEL_SET_WLM('class=ANALYTICS, queue_depth=0')",
    )
    busy = [
        db.wlm.admit("ACCELERATOR", "SYSDEFAULT"),  # simulate running work
        db.wlm.admit("ACCELERATOR", "SYSDEFAULT"),
    ]
    try:
        conn.execute(
            "SELECT REGION, SUM(AMOUNT) FROM SALES GROUP BY REGION",
            service_class="ANALYTICS",
        )
    except StatementShedError as error:
        print(f"shed (retryable={error.retryable}): {error}")
    finally:
        for ticket in busy:
            db.wlm.release(ticket)
    # The same statement is admitted once the gate frees up.
    rows = conn.execute(
        "SELECT REGION, SUM(AMOUNT) FROM SALES GROUP BY REGION",
        service_class="ANALYTICS",
    ).rows
    print(f"retry succeeded: {len(rows)} regions")

    # 6. Everything above is observable: per-(engine, class) live
    # state in SYSACCEL.MON_WLM, plus the procedure-level summary.
    print()
    print("== Monitoring ==")
    result = conn.execute(
        "SELECT ENGINE, SERVICE_CLASS, ADMITTED, BYPASSED, SHED "
        "FROM SYSACCEL.MON_WLM "
        "WHERE ADMITTED > 0 OR BYPASSED > 0 OR SHED > 0"
    )
    print(" | ".join(result.columns))
    for row in result.rows:
        print(" | ".join(str(v) for v in row))
    print()
    show_call(conn, "CALL SYSPROC.ACCEL_GET_WLM('')")


if __name__ == "__main__":
    main()

"""Direct external ingestion — the paper's social-media enrichment case.

"allowing to ingest data from any other source directly to the
accelerator to enrich analytics e.g., with social media data."

A JSON-lines feed (generated off-mainframe) is loaded with the IDAA
Loader straight into an accelerator-only table: DB2 executes *zero* DML
for the load. The posts are then joined with the accelerated enterprise
star schema, clustered with in-database k-means, and the interconnect
price of the whole workflow is printed.

Run:  python examples/social_media_enrichment.py
"""

import tempfile
from pathlib import Path

from repro import AcceleratedDatabase, IdaaLoader, JsonLinesSource
from repro.workloads import SOCIAL_COLUMNS, create_star_schema, write_posts_jsonl
from repro.workloads.socialmedia import SOCIAL_DDL


def main() -> None:
    db = AcceleratedDatabase()
    conn = db.connect()

    create_star_schema(
        conn, customers=1000, products=100, transactions=8000, accelerate=True
    )
    print("star schema created and accelerated")

    # The feed file stands in for an external stream that never touches
    # System z.
    feed = Path(tempfile.gettempdir()) / "social_feed.jsonl"
    write_posts_jsonl(feed, count=10_000)

    conn.execute(SOCIAL_DDL)  # CREATE TABLE ... IN ACCELERATOR
    loader = IdaaLoader(db, batch_size=2000)
    db2_statements_before = db.db2.statements_executed
    report = loader.load(
        JsonLinesSource(feed, columns=SOCIAL_COLUMNS), "SOCIAL_POSTS", conn
    )
    print(
        f"loaded {report.rows} posts directly into the accelerator in "
        f"{report.batches} batches "
        f"({report.rows_per_second:,.0f} rows/s); "
        f"DB2 rows written: {report.db2_rows_written}, DB2 statements "
        f"executed during load: "
        f"{db.db2.statements_executed - db2_statements_before}"
    )

    # Enrichment query: regional revenue next to social sentiment —
    # an AOT joined with accelerated enterprise copies.
    result = conn.execute(
        """
        SELECT r.region,
               r.revenue,
               s.posts,
               s.avg_sentiment
        FROM (SELECT c.c_region AS region, SUM(t.t_amount) AS revenue
              FROM transactions t
              JOIN customers c ON t.t_customer = c.c_id
              GROUP BY c.c_region) AS r
        JOIN (SELECT region, COUNT(*) AS posts,
                     AVG(sentiment) AS avg_sentiment
              FROM social_posts
              GROUP BY region) AS s
          ON r.region = s.region
        ORDER BY r.revenue DESC
        """
    )
    print(f"\nenrichment query ran on: {result.engine}")
    print(f"{'region':<8}{'revenue':>14}{'posts':>8}{'sentiment':>11}")
    for region, revenue, posts, sentiment in result:
        print(f"{region:<8}{revenue:>14,.0f}{posts:>8}{sentiment:>11.3f}")

    # Negative-sentiment hot spots via in-database analytics: cluster
    # posts by sentiment and engagement, entirely on the accelerator.
    outcome = conn.execute(
        "CALL INZA.KMEANS('intable=SOCIAL_POSTS, outtable=POST_CLUSTERS, "
        "id=POST_ID, k=3, incolumn=SENTIMENT;LIKES, model=POSTS_KM')"
    )
    print(f"\n{outcome.message}")
    clusters = conn.execute(
        "SELECT c.cluster_id, COUNT(*) AS n, AVG(p.sentiment) AS sentiment, "
        "AVG(p.likes) AS likes "
        "FROM post_clusters c JOIN social_posts p ON c.post_id = p.post_id "
        "GROUP BY c.cluster_id ORDER BY sentiment"
    )
    print(f"{'cluster':<8}{'posts':>8}{'sentiment':>11}{'avg likes':>11}")
    for cluster, n, sentiment, likes in clusters:
        print(f"{cluster:<8}{n:>8}{sentiment:>11.3f}{likes:>11.1f}")

    stats = db.movement_snapshot()
    print(
        f"\ninterconnect totals: {stats.bytes_to_accelerator:,} bytes to "
        f"accelerator, {stats.bytes_from_accelerator:,} bytes back"
    )
    feed.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
